//! The request/response vocabulary of the wire protocol.
//!
//! Every frame payload is one JSON object. Requests carry an `"op"`
//! discriminator; responses carry `"ok"`. The first request on a
//! connection must be `hello`, which binds the connection to a named
//! user session (the paper's multi-tenant namespace isolation — Section
//! VII-A); read-only operational commands (`ping`, `health`, `metrics`)
//! are allowed without one. `shutdown` is too on an open server, but
//! once a user allowlist is configured it requires an authenticated
//! session — an unauthenticated remote stop is a safety hole the moment
//! the server binds a non-loopback address.
//!
//! ```text
//! -> {"op":"hello","user":"alice"}
//! <- {"ok":true,"text":"hello alice"}
//! -> {"op":"execute","sql":"SELECT ..."}
//! <- {"ok":true,"result":{"kind":"data","columns":[...],"rows":[...]}}
//! -> {"op":"execute","sql":"SELEKT"}
//! <- {"ok":false,"code":"PARSE","message":"parse error: ..."}
//! ```

use just_core::Dataset;
use just_ql::{wire, JsonValue, QlError, QueryResult};

/// Server-layer error codes (SQL-layer codes come from
/// [`QlError::code`]).
pub mod codes {
    /// Admission control shed this connection; retry later.
    pub const BUSY: &str = "BUSY";
    /// Missing/failed `hello`, or a user not on the allowlist.
    pub const AUTH: &str = "AUTH";
    /// Unparseable frame payload or unknown request shape.
    pub const MALFORMED: &str = "MALFORMED";
    /// Frame exceeded the size cap.
    pub const TOO_LARGE: &str = "TOO_LARGE";
    /// Transport failure talking to a remote server.
    pub const IO: &str = "IO";
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Binds the connection to a user session. Must come first.
    Hello {
        /// Session user name (the namespace).
        user: String,
    },
    /// Parse/optimize/execute one statement.
    Execute {
        /// The JustQL statement.
        sql: String,
    },
    /// Execute a SELECT and return rows plus the per-operator trace.
    ExplainAnalyze {
        /// The JustQL query.
        sql: String,
    },
    /// Prometheus-style text exposition of the `just-obs` registry.
    Metrics,
    /// Liveness/readiness check.
    Health,
    /// Round-trip no-op.
    Ping,
    /// Ask the server to drain and stop.
    Shutdown,
}

impl Request {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let op = |name: &str| JsonValue::object().with("op", JsonValue::Str(name.into()));
        match self {
            Request::Hello { user } => op("hello").with("user", JsonValue::Str(user.clone())),
            Request::Execute { sql } => op("execute").with("sql", JsonValue::Str(sql.clone())),
            Request::ExplainAnalyze { sql } => {
                op("explain_analyze").with("sql", JsonValue::Str(sql.clone()))
            }
            Request::Metrics => op("metrics"),
            Request::Health => op("health"),
            Request::Ping => op("ping"),
            Request::Shutdown => op("shutdown"),
        }
    }

    /// Decodes a request, reporting *what* is malformed.
    pub fn from_json(j: &JsonValue) -> Result<Request, String> {
        let op = j
            .get("op")
            .and_then(|o| o.as_str())
            .ok_or_else(|| "missing 'op'".to_string())?;
        let str_field = |name: &str| -> Result<String, String> {
            j.get(name)
                .and_then(|f| f.as_str())
                .map(|s| s.to_string())
                .ok_or_else(|| format!("'{op}' needs a string '{name}'"))
        };
        match op {
            "hello" => Ok(Request::Hello {
                user: str_field("user")?,
            }),
            "execute" => Ok(Request::Execute {
                sql: str_field("sql")?,
            }),
            "explain_analyze" => Ok(Request::ExplainAnalyze {
                sql: str_field("sql")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "health" => Ok(Request::Health),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

/// One server response.
#[derive(Debug)]
pub enum Response {
    /// A query result (rows or a status message).
    Result(QueryResult),
    /// An `EXPLAIN ANALYZE` result: rows plus the rendered trace tree.
    Traced {
        /// The query's rows.
        data: Dataset,
        /// `Trace::render()` output.
        trace: String,
    },
    /// Plain text (metrics exposition, health, pong).
    Text(String),
    /// A typed error.
    Error {
        /// Structured code (`codes::*` or [`QlError::code`]).
        code: String,
        /// Human-readable message.
        message: String,
        /// Server-assigned request id, when the error came from an
        /// identified request — the correlation handle back into
        /// `SHOW QUERIES` / `SHOW EVENTS` and the server's slow-query
        /// log.
        request_id: Option<u64>,
    },
}

impl Response {
    /// A typed error from a code and message.
    pub fn error(code: &str, message: impl Into<String>) -> Response {
        Response::Error {
            code: code.to_string(),
            message: message.into(),
            request_id: None,
        }
    }

    /// A typed error from a SQL-layer failure. The *inner* message goes
    /// on the wire (the code already carries the category), so the
    /// client's reconstructed [`QlError`] displays identically to the
    /// server-side original instead of double-prefixing.
    pub fn from_ql_error(e: &QlError) -> Response {
        Response::Error {
            code: e.code().to_string(),
            message: e.message(),
            request_id: None,
        }
    }

    /// Stamps an error response with the server's request id (no-op for
    /// success shapes), so clients can quote the id when reporting a
    /// failure and operators can find it in the event log.
    pub fn tag_request(self, id: u64) -> Response {
        match self {
            Response::Error {
                code,
                message,
                request_id: _,
            } => Response::Error {
                code,
                message,
                request_id: Some(id),
            },
            other => other,
        }
    }

    /// Encodes as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Response::Result(r) => JsonValue::object()
                .with("ok", JsonValue::Bool(true))
                .with("result", wire::result_to_json(r)),
            Response::Traced { data, trace } => JsonValue::object()
                .with("ok", JsonValue::Bool(true))
                .with(
                    "result",
                    wire::dataset_to_json(data).with("kind", JsonValue::Str("data".into())),
                )
                .with("trace", JsonValue::Str(trace.clone())),
            Response::Text(t) => JsonValue::object()
                .with("ok", JsonValue::Bool(true))
                .with("text", JsonValue::Str(t.clone())),
            Response::Error {
                code,
                message,
                request_id,
            } => {
                let mut j = JsonValue::object()
                    .with("ok", JsonValue::Bool(false))
                    .with("code", JsonValue::Str(code.clone()))
                    .with("message", JsonValue::Str(message.clone()));
                if let Some(id) = request_id {
                    j = j.with("request_id", JsonValue::Int(*id as i64));
                }
                j
            }
        }
    }

    /// Decodes a response.
    pub fn from_json(j: &JsonValue) -> Result<Response, QlError> {
        match j.get("ok").and_then(|o| o.as_bool()) {
            Some(true) => {
                if let Some(result) = j.get("result") {
                    if let Some(trace) = j.get("trace").and_then(|t| t.as_str()) {
                        return Ok(Response::Traced {
                            data: wire::dataset_from_json(result)?,
                            trace: trace.to_string(),
                        });
                    }
                    return Ok(Response::Result(wire::result_from_json(result)?));
                }
                if let Some(text) = j.get("text").and_then(|t| t.as_str()) {
                    return Ok(Response::Text(text.to_string()));
                }
                Err(QlError::from_wire(
                    codes::MALFORMED,
                    "ok response without result or text",
                ))
            }
            Some(false) => Ok(Response::Error {
                code: j
                    .get("code")
                    .and_then(|c| c.as_str())
                    .unwrap_or(codes::MALFORMED)
                    .to_string(),
                message: j
                    .get("message")
                    .and_then(|m| m.as_str())
                    .unwrap_or("")
                    .to_string(),
                request_id: j
                    .get("request_id")
                    .and_then(|r| r.as_int())
                    .map(|r| r as u64),
            }),
            None => Err(QlError::from_wire(codes::MALFORMED, "missing 'ok'")),
        }
    }

    /// Renders to frame-payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().render().into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use just_storage::{Row, Value};

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Hello {
                user: "alice".into(),
            },
            Request::Execute {
                sql: "SELECT 1".into(),
            },
            Request::ExplainAnalyze {
                sql: "SELECT fid FROM t".into(),
            },
            Request::Metrics,
            Request::Health,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in cases {
            let j = JsonValue::parse(&req.to_json().render()).unwrap();
            assert_eq!(Request::from_json(&j).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        let no_op = JsonValue::parse("{}").unwrap();
        assert!(Request::from_json(&no_op).unwrap_err().contains("op"));
        let bad_op = JsonValue::parse(r#"{"op":"fly"}"#).unwrap();
        assert!(Request::from_json(&bad_op).unwrap_err().contains("fly"));
        let no_sql = JsonValue::parse(r#"{"op":"execute"}"#).unwrap();
        assert!(Request::from_json(&no_sql).unwrap_err().contains("sql"));
    }

    #[test]
    fn responses_roundtrip() {
        let data = Dataset::new(vec!["n".into()], vec![Row::new(vec![Value::Int(7)])]);
        let r = Response::Result(QueryResult::Data(data.clone()));
        let j = JsonValue::parse(std::str::from_utf8(&r.to_bytes()).unwrap()).unwrap();
        match Response::from_json(&j).unwrap() {
            Response::Result(QueryResult::Data(d)) => assert_eq!(d, data),
            other => panic!("wrong shape {other:?}"),
        }

        let r = Response::Traced {
            data: data.clone(),
            trace: "query 1ms\n  scan 1ms".into(),
        };
        let j = JsonValue::parse(&r.to_json().render()).unwrap();
        match Response::from_json(&j).unwrap() {
            Response::Traced { data: d, trace } => {
                assert_eq!(d, data);
                assert!(trace.contains("scan"));
            }
            other => panic!("wrong shape {other:?}"),
        }

        let r = Response::error(codes::BUSY, "at capacity (64 sessions)");
        let j = JsonValue::parse(&r.to_json().render()).unwrap();
        match Response::from_json(&j).unwrap() {
            Response::Error {
                code,
                message,
                request_id,
            } => {
                assert_eq!(code, "BUSY");
                assert!(message.contains("capacity"));
                assert_eq!(request_id, None);
            }
            other => panic!("wrong shape {other:?}"),
        }
    }

    #[test]
    fn error_request_ids_ride_the_wire() {
        let r = Response::from_ql_error(&QlError::Parse("oops".into())).tag_request(42);
        let j = JsonValue::parse(&r.to_json().render()).unwrap();
        match Response::from_json(&j).unwrap() {
            Response::Error {
                code, request_id, ..
            } => {
                assert_eq!(code, "PARSE");
                assert_eq!(request_id, Some(42));
            }
            other => panic!("wrong shape {other:?}"),
        }
        // tag_request is a no-op on success shapes.
        match Response::Text("pong".into()).tag_request(7) {
            Response::Text(t) => assert_eq!(t, "pong"),
            other => panic!("wrong shape {other:?}"),
        }
    }
}
