//! `just-server` — the network serving layer for JUST (Section VII of
//! the paper: the service layer that fronts the shared engine for many
//! concurrent clients).
//!
//! The embedded stack (`just-core` + `just-ql`) runs in one process.
//! This crate puts a socket in front of it:
//!
//! * [`frame`] — length-prefixed framing (`u32` big-endian length +
//!   UTF-8 JSON payload), with the size cap enforced from the header
//!   before any allocation.
//! * [`protocol`] — the request/response vocabulary (`hello`,
//!   `execute`, `explain_analyze`, `metrics`, `health`, `ping`,
//!   `shutdown`) and the server-layer error codes
//!   ([`protocol::codes`]).
//! * [`server`] — the listener: one thread per admitted connection,
//!   an admission gate that *sheds* load above `max_sessions` with a
//!   typed `BUSY` response (never an unbounded queue), per-connection
//!   user sessions multiplexed onto one shared [`just_core::Engine`],
//!   and coordinated graceful shutdown that drains in-flight requests.
//! * [`client`] — [`RemoteClient`], mirroring the embedded
//!   [`just_ql::Client`] API over the wire; results round-trip
//!   byte-identically (see `just_ql::wire`) and errors keep their
//!   structured codes.
//!
//! Two binaries ship with the crate: `justd` (the daemon) and
//! `just-cli` (a one-shot command-line client). The README "Serving"
//! section documents both.
//!
//! Server activity is observable through the global `just-obs`
//! registry: `just_server_connections_accepted`/`_closed`,
//! `just_server_rejected_busy`, `just_server_requests`,
//! `just_server_request_errors`, and the
//! `just_server_request_latency_us` histogram — all served back over
//! the wire by the `metrics` command.

#![deny(missing_docs)]

pub mod client;
pub mod frame;
pub mod protocol;
pub mod server;

pub use client::RemoteClient;
pub use frame::FrameError;
pub use protocol::{Request, Response};
pub use server::{Server, ServerConfig, ServerHandle};
