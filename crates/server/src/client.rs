//! [`RemoteClient`]: the embedded [`just_ql::Client`] API over a socket.
//!
//! `execute` and `explain_analyze` mirror the embedded client's
//! signatures, so switching an application between in-process and
//! served execution is a constructor swap (see `examples/server.rs` at
//! the workspace root). Transport failures surface as
//! [`QlError::Remote`] with code `IO`; server-side failures keep their
//! structured code ([`QlError::code`] round-trips the wire).

use crate::frame::{read_frame, write_frame, FrameError};
use crate::protocol::{codes, Request, Response};
use just_core::Dataset;
use just_ql::{JsonValue, QlError, QueryResult};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Frames the client will accept from the server (metrics expositions
/// and large result sets are bigger than typical requests).
const CLIENT_MAX_FRAME: usize = 64 * 1024 * 1024;

/// A connection to a `justd` server, authenticated as one user.
pub struct RemoteClient {
    stream: TcpStream,
}

impl RemoteClient {
    /// Connects and authenticates as `user` (the session namespace).
    pub fn connect(addr: impl ToSocketAddrs, user: &str) -> just_ql::Result<Self> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).ok();
        let mut client = RemoteClient { stream };
        match client.call(&Request::Hello {
            user: user.to_string(),
        })? {
            Response::Text(_) => Ok(client),
            other => Err(unexpected(other)),
        }
    }

    /// Sets a receive deadline for each response (default: wait
    /// indefinitely).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> just_ql::Result<()> {
        self.stream.set_read_timeout(timeout).map_err(io_err)
    }

    /// Parses, optimizes and executes one statement on the server —
    /// the remote mirror of [`just_ql::Client::execute`].
    pub fn execute(&mut self, sql: &str) -> just_ql::Result<QueryResult> {
        match self.call(&Request::Execute {
            sql: sql.to_string(),
        })? {
            Response::Result(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    /// Executes a SELECT and returns rows plus the rendered
    /// per-operator trace — the remote mirror of
    /// [`just_ql::Client::explain_analyze`] (the trace arrives
    /// pre-rendered; span arenas do not cross the wire).
    pub fn explain_analyze(&mut self, sql: &str) -> just_ql::Result<(Dataset, String)> {
        match self.call(&Request::ExplainAnalyze {
            sql: sql.to_string(),
        })? {
            Response::Traced { data, trace } => Ok((data, trace)),
            other => Err(unexpected(other)),
        }
    }

    /// The server's Prometheus-style metrics exposition.
    pub fn metrics_text(&mut self) -> just_ql::Result<String> {
        self.expect_text(&Request::Metrics)
    }

    /// Health check: `"ok"` serving, `"draining"` during shutdown.
    pub fn health(&mut self) -> just_ql::Result<String> {
        self.expect_text(&Request::Health)
    }

    /// Round-trip no-op.
    pub fn ping(&mut self) -> just_ql::Result<String> {
        self.expect_text(&Request::Ping)
    }

    /// Asks the server to drain and stop; returns its acknowledgement.
    pub fn shutdown_server(&mut self) -> just_ql::Result<String> {
        self.expect_text(&Request::Shutdown)
    }

    fn expect_text(&mut self, req: &Request) -> just_ql::Result<String> {
        match self.call(req)? {
            Response::Text(t) => Ok(t),
            other => Err(unexpected(other)),
        }
    }

    /// One request/response exchange. Server-side errors become typed
    /// [`QlError`]s via [`QlError::from_wire`].
    fn call(&mut self, req: &Request) -> just_ql::Result<Response> {
        write_frame(&mut self.stream, req.to_json().render().as_bytes()).map_err(io_err)?;
        let payload =
            read_frame(&mut self.stream, CLIENT_MAX_FRAME, &mut || true).map_err(frame_err)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| QlError::from_wire(codes::MALFORMED, "response is not UTF-8"))?;
        let json = JsonValue::parse(text)
            .map_err(|e| QlError::from_wire(codes::MALFORMED, e.to_string()))?;
        match Response::from_json(&json)? {
            Response::Error {
                code,
                message,
                request_id,
            } => {
                // Quote the server's request id so a failure report can
                // be found again in `SHOW EVENTS` / the server log.
                let message = match request_id {
                    Some(id) => format!("{message} (request id {id})"),
                    None => message,
                };
                Err(QlError::from_wire(&code, message))
            }
            ok => Ok(ok),
        }
    }
}

fn io_err(e: std::io::Error) -> QlError {
    QlError::from_wire(codes::IO, e.to_string())
}

fn frame_err(e: FrameError) -> QlError {
    match e {
        FrameError::TooLarge { len, max } => QlError::from_wire(
            codes::TOO_LARGE,
            format!("response frame of {len} bytes exceeds cap of {max}"),
        ),
        other => QlError::from_wire(codes::IO, other.to_string()),
    }
}

fn unexpected(r: Response) -> QlError {
    QlError::from_wire(codes::MALFORMED, format!("unexpected response {r:?}"))
}
