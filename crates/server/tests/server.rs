//! End-to-end serving tests: many concurrent clients against one
//! server, admission-control shedding, graceful drain, and hostile
//! frames — the acceptance bar for the serving layer.

use just_core::{Dataset, Engine, EngineConfig, SessionManager};
use just_ql::{Client, JsonValue, QueryResult};
use just_server::{RemoteClient, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn fresh(name: &str) -> (Arc<Engine>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "just-server-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(Engine::open(&dir, EngineConfig::default()).unwrap());
    (engine, dir)
}

/// Seeds a shared table in user `u`'s namespace through the embedded
/// stack, so remote sessions for the same user see it.
fn seed(engine: &Arc<Engine>, user: &str) {
    let sessions = SessionManager::new(engine.clone());
    let mut c = Client::new(sessions.session(user));
    c.execute("CREATE TABLE pts (fid integer:primary key, time date, geom point)")
        .unwrap();
    for fid in 0..200i64 {
        let lng = 116.0 + (fid % 20) as f64 * 0.01;
        let lat = 39.5 + (fid / 20) as f64 * 0.01;
        let t = fid * 60_000;
        c.execute(&format!(
            "INSERT INTO pts VALUES ({fid}, {t}, 'POINT({lng} {lat})')"
        ))
        .unwrap();
    }
}

const RANGE_SQL: &str = "SELECT fid FROM pts WHERE geom WITHIN \
     st_makeMBR(116.0, 39.5, 116.1, 39.55) ORDER BY fid";

fn embedded_result(engine: &Arc<Engine>, user: &str, sql: &str) -> Dataset {
    let sessions = SessionManager::new(engine.clone());
    let mut c = Client::new(sessions.session(user));
    c.execute(sql).unwrap().into_dataset().unwrap()
}

// ---------------------------------------------------------------- raw frames

fn send_raw(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
}

fn recv_raw(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; 4];
    if stream.read_exact(&mut header).is_err() {
        return None;
    }
    let mut payload = vec![0u8; u32::from_be_bytes(header) as usize];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

fn recv_json(stream: &mut TcpStream) -> Option<JsonValue> {
    let payload = recv_raw(stream)?;
    Some(JsonValue::parse(std::str::from_utf8(&payload).unwrap()).unwrap())
}

// -------------------------------------------------------------------- tests

#[test]
fn eight_concurrent_clients_match_embedded_execution() {
    let (engine, dir) = fresh("conc");
    seed(&engine, "it");
    let expected = embedded_result(&engine, "it", RANGE_SQL);
    assert!(!expected.rows.is_empty(), "seed should hit the window");

    let handle = Server::start(engine.clone(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = RemoteClient::connect(addr, "it").unwrap();
                for round in 0..5 {
                    // Shared-table read: identical to embedded, every time.
                    let got = c.execute(RANGE_SQL).unwrap().into_dataset().unwrap();
                    assert_eq!(got, expected, "thread {t} round {round} diverged");
                    // Private-table write/read, exercising DDL+DML under
                    // concurrency (one namespace per connection user, one
                    // private table per thread).
                    if round == 0 {
                        c.execute(&format!(
                            "CREATE TABLE own_{t} (fid integer:primary key, geom point)"
                        ))
                        .unwrap();
                    }
                    c.execute(&format!(
                        "INSERT INTO own_{t} VALUES ({round}, 'POINT(1.0 2.0)')"
                    ))
                    .unwrap();
                }
                let mine = c
                    .execute(&format!("SELECT fid FROM own_{t} ORDER BY fid"))
                    .unwrap()
                    .into_dataset()
                    .unwrap();
                assert_eq!(mine.len(), 5);
                // The traced path works remotely too, and the trace is the
                // rendered span tree.
                let (data, trace) = c.explain_analyze(RANGE_SQL).unwrap();
                assert_eq!(data, expected);
                assert!(trace.contains("execute"), "trace missing spans: {trace}");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.join();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn connections_above_cap_are_shed_with_busy() {
    let (engine, dir) = fresh("busy");
    seed(&engine, "it");
    let cfg = ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    };
    let handle = Server::start(engine, cfg).unwrap();
    let addr = handle.local_addr();

    let _a = RemoteClient::connect(addr, "it").unwrap();
    let b = RemoteClient::connect(addr, "it").unwrap();
    // Third connection: typed BUSY, not a hang or a silent close.
    match RemoteClient::connect(addr, "it") {
        Err(e) => {
            assert_eq!(e.code(), "BUSY", "wanted BUSY, got {e}");
            assert!(e.to_string().contains("capacity"), "{e}");
        }
        Ok(_) => panic!("third connection should have been shed"),
    }
    assert_eq!(handle.active_connections(), 2);

    // Dropping a client frees its slot; a retry is then admitted.
    drop(b);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match RemoteClient::connect(addr, "it") {
            Ok(mut c) => {
                assert_eq!(c.ping().unwrap(), "pong");
                break;
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
    handle.join();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn graceful_shutdown_answers_every_in_flight_request() {
    let (engine, dir) = fresh("drain");
    seed(&engine, "it");
    let cfg = ServerConfig {
        drain_grace: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let handle = Server::start(engine.clone(), cfg).unwrap();
    let addr = handle.local_addr();
    let expected = embedded_result(&engine, "it", RANGE_SQL);

    let n = 8;
    // Everyone (n clients + the shutdown trigger) leaves the barrier at
    // once: the queries race the shutdown, and every one of them must
    // still be answered — that is the drain guarantee.
    let barrier = Arc::new(Barrier::new(n + 1));
    let threads: Vec<_> = (0..n)
        .map(|_| {
            let barrier = barrier.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = RemoteClient::connect(addr, "it").unwrap();
                assert_eq!(c.ping().unwrap(), "pong");
                barrier.wait();
                let got = c.execute(RANGE_SQL).unwrap().into_dataset().unwrap();
                assert_eq!(got, expected);
            })
        })
        .collect();
    barrier.wait();
    handle.shutdown();
    for t in threads {
        t.join().unwrap(); // panics here = a lost response
    }
    handle.join();

    // After the drain, the server is gone: new connections fail outright.
    assert!(TcpStream::connect(addr).is_err() || RemoteClient::connect(addr, "it").is_err());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn a_chatty_client_cannot_stall_the_drain() {
    let (engine, dir) = fresh("chatty");
    let cfg = ServerConfig {
        drain_grace: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let handle = Server::start(engine, cfg).unwrap();
    let addr = handle.local_addr();

    // A client that keeps requests coming faster than drain_grace. If
    // the drain window were measured per-read instead of from the
    // shutdown instant, this client would reset it forever and join()
    // below would never return.
    let spammer = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        let payload: &[u8] = br#"{"op":"ping"}"#;
        loop {
            if s.write_all(&(payload.len() as u32).to_be_bytes()).is_err() {
                break;
            }
            if s.write_all(payload).is_err() {
                break;
            }
            if recv_raw(&mut s).is_none() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    // Let the spammer get going, then drain.
    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    handle.join();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "drain stalled behind a chatty client"
    );
    spammer.join().unwrap();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn malformed_frames_answer_typed_errors_without_crashing() {
    let (engine, dir) = fresh("malformed");
    let handle = Server::start(engine, ServerConfig::default()).unwrap();
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();

    // Not JSON at all: typed MALFORMED, connection survives.
    send_raw(&mut s, b"this is not json");
    let r = recv_json(&mut s).unwrap();
    assert_eq!(r.get("ok").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(r.get("code").and_then(|v| v.as_str()), Some("MALFORMED"));

    // Not UTF-8: same.
    send_raw(&mut s, &[0xff, 0xfe, 0x00, 0x80]);
    let r = recv_json(&mut s).unwrap();
    assert_eq!(r.get("code").and_then(|v| v.as_str()), Some("MALFORMED"));

    // Valid JSON, unknown op: same, and the message names the op.
    send_raw(&mut s, br#"{"op":"levitate"}"#);
    let r = recv_json(&mut s).unwrap();
    assert_eq!(r.get("code").and_then(|v| v.as_str()), Some("MALFORMED"));
    assert!(r
        .get("message")
        .and_then(|v| v.as_str())
        .unwrap()
        .contains("levitate"));

    // The connection still works after all that abuse.
    send_raw(&mut s, br#"{"op":"ping"}"#);
    let r = recv_json(&mut s).unwrap();
    assert_eq!(r.get("text").and_then(|v| v.as_str()), Some("pong"));
    handle.join();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn oversized_frame_is_rejected_from_the_header_then_closed() {
    let (engine, dir) = fresh("oversize");
    let cfg = ServerConfig {
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    };
    let handle = Server::start(engine, cfg).unwrap();
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();

    // Announce a 1 GiB frame and send nothing: the server must answer
    // TOO_LARGE from the header alone (no gigabyte buffer, no hang).
    s.write_all(&(1u32 << 30).to_be_bytes()).unwrap();
    let r = recv_json(&mut s).unwrap();
    assert_eq!(r.get("ok").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(r.get("code").and_then(|v| v.as_str()), Some("TOO_LARGE"));
    // The stream cannot be resynchronized, so the server closes it.
    assert!(recv_raw(&mut s).is_none());
    handle.join();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn queries_before_hello_and_unknown_users_get_auth_errors() {
    let (engine, dir) = fresh("auth");
    seed(&engine, "alice");
    let cfg = ServerConfig {
        users: Some(vec!["alice".to_string()]),
        ..ServerConfig::default()
    };
    let handle = Server::start(engine, cfg).unwrap();
    let addr = handle.local_addr();

    // Execute without hello: AUTH, and the connection survives to try
    // again properly.
    let mut s = TcpStream::connect(addr).unwrap();
    send_raw(&mut s, br#"{"op":"execute","sql":"SELECT fid FROM pts"}"#);
    let r = recv_json(&mut s).unwrap();
    assert_eq!(r.get("code").and_then(|v| v.as_str()), Some("AUTH"));
    // Read-only operational commands are fine without a session, though.
    send_raw(&mut s, br#"{"op":"health"}"#);
    let r = recv_json(&mut s).unwrap();
    assert_eq!(r.get("text").and_then(|v| v.as_str()), Some("ok"));
    // But with an allowlist configured, shutdown is not: a rogue peer
    // that can reach the socket must not be able to stop the daemon.
    send_raw(&mut s, br#"{"op":"shutdown"}"#);
    let r = recv_json(&mut s).unwrap();
    assert_eq!(r.get("code").and_then(|v| v.as_str()), Some("AUTH"));
    assert!(!handle.is_shutting_down(), "rogue shutdown went through");
    drop(s);

    // A user off the allowlist is refused at hello.
    match RemoteClient::connect(addr, "mallory") {
        Err(e) => assert_eq!(e.code(), "AUTH", "wanted AUTH, got {e}"),
        Ok(_) => panic!("mallory should not get a session"),
    }
    // The allowlisted user works.
    let mut c = RemoteClient::connect(addr, "alice").unwrap();
    assert_eq!(
        c.execute("SELECT count(*) FROM pts")
            .unwrap()
            .dataset()
            .map(|d| d.len()),
        Some(1)
    );
    handle.join();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn server_metrics_are_served_and_live_in_the_obs_registry() {
    let (engine, dir) = fresh("metrics");
    seed(&engine, "it");
    let handle = Server::start(engine, ServerConfig::default()).unwrap();
    let mut c = RemoteClient::connect(handle.local_addr(), "it").unwrap();
    match c.execute(RANGE_SQL).unwrap() {
        QueryResult::Data(d) => assert!(!d.rows.is_empty()),
        other => panic!("wanted rows, got {other:?}"),
    }

    // Over the wire: the exposition includes the server's own counters.
    let text = c.metrics_text().unwrap();
    for name in [
        "just_server_connections_accepted",
        "just_server_requests",
        "just_server_request_latency_us",
    ] {
        assert!(text.contains(name), "exposition missing {name}:\n{text}");
    }
    // And in-process: the same registry the rest of the stack records to.
    assert!(just_obs::global().counter("just_server_requests").get() >= 2);
    handle.join();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn show_queries_and_kill_work_over_the_wire() {
    let (engine, dir) = fresh("obs-wire");
    seed(&engine, "ops");
    // Bulk up the table past one scan batch so the kill lands at a
    // batch boundary while the volatile predicate sleeps.
    {
        let sessions = SessionManager::new(engine.clone());
        let mut c = Client::new(sessions.session("ops"));
        let mut values = Vec::new();
        for fid in 200..1500i64 {
            values.push(format!("({fid}, {}, 'POINT(116.0 39.5)')", fid * 60_000));
        }
        c.execute(&format!("INSERT INTO pts VALUES {}", values.join(", ")))
            .unwrap();
    }
    let handle = Server::start(engine, ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // A runaway scan on one connection...
    let scanner = std::thread::spawn(move || {
        let mut c = RemoteClient::connect(addr, "ops").unwrap();
        c.set_timeout(Some(Duration::from_secs(30))).unwrap();
        c.execute("SELECT fid FROM pts WHERE sleep_ms(2) >= 0")
    });

    // ...shows up in SHOW QUERIES on another, with live IO stats.
    let mut ops = RemoteClient::connect(addr, "ops").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut id = None;
    while Instant::now() < deadline {
        let q = ops.execute("SHOW QUERIES").unwrap();
        let q = q.dataset().unwrap().clone();
        if let Some(row) = q.rows.first() {
            assert!(
                row.values[8].as_str().unwrap().contains("sleep_ms"),
                "normalized SQL must be visible"
            );
            // A wire-executed query carries its server request id.
            assert!(matches!(row.values[2], just_storage::Value::Int(r) if r > 0));
            id = row.values[0].as_int();
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let id = id.expect("scan never appeared in SHOW QUERIES over the wire");

    // KILL QUERY over the wire actually stops it, with a typed error.
    ops.execute(&format!("KILL QUERY {id}")).unwrap();
    let err = scanner.join().unwrap().expect_err("scan must die");
    assert_eq!(err.code(), "CANCELLED");

    // SHOW REGIONS works remotely and stays namespaced.
    let r = ops.execute("SHOW REGIONS").unwrap();
    assert!(!r.dataset().unwrap().rows.is_empty());

    handle.join();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn error_frames_quote_the_request_id() {
    let (engine, dir) = fresh("req-id");
    let handle = Server::start(engine, ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    send_raw(&mut stream, br#"{"op":"hello","user":"ops"}"#);
    recv_json(&mut stream).unwrap();
    send_raw(&mut stream, br#"{"op":"execute","sql":"SELEKT nope"}"#);
    let err = recv_json(&mut stream).unwrap();
    assert_eq!(err.get("ok").and_then(|o| o.as_bool()), Some(false));
    assert_eq!(
        err.get("code").and_then(|c| c.as_str()),
        Some("PARSE"),
        "{err:?}"
    );
    let rid = err
        .get("request_id")
        .and_then(|r| r.as_int())
        .expect("error frame must carry the request id");
    assert!(rid > 0);

    // The failure is recorded in the event log under that id, readable
    // via SHOW EVENTS on the same connection.
    send_raw(
        &mut stream,
        br#"{"op":"execute","sql":"SHOW EVENTS LIMIT 20"}"#,
    );
    let events = recv_json(&mut stream).unwrap();
    let rendered = events.render();
    assert!(
        rendered.contains("server.request_error")
            && rendered.contains(&format!("request_id={rid}")),
        "event log must record the failed request: {rendered}"
    );
    handle.join();
    std::fs::remove_dir_all(dir).ok();
}
