//! Ingest throughput vs concurrent writer count: the sharded write path
//! payoff (`ISSUE 8`, ROADMAP item 1).
//!
//! One table, one region — the worst case for the old serialized write
//! path, where every writer contended on a single memtable mutex and a
//! single WAL stream. Each point of the sweep opens a fresh store with
//! the concurrent ingest pipeline (16 memtable shards, one WAL stream)
//! under the `per-write` sync policy — the policy where the old path's
//! cost was starkest: one fsync per acknowledged row. With cross-shard
//! group commit, one fsync covers every writer queued on the stream, so
//! throughput scales with writers even on a single-core box (the win is
//! fsync amortization, not CPU parallelism). One stream, deliberately:
//! with random key salting, batching comes from writers *colliding* on
//! a stream while its fsync is in flight, and spreading 16 writers over
//! more streams dilutes collisions back toward one fsync per record
//! (measured here: one stream sustains ~8 rows/fsync at 16 writers,
//! eight streams decay to ~1). Multi-stream remains the right default
//! for multi-region stores, where each region brings its own streams.
//!
//! Writer-side ack latencies are collected exactly (a `Vec` per writer)
//! rather than through the log-scale histograms — the p99 guard
//! compares values a coarse bucket would round past. A point's p99 is
//! the median across writers of each writer's own p99: a background-IO
//! stall (a few ms, a few times a second on shared storage) parks every
//! concurrently-waiting writer at once, so in a merged distribution one
//! stall plants ~16 samples and single-handedly drags the merged p99,
//! while per writer it is one sample in hundreds, invisible at p99.
//!
//! Two functional guards (re-checked by `ci.sh`), both computed from
//! **paired** runs — `GUARD_PAIRS` back-to-back (1-writer, 16-writer)
//! measurements. Shared storage swings between multi-second "moods"
//! (fsync p99 of ~300us in one window, intermittent multi-ms stalls in
//! the next), so any ratio of two points measured seconds apart
//! compares moods, not code; inside one pair both sides inflate
//! together and the ratio survives. The scaling guard takes the median
//! of the per-pair ratios; the p99 guard takes the **cleanest** pair
//! (see below), because a storage mood only ever *inflates* the
//! 16-writer tail — it never deflates it — so when the pairs disagree,
//! the best pair is the closest estimate of the machine-inherent cliff
//! and the worst pairs are measurements of the mood.
//!
//! - **scaling**: 16-writer throughput ≥ **3×** single-writer;
//! - **p99**: 16-writer p99 ack latency stays flat — within **2×** the
//!   single-writer p99, or failing that within **5×** the 16-writer
//!   point's own p50. The guard exists to catch queueing that grows
//!   with writer count: a fully serialized ack path pushes the
//!   16-writer p99 to 6-10× its p50, and the shard-lock convoy this
//!   guard was built against measured 15-78ms tails (40-100×), while
//!   healthy group commit sits at 2-4× (full-scale windows are long
//!   enough that each writer's p99 swallows a couple of real device
//!   stalls). The cross-point ratio alone is structurally ~2.0
//!   on a box where fsync latency dominates — a follower's worst-case
//!   ack spans two fsync periods (the tail of the in-flight fsync it
//!   just missed, plus its own covering one) against the solo writer's
//!   single period — so it flips on residual noise; the own-p50
//!   flatness check is the stable detector. A pair is **clean** when it
//!   meets either bound, and the guard passes when at least one of the
//!   `GUARD_PAIRS` pairs is clean: the pathologies this guard exists to
//!   catch (ack-path convoys) are structural and show up in *every*
//!   pair, while device stalls are intermittent and spare at least one.

use crate::config::BenchConfig;
use crate::harness::{Report, Table};
use just_kvstore::{IngestOptions, Store, StoreOptions, SyncPolicy};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Writer-thread sweep; the guards compare index 0 (1 writer) against
/// the 16-writer point.
const WRITERS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Rows per writer at `--scale 1`.
const ROWS_PER_WRITER_FULL_SCALE: usize = 1500;

/// Repetitions per sweep point; each reported metric is the median
/// across them. A single background-IO stall (a few ms, a few times a
/// second on shared storage) lands in ~1% of samples and would
/// otherwise singlehandedly decide a point's tail in either direction.
const REPS: usize = 3;

/// Back-to-back (1-writer, 16-writer) pairs the guards are computed
/// from; the scaling guard takes the median of its per-pair ratios and
/// the p99 guard takes the cleanest pair (see the module docs on device
/// moods).
const GUARD_PAIRS: usize = 5;

struct Point {
    writers: usize,
    rows: usize,
    secs: f64,
    p50_us: u64,
    p99_us: u64,
    fsyncs: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn measure(tag: &str, writers: usize, rows_per_writer: usize) -> Point {
    let dir = std::env::temp_dir().join(format!(
        "just-fig-ingest-{tag}-{writers}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let mut opts = StoreOptions {
        // Large threshold: the sweep measures the ingest pipeline, not
        // flush throughput.
        flush_threshold: 256 << 20,
        ingest: IngestOptions {
            mem_shards: 16,
            wal_streams: 1,
        },
        ..StoreOptions::default()
    };
    opts.durability.sync = SyncPolicy::PerWrite;
    opts.maintenance.enabled = false;
    let store = Store::open(&dir, opts).expect("store");
    let table = store.create_table("ingest", 1).expect("table");

    // Warmup + start barrier: store open, thread spawn and first-touch
    // page faults all land *before* the measured window, so latency
    // tails reflect the steady-state pipeline, not process startup.
    let warmup = (rows_per_writer / 5).max(16);
    let barrier = Arc::new(Barrier::new(writers + 1));
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let table = table.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for i in 0..warmup {
                    let key = format!("warm-w{w:02}-{i:08}").into_bytes();
                    table.put(key, vec![0x4au8; 64]).expect("warmup put");
                }
                barrier.wait();
                let mut lat_us = Vec::with_capacity(rows_per_writer);
                for i in 0..rows_per_writer {
                    let key = format!("w{w:02}-{i:08}").into_bytes();
                    let value = vec![0x4au8; 64];
                    let t = Instant::now();
                    table.put(key, value).expect("put");
                    lat_us.push(t.elapsed().as_micros() as u64);
                }
                lat_us
            })
        })
        .collect();
    barrier.wait();
    let syncs_before = just_obs::global().counter("just_kvstore_wal_syncs").get();
    let t0 = Instant::now();
    let mut per_writer: Vec<Vec<u64>> = handles
        .into_iter()
        .map(|h| h.join().expect("writer thread"))
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    let fsyncs = just_obs::global().counter("just_kvstore_wal_syncs").get() - syncs_before;
    drop(table);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    let mut merged: Vec<u64> = per_writer.iter().flatten().copied().collect();
    merged.sort_unstable();
    // Median across writers of per-writer p99 (see the module docs on
    // why a merged p99 is stall-fragile at high writer counts).
    let mut writer_p99s: Vec<u64> = per_writer
        .iter_mut()
        .map(|lat| {
            lat.sort_unstable();
            percentile(lat, 0.99)
        })
        .collect();
    writer_p99s.sort_unstable();
    Point {
        writers,
        rows: writers * rows_per_writer,
        secs,
        p50_us: percentile(&merged, 0.50),
        p99_us: writer_p99s[writer_p99s.len() / 2],
        fsyncs,
    }
}

/// Runs [`REPS`] repetitions of one sweep point and takes the median of
/// each metric independently.
fn measure_median(writers: usize, rows_per_writer: usize) -> Point {
    let reps: Vec<Point> = (0..REPS)
        .map(|r| measure(&format!("rep{r}"), writers, rows_per_writer))
        .collect();
    fn med_u64(mut v: Vec<u64>) -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    }
    fn med_f64(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    }
    Point {
        writers,
        rows: writers * rows_per_writer,
        secs: med_f64(reps.iter().map(|p| p.secs).collect()),
        p50_us: med_u64(reps.iter().map(|p| p.p50_us).collect()),
        p99_us: med_u64(reps.iter().map(|p| p.p99_us).collect()),
        fsyncs: med_u64(reps.iter().map(|p| p.fsyncs).collect()),
    }
}

/// Runs the writer-count sweep. Returns `true` when both the scaling
/// and p99 guards hold.
pub fn run(cfg: &BenchConfig, out: &mut impl std::io::Write, report: &mut Report) -> bool {
    // Floor of 400: the single-writer p99 is the guard's denominator,
    // and with fewer samples it is decided by a couple of outliers.
    let rows_per_writer =
        (ROWS_PER_WRITER_FULL_SCALE as f64 * cfg.orders as f64 / 20_000.0).max(400.0) as usize;
    report.meta_raw(
        "host_cpus",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .to_string(),
    );
    report.meta_raw(
        "writer_sweep",
        format!(
            "[{}]",
            WRITERS
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    report.meta_raw("rows_per_writer", rows_per_writer.to_string());
    report.meta_raw("reps", REPS.to_string());
    report.meta_str("wal_sync", "per-write");
    report.meta_raw("mem_shards", "16");
    report.meta_raw("wal_streams", "1");

    let mut points = Vec::with_capacity(WRITERS.len());
    for &w in &WRITERS {
        report.phase(&format!("writers_{w}"));
        points.push(measure_median(w, rows_per_writer));
    }

    let mut table = Table::new(&[
        "writers",
        "rows",
        "rows/s",
        "p50 us",
        "p99 us",
        "fsyncs",
        "rows/fsync",
    ]);
    for p in &points {
        let thr = p.rows as f64 / p.secs;
        table.row(vec![
            p.writers.to_string(),
            p.rows.to_string(),
            format!("{thr:.0}"),
            p.p50_us.to_string(),
            p.p99_us.to_string(),
            p.fsyncs.to_string(),
            format!("{:.1}", p.rows as f64 / (p.fsyncs.max(1)) as f64),
        ]);
        report.meta_raw(
            &format!("throughput_rps_w{}", p.writers),
            format!("{:.0}", thr),
        );
        report.meta_raw(&format!("p99_us_w{}", p.writers), p.p99_us.to_string());
    }
    writeln!(
        out,
        "== Ingest concurrency: 1 region, per-write WAL, {} rows/writer ==",
        rows_per_writer
    )
    .unwrap();
    writeln!(out, "{}", table.render()).unwrap();

    // Guards: paired runs, median of per-pair ratios (module docs).
    report.phase("guard_pairs");
    let mut scalings = Vec::with_capacity(GUARD_PAIRS);
    let mut p99_ratios = Vec::with_capacity(GUARD_PAIRS);
    let mut flats = Vec::with_capacity(GUARD_PAIRS);
    let mut last_pair = None;
    for r in 0..GUARD_PAIRS {
        let b = measure(&format!("guard{r}b"), 1, rows_per_writer);
        let s = measure(&format!("guard{r}s"), 16, rows_per_writer);
        scalings.push((s.rows as f64 / s.secs) / (b.rows as f64 / b.secs));
        p99_ratios.push(s.p99_us as f64 / b.p99_us.max(1) as f64);
        flats.push(s.p99_us as f64 / s.p50_us.max(1) as f64);
        last_pair = Some((b, s));
    }
    fn med(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    }
    let scaling = med(scalings);
    // Cleanest pair: noise only inflates the 16-writer tail, so the
    // pair with the lowest flatness is the one least touched by a
    // storage mood (module docs). Both reported ratios come from that
    // same pair so they describe one measurement, not a mix.
    let best = (0..GUARD_PAIRS)
        .min_by(|&a, &b| flats[a].partial_cmp(&flats[b]).expect("finite"))
        .expect("at least one guard pair");
    let p99_ratio = p99_ratios[best];
    let flatness = flats[best];
    let (base, sixteen) = last_pair.expect("at least one guard pair");

    let scaling_ok = scaling >= 3.0;
    writeln!(
        out,
        "scaling guard: {} (16 writers {scaling:.1}x single-writer throughput, \
         median of {GUARD_PAIRS} paired runs, need >= 3x)",
        if scaling_ok { "PASS" } else { "FAIL" }
    )
    .unwrap();
    let p99_ok = (0..GUARD_PAIRS).any(|i| p99_ratios[i] <= 2.0 || flats[i] <= 5.0);
    report.meta_raw("guard_pairs", GUARD_PAIRS.to_string());
    report.meta_raw("scaling_16v1", format!("{scaling:.2}"));
    report.meta_raw("p99_ratio_16v1", format!("{p99_ratio:.2}"));
    report.meta_raw("p99_over_p50_w16", format!("{flatness:.2}"));
    writeln!(
        out,
        "p99 guard: {} (16-writer p99 {p99_ratio:.2}x single-writer, {flatness:.2}x own p50, \
         cleanest of {GUARD_PAIRS} paired runs; need <= 2x single-writer or <= 5x own p50 \
         in at least one pair; last pair {}us vs {}us)",
        if p99_ok { "PASS" } else { "FAIL" },
        sixteen.p99_us,
        base.p99_us
    )
    .unwrap();

    scaling_ok && p99_ok
}
