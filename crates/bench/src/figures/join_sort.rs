//! Vectorized hash join and TOP-K vs their interpreted fallbacks.
//!
//! Two in-memory views (so storage decode can't dilute the comparison —
//! this measures the executor) drive three query shapes on both
//! executor paths, toggled with [`just_ql::set_compiled`]:
//!
//! - **hash join**: an equi-join whose key domain gives ~1 match per
//!   probe row, aggregated so timing stays on the join itself. The
//!   interpreted path runs the O(n·m) nested loop; the compiled path
//!   builds a hash table over the smaller side's encoded keys.
//! - **full sort**: a two-key `ORDER BY` over a 100k+-row view —
//!   key-normalized byte sort vs the interpreted comparator
//!   (informational row, no guard: both are O(n log n)).
//! - **TOP-K**: the same `ORDER BY` with `LIMIT 10` — a bounded heap
//!   over normalized keys vs the interpreted full-sort-then-truncate.
//!
//! Three functional guards (re-checked by `ci.sh`):
//!
//! - **join speedup**: hash join ≥ **3×** faster than the nested loop;
//! - **topk speedup**: the bounded heap ≥ **5×** faster than the full
//!   sort it replaces;
//! - **parity**: both paths return byte-identical datasets (same rows,
//!   same order) for all three shapes.

use crate::config::BenchConfig;
use crate::harness::{time_once, Report, Table};
use just_core::{Dataset, Engine, EngineConfig, SessionManager};
use just_obs::Rng;
use just_ql::{set_compiled, Client};
use just_storage::{Row, Value};

/// Timed runs per (query, path); odd so the median is one sample.
const RUNS: usize = 7;

/// Probe-side join rows at `--scale 1`; the build side stays 1/30th of
/// it, so the interpreted nested loop evaluates ~n²/30 pairs.
const JOIN_ROWS_FULL_SCALE: usize = 12_000;

/// Sort/TOP-K view rows at `--scale 1` (past the 100k mark so the
/// heap's O(n log k) vs O(n log n) gap is visible; the floor keeps
/// smoke runs big enough that scan cost doesn't dilute the ratio).
const SORT_ROWS_FULL_SCALE: usize = 120_000;

const JOIN_SQL: &str = "SELECT count(*) AS pairs, sum(la + rb) AS s FROM lv JOIN rv ON lk = rk";
const SORT_SQL: &str = "SELECT a, g, x FROM sv ORDER BY x DESC, g, a";
const TOPK_SQL: &str = "SELECT a, g, x FROM sv ORDER BY x DESC, g, a LIMIT 10";

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn run_query(client: &mut Client, sql: &str) -> Dataset {
    client
        .execute(sql)
        .expect("query")
        .into_dataset()
        .expect("dataset")
}

/// Runs the join/sort/TOP-K comparison. Returns `true` when the two
/// speedup guards and the parity guard all hold.
pub fn run(cfg: &BenchConfig, out: &mut impl std::io::Write, report: &mut Report) -> bool {
    report.phase("build");
    let dir = std::env::temp_dir().join(format!("just-fig-joinsort-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let engine = std::sync::Arc::new(Engine::open(&dir, EngineConfig::default()).expect("engine"));
    let sessions = SessionManager::new(engine);
    let session = sessions.session("bench");

    let scale = cfg.orders as f64 / 20_000.0;
    let join_n = ((JOIN_ROWS_FULL_SCALE as f64 * scale) as usize).max(1_200);
    let join_m = (join_n / 30).max(40);
    let sort_n = ((SORT_ROWS_FULL_SCALE as f64 * scale) as usize).max(100_000);
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x6A6F_696E);

    // Probe side: keys uniform over the build side's key domain, with a
    // sprinkle of NULLs (which never join) for realism.
    let mut lrows = Vec::with_capacity(join_n);
    for i in 0..join_n {
        let k = if i % 17 == 5 {
            Value::Null
        } else {
            Value::Int((rng.next_u64() % join_m as u64) as i64)
        };
        lrows.push(Row::new(vec![
            Value::Int(i as i64),
            k,
            Value::Float((rng.next_u64() % 10_000) as f64 / 10.0),
        ]));
    }
    let mut rrows = Vec::with_capacity(join_m);
    for b in 0..join_m {
        rrows.push(Row::new(vec![
            Value::Int(b as i64),
            Value::Int(b as i64),
            Value::Float((rng.next_u64() % 10_000) as f64 / 10.0),
        ]));
    }
    let lcols = ["la", "lk", "lx"].iter().map(|s| s.to_string()).collect();
    let rcols = ["rb", "rk", "ry"].iter().map(|s| s.to_string()).collect();
    session
        .create_view("lv", Dataset::new(lcols, lrows))
        .expect("create lv");
    session
        .create_view("rv", Dataset::new(rcols, rrows))
        .expect("create rv");

    // Sort view: a duplicate-heavy float key, then a small group key,
    // then a unique id — ties force the interpreted comparator through
    // several dispatches per comparison while the normalized path
    // encodes each row once.
    let mut srows = Vec::with_capacity(sort_n);
    for a in 0..sort_n {
        srows.push(Row::new(vec![
            Value::Int(a as i64),
            Value::Int((rng.next_u64() % 16) as i64),
            Value::Float((rng.next_u64() % 512) as f64 / 7.0),
        ]));
    }
    let scols = ["a", "g", "x"].iter().map(|s| s.to_string()).collect();
    session
        .create_view("sv", Dataset::new(scols, srows))
        .expect("create sv");
    let mut client = Client::new(sessions.session("bench"));
    report.meta_raw("join_rows", format!("[{join_n},{join_m}]"));
    report.meta_raw("sort_rows", format!("{sort_n}"));

    // Parity first: both paths, all shapes, byte-identical datasets.
    report.phase("parity");
    let mut parity_ok = true;
    for sql in [JOIN_SQL, SORT_SQL, TOPK_SQL] {
        set_compiled(false);
        let interp = run_query(&mut client, sql);
        set_compiled(true);
        let comp = run_query(&mut client, sql);
        parity_ok &= interp.columns == comp.columns && interp.rows == comp.rows;
    }

    report.phase("measure");
    let mut results = Vec::new();
    for (name, sql) in [
        ("hash join", JOIN_SQL),
        ("full sort", SORT_SQL),
        ("top-k (k=10)", TOPK_SQL),
    ] {
        // Interleave the two paths so both see the same machine state.
        let mut interp = Vec::with_capacity(RUNS);
        let mut comp = Vec::with_capacity(RUNS);
        for _ in 0..RUNS {
            set_compiled(false);
            interp.push(time_once(|| run_query(&mut client, sql)).1.as_secs_f64());
            set_compiled(true);
            comp.push(time_once(|| run_query(&mut client, sql)).1.as_secs_f64());
        }
        results.push((name, median(interp), median(comp)));
    }
    set_compiled(true);

    let mut table = Table::new(&["query", "interpreted ms", "compiled ms", "speedup"]);
    for (name, ti, tc) in &results {
        table.row(vec![
            name.to_string(),
            format!("{:.2}", ti * 1e3),
            format!("{:.2}", tc * 1e3),
            format!("{:.1}x", ti / tc.max(f64::MIN_POSITIVE)),
        ]);
    }
    writeln!(
        out,
        "== Hash join / TOP-K: {join_n}x{join_m} join, {sort_n}-row sort, \
         median of {RUNS} interleaved runs =="
    )
    .unwrap();
    writeln!(out, "{}", table.render()).unwrap();

    let speedup = |name: &str| {
        results
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, ti, tc)| ti / tc.max(f64::MIN_POSITIVE))
            .unwrap_or(0.0)
    };
    let join_speedup = speedup("hash join");
    let topk_speedup = speedup("top-k (k=10)");
    let join_ok = join_speedup >= 3.0;
    let topk_ok = topk_speedup >= 5.0;
    writeln!(
        out,
        "join speedup guard: {} ({join_speedup:.1}x over nested loop, need >= 3x)",
        if join_ok { "PASS" } else { "FAIL" }
    )
    .unwrap();
    writeln!(
        out,
        "topk speedup guard: {} ({topk_speedup:.1}x over full sort, need >= 5x)",
        if topk_ok { "PASS" } else { "FAIL" }
    )
    .unwrap();
    writeln!(
        out,
        "parity guard: {} (compiled and interpreted datasets {})",
        if parity_ok { "PASS" } else { "FAIL" },
        if parity_ok { "identical" } else { "DIFFER" }
    )
    .unwrap();

    std::fs::remove_dir_all(&dir).ok();
    join_ok && topk_ok && parity_ok
}
