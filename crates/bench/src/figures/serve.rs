//! Serving throughput: queries/sec through `just-server` as the number
//! of concurrent client connections grows.
//!
//! This is the serving-layer counterpart of the paper's Section VII
//! claim that one shared engine can front many tenants: each
//! connection is a full remote session (framing, JSON decode, session
//! namespace lookup, execution, response encode), so the figure
//! measures the whole wire path, not just the executor. Per-phase IO
//! deltas land in the `--json` report alongside the
//! `just_server_request_latency_us` histogram.

use crate::config::BenchConfig;
use crate::figures::{order_rows_with_addr, order_schema};
use crate::harness::{Report, Table};
use crate::workload::{query_windows, OrderDataset};
use just_core::{Engine, EngineConfig, SessionManager};
use just_server::{RemoteClient, Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

/// Connection counts swept by the figure.
pub const CONCURRENCY: [usize; 4] = [1, 2, 4, 8];

/// Runs the serving-throughput sweep.
pub fn run(cfg: &BenchConfig, out: &mut impl std::io::Write, report: &mut Report) {
    report.phase("build");
    // The server needs the engine behind an `Arc` (it is shared with
    // worker threads), so the throwaway directory is managed by hand
    // here instead of through `TempEngine`.
    let dir = std::env::temp_dir().join(format!(
        "just-fig-serve-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(Engine::open(&dir, EngineConfig::default()).expect("engine open"));
    let sessions = SessionManager::new(engine.clone());
    let bench = sessions.session("bench");
    bench
        .create_table("orders", order_schema(false), None, None)
        .expect("create orders");
    let orders = OrderDataset::generate(cfg.orders, cfg.seed);
    bench
        .insert("orders", &order_rows_with_addr(&orders.orders))
        .expect("insert orders");
    engine.flush_all().expect("flush");

    let windows = query_windows(cfg.queries_per_point, cfg.default_window_km(), cfg.seed);
    let queries: Vec<String> = windows
        .iter()
        .map(|w| {
            format!(
                "SELECT fid FROM orders WHERE geom WITHIN st_makeMBR({}, {}, {}, {})",
                w.min_x, w.min_y, w.max_x, w.max_y
            )
        })
        .collect();

    let server_cfg = ServerConfig {
        max_sessions: CONCURRENCY[CONCURRENCY.len() - 1] + 2,
        ..ServerConfig::default()
    };
    let handle = Server::start(engine, server_cfg).expect("server start");
    let addr = handle.local_addr();

    let mut table = Table::new(&["connections", "queries", "secs", "queries/sec"]);
    for &conc in &CONCURRENCY {
        report.phase(&format!("serve-c{conc}"));
        let t0 = Instant::now();
        let workers: Vec<_> = (0..conc)
            .map(|w| {
                let queries = queries.clone();
                std::thread::spawn(move || {
                    let mut client = RemoteClient::connect(addr, "bench").expect("connect");
                    let mut done = 0u64;
                    // Every connection runs the whole query set, offset
                    // so concurrent clients are not in lockstep.
                    for i in 0..queries.len() {
                        let sql = &queries[(i + w) % queries.len()];
                        client.execute(sql).expect("remote query");
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        let total: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
        let secs = t0.elapsed().as_secs_f64();
        table.row(vec![
            conc.to_string(),
            total.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", total as f64 / secs),
        ]);
    }
    handle.join();
    std::fs::remove_dir_all(&dir).ok();

    writeln!(out, "== Serving: queries/sec vs concurrent connections ==").unwrap();
    writeln!(out, "{}", table.render()).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_figure_runs_at_tiny_scale() {
        let cfg = BenchConfig {
            orders: 200,
            queries_per_point: 3,
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        run(&cfg, &mut buf, &mut Report::new("serve"));
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("queries/sec"), "missing table: {text}");
        // One row per concurrency level.
        for conc in CONCURRENCY {
            assert!(text
                .lines()
                .any(|l| l.trim().starts_with(&conc.to_string())));
        }
    }
}
