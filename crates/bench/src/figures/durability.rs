//! Durability overhead: ingest throughput under each WAL sync policy
//! (plus WAL off entirely as the baseline).
//!
//! HBase pays the same tax — every mutation goes through the region
//! server's WAL before the MemStore — so this figure tracks what the
//! write-path semantics reproduced from the paper's substrate cost us:
//! `none` buffers records in user space, `batched` (the default)
//! `write(2)`s each record and batches fsyncs (acknowledged writes
//! survive `kill -9`), `per-write` fsyncs every record (survives power
//! loss).

use crate::config::BenchConfig;
use crate::figures::{order_rows_with_addr, order_schema};
use crate::harness::{Report, Table};
use crate::workload::OrderDataset;
use just_core::{Engine, EngineConfig};
use just_kvstore::{DurabilityOptions, SyncPolicy};
use std::time::Instant;

/// The swept configurations: (label, durability settings).
pub fn variants() -> Vec<(&'static str, DurabilityOptions)> {
    vec![
        ("wal-off", DurabilityOptions::disabled()),
        (
            "none",
            DurabilityOptions {
                sync: SyncPolicy::None,
                ..DurabilityOptions::default()
            },
        ),
        (
            "batched",
            DurabilityOptions {
                sync: SyncPolicy::Batched,
                ..DurabilityOptions::default()
            },
        ),
        (
            "per-write",
            DurabilityOptions {
                sync: SyncPolicy::PerWrite,
                ..DurabilityOptions::default()
            },
        ),
    ]
}

/// Runs the WAL-overhead sweep.
pub fn run(cfg: &BenchConfig, out: &mut impl std::io::Write, report: &mut Report) {
    let orders = OrderDataset::generate(cfg.orders, cfg.seed);
    let rows = order_rows_with_addr(&orders.orders);

    let mut table = Table::new(&["sync policy", "rows", "secs", "rows/sec"]);
    for (label, durability) in variants() {
        report.phase(&format!("ingest-{label}"));
        let dir = std::env::temp_dir().join(format!(
            "just-fig-durability-{label}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut engine_cfg = EngineConfig::default();
        engine_cfg.store.durability = durability;
        let engine = Engine::open(&dir, engine_cfg).expect("engine open");
        engine
            .create_table("orders", order_schema(false), None, None)
            .expect("create orders");
        let t0 = Instant::now();
        engine.insert("orders", &rows).expect("insert orders");
        let secs = t0.elapsed().as_secs_f64();
        table.row(vec![
            label.to_string(),
            rows.len().to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", rows.len() as f64 / secs),
        ]);
        drop(engine);
        std::fs::remove_dir_all(&dir).ok();
    }

    writeln!(
        out,
        "== Durability: ingest throughput vs WAL sync policy =="
    )
    .unwrap();
    writeln!(out, "{}", table.render()).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_figure_runs_at_tiny_scale() {
        let cfg = BenchConfig {
            orders: 200,
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        run(&cfg, &mut buf, &mut Report::new("durability"));
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("rows/sec"), "missing table: {text}");
        for (label, _) in variants() {
            assert!(
                text.lines().any(|l| l.trim().starts_with(label)),
                "missing row for {label}: {text}"
            );
        }
    }
}
