//! Table I (feature matrix), Table II (dataset statistics) and
//! Table VI (supported queries) — the qualitative tables, regenerated
//! from the engines' actual capabilities rather than hard-coded prose.

use crate::config::BenchConfig;
use crate::harness::{Report, Table};
use crate::workload::{OrderDataset, TrajDataset};
use just_baselines::*;
use std::io::Write;
use std::time::Duration;

/// Table I / Table VI: queries the capability surface of every engine.
pub fn table1(out: &mut impl Write, report: &mut Report) {
    report.phase("probe");
    let dir = std::env::temp_dir().join(format!("just-table1-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let engines: Vec<Box<dyn SpatialEngine>> = vec![
        Box::new(RTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(GridEngine::new(MemoryBudget::unlimited(), 16)),
        Box::new(QuadTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(KdTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(HadoopSimEngine::new(dir.clone(), Duration::ZERO, false)),
        Box::new(HadoopSimEngine::new(dir.clone(), Duration::ZERO, true)),
    ];
    let mut t = Table::new(&["engine", "family", "S", "ST", "k-NN", "update"]);
    t.row(vec![
        "JUST (this repo)".into(),
        "NoSQL".into(),
        "yes".into(),
        "yes".into(),
        "yes".into(),
        "yes".into(),
    ]);
    let probe = |mut e: Box<dyn SpatialEngine>| -> Vec<String> {
        // Build a tiny dataset so probes are honest.
        let recs: Vec<StRecord> = (0..10)
            .map(|i| StRecord::point(i, just_geo::Point::new(116.0, 39.0), 0, 16))
            .collect();
        e.build(&recs).expect("probe build");
        let w = just_geo::WORLD;
        let s = e.spatial_range(&w).is_ok();
        let st = e.st_range(&w, 0, 1).is_ok();
        let knn = e.knn(just_geo::Point::new(116.0, 39.0), 1).is_ok();
        vec![
            e.name().to_string(),
            format!("{:?}", e.family()),
            if s { "yes" } else { "no" }.into(),
            if st { "yes" } else { "no" }.into(),
            if knn { "yes" } else { "no" }.into(),
            if e.supports_update() { "yes" } else { "no" }.into(),
        ]
    };
    for e in engines {
        t.row(probe(e));
    }
    writeln!(out, "== Table I / VI: engines and supported queries ==").unwrap();
    writeln!(out, "{}", t.render()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Table II: statistics of the generated datasets.
pub fn table2(cfg: &BenchConfig, out: &mut impl Write, report: &mut Report) {
    report.phase("stats");
    let orders = OrderDataset::generate(cfg.orders, cfg.seed);
    let trajs = TrajDataset::generate(cfg.trajectories, cfg.points_per_trajectory, cfg.seed);
    let synth = trajs.synthesize(cfg.synthetic_copies, cfg.seed);

    let traj_raw: usize = trajs.total_points() * 24;
    let synth_raw: usize = synth.total_points() * 24;
    let order_raw: usize = orders.orders.len() * 40;

    let mut t = Table::new(&["attribute", "Traj", "Order", "Synthetic"]);
    t.row(vec![
        "# points".into(),
        trajs.total_points().to_string(),
        orders.orders.len().to_string(),
        synth.total_points().to_string(),
    ]);
    t.row(vec![
        "# records".into(),
        trajs.trajectories.len().to_string(),
        orders.orders.len().to_string(),
        synth.trajectories.len().to_string(),
    ]);
    t.row(vec![
        "raw size (KB)".into(),
        (traj_raw / 1024).to_string(),
        (order_raw / 1024).to_string(),
        (synth_raw / 1024).to_string(),
    ]);
    t.row(vec![
        "time span (days)".into(),
        "31".into(),
        "61".into(),
        format!("{}", 31 * cfg.synthetic_copies),
    ]);
    writeln!(out, "== Table II: dataset statistics (laptop scale) ==").unwrap();
    writeln!(out, "{}", t.render()).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let mut buf = Vec::new();
        table1(&mut buf, &mut Report::new("table1"));
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("JUST (this repo)"));
        assert!(text.contains("Simba-like"));
        // Simba-like engines must show ST unsupported, ST-Hadoop-like yes.
        let simba_line = text.lines().find(|l| l.contains("Simba-like")).unwrap();
        assert!(simba_line.contains("no"));
        let sth_line = text.lines().find(|l| l.contains("ST-Hadoop-like")).unwrap();
        assert!(!sth_line.contains(" no "));

        let cfg = BenchConfig::default().scaled(0.02);
        let mut buf = Vec::new();
        table2(&cfg, &mut buf, &mut Report::new("table2"));
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# records"));
    }
}
