//! Figure 12: spatio-temporal range query performance — the paper's
//! headline result. JUST (Z2T/XZ2T with day periods) against the Z3/XZ3
//! variants JUSTd (day), JUSTy (year), JUSTc (century), plus the
//! ST-Hadoop stand-in.

use crate::config::BenchConfig;
use crate::figures::{build_order_table, build_traj_table, TempEngine};
use crate::harness::{median_latency, ms, Report, Table};
use crate::workload::{
    order_records, query_time_windows, query_windows, OrderDataset, TrajDataset,
};
use just_baselines::{HadoopSimEngine, SpatialEngine};
use just_curves::TimePeriod;
use just_storage::{IndexKind, SpatialPredicate};
use std::io::Write;

struct OrderVariants {
    just: TempEngine,
    just_d: TempEngine,
    just_y: TempEngine,
    just_c: TempEngine,
}

fn order_variants(orders: &[crate::workload::Order]) -> OrderVariants {
    OrderVariants {
        just: build_order_table("f12-z2t", orders, None, TimePeriod::Day, false).0,
        just_d: build_order_table(
            "f12-z3d",
            orders,
            Some(IndexKind::Z3),
            TimePeriod::Day,
            false,
        )
        .0,
        just_y: build_order_table(
            "f12-z3y",
            orders,
            Some(IndexKind::Z3),
            TimePeriod::Year,
            false,
        )
        .0,
        just_c: build_order_table(
            "f12-z3c",
            orders,
            Some(IndexKind::Z3),
            TimePeriod::Century,
            false,
        )
        .0,
    }
}

fn st_query(
    te: &TempEngine,
    table: &str,
    w: &just_geo::Rect,
    t: (i64, i64),
    pred: SpatialPredicate,
) {
    te.engine.st_range(table, w, t.0, t.1, pred).unwrap();
}

/// Runs Figure 12 (a–d).
pub fn run(cfg: &BenchConfig, out: &mut impl Write, report: &mut Report) {
    report.phase("generate");
    let orders = OrderDataset::generate(cfg.orders, cfg.seed);
    let trajs = TrajDataset::generate(cfg.trajectories, cfg.points_per_trajectory, cfg.seed);
    let windows = query_windows(cfg.queries_per_point, cfg.default_window_km(), cfg.seed);
    let times = query_time_windows(cfg.queries_per_point, cfg.default_time_window_h(), cfg.seed);
    let queries: Vec<(just_geo::Rect, (i64, i64))> =
        windows.iter().cloned().zip(times.iter().cloned()).collect();

    report.phase("12a");
    // ---- 12a: Order, vs data size --------------------------------------
    let mut ta = Table::new(&["data %", "JUST", "JUSTd", "JUSTy", "JUSTc"]);
    for &pct in &cfg.data_sizes_pct {
        let slice = orders.fraction(pct);
        let v = order_variants(&slice);
        let mut row = vec![pct.to_string()];
        for te in [&v.just, &v.just_d, &v.just_y, &v.just_c] {
            row.push(ms(median_latency(&queries, |(w, t)| {
                st_query(te, "orders", w, *t, SpatialPredicate::Within)
            })));
        }
        ta.row(row);
    }
    writeln!(out, "== Fig 12a: ST range vs data size (Order, ms) ==").unwrap();
    writeln!(out, "{}", ta.render()).unwrap();

    report.phase("12b");
    // ---- 12b: Order, vs spatial window (+ ST-Hadoop at 20%) ------------
    let v = order_variants(&orders.orders);
    let sth_dir = std::env::temp_dir().join(format!("just-f12-sth-{}", std::process::id()));
    std::fs::remove_dir_all(&sth_dir).ok();
    let mut sth = HadoopSimEngine::new(sth_dir.clone(), cfg.hadoop_job_overhead, true);
    sth.build(&order_records(&orders.fraction(20)))
        .expect("sth build");
    let mut tb = Table::new(&[
        "window km",
        "JUST",
        "JUSTd",
        "JUSTy",
        "JUSTc",
        "ST-Hadoop@20%",
    ]);
    for &km in &cfg.spatial_windows_km {
        let windows = query_windows(cfg.queries_per_point, km, cfg.seed);
        let queries: Vec<(just_geo::Rect, (i64, i64))> =
            windows.iter().cloned().zip(times.iter().cloned()).collect();
        let mut row = vec![format!("{km}x{km}")];
        for te in [&v.just, &v.just_d, &v.just_y, &v.just_c] {
            row.push(ms(median_latency(&queries, |(w, t)| {
                st_query(te, "orders", w, *t, SpatialPredicate::Within)
            })));
        }
        row.push(ms(median_latency(&queries, |(w, t)| {
            sth.st_range(w, t.0, t.1).unwrap();
        })));
        tb.row(row);
    }
    writeln!(out, "== Fig 12b: ST range vs spatial window (Order, ms) ==").unwrap();
    writeln!(out, "{}", tb.render()).unwrap();
    std::fs::remove_dir_all(&sth_dir).ok();

    report.phase("12c");
    // ---- 12c: Traj, vs spatial window (XZ2T vs XZ3 variants + nc) ------
    let t_just = build_traj_table(
        "f12c-xz2t",
        &trajs.trajectories,
        None,
        TimePeriod::Day,
        true,
    )
    .0;
    let t_nc = build_traj_table("f12c-nc", &trajs.trajectories, None, TimePeriod::Day, false).0;
    let t_d = build_traj_table(
        "f12c-xz3d",
        &trajs.trajectories,
        Some(IndexKind::Xz3),
        TimePeriod::Day,
        true,
    )
    .0;
    let t_y = build_traj_table(
        "f12c-xz3y",
        &trajs.trajectories,
        Some(IndexKind::Xz3),
        TimePeriod::Year,
        true,
    )
    .0;
    let t_c = build_traj_table(
        "f12c-xz3c",
        &trajs.trajectories,
        Some(IndexKind::Xz3),
        TimePeriod::Century,
        true,
    )
    .0;
    let mut tc = Table::new(&["window km", "JUST", "JUSTnc", "JUSTd", "JUSTy", "JUSTc"]);
    // Traj time windows live in the 31-day span.
    let traj_times: Vec<(i64, i64)> = query_time_windows(cfg.queries_per_point, 24, cfg.seed)
        .into_iter()
        .map(|(a, b)| {
            (
                a % (25 * crate::workload::DAY_MS),
                b % (26 * crate::workload::DAY_MS).max(1),
            )
        })
        .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect();
    for &km in &cfg.spatial_windows_km {
        let windows = query_windows(cfg.queries_per_point, km, cfg.seed);
        let queries: Vec<(just_geo::Rect, (i64, i64))> = windows
            .iter()
            .cloned()
            .zip(traj_times.iter().cloned())
            .collect();
        let mut row = vec![format!("{km}x{km}")];
        for te in [&t_just, &t_nc, &t_d, &t_y, &t_c] {
            row.push(ms(median_latency(&queries, |(w, t)| {
                st_query(te, "traj", w, *t, SpatialPredicate::Intersects)
            })));
        }
        tc.row(row);
    }
    writeln!(out, "== Fig 12c: ST range vs spatial window (Traj, ms) ==").unwrap();
    writeln!(out, "{}", tc.render()).unwrap();

    report.phase("12d");
    // ---- 12d: Order, vs time window ------------------------------------
    let sth_dir = std::env::temp_dir().join(format!("just-f12d-sth-{}", std::process::id()));
    std::fs::remove_dir_all(&sth_dir).ok();
    let mut sth = HadoopSimEngine::new(sth_dir.clone(), cfg.hadoop_job_overhead, true);
    sth.build(&order_records(&orders.fraction(20)))
        .expect("sth build");
    let mut td = Table::new(&[
        "time window",
        "JUST",
        "JUSTd",
        "JUSTy",
        "JUSTc",
        "ST-Hadoop@20%",
    ]);
    for &hours in &cfg.time_windows_h {
        let times = query_time_windows(cfg.queries_per_point, hours, cfg.seed);
        let queries: Vec<(just_geo::Rect, (i64, i64))> =
            windows.iter().cloned().zip(times.iter().cloned()).collect();
        let label = match hours {
            1 => "1h".to_string(),
            6 => "6h".to_string(),
            24 => "1d".to_string(),
            168 => "1w".to_string(),
            720 => "1m".to_string(),
            h => format!("{h}h"),
        };
        let mut row = vec![label];
        for te in [&v.just, &v.just_d, &v.just_y, &v.just_c] {
            row.push(ms(median_latency(&queries, |(w, t)| {
                st_query(te, "orders", w, *t, SpatialPredicate::Within)
            })));
        }
        row.push(ms(median_latency(&queries, |(w, t)| {
            sth.st_range(w, t.0, t.1).unwrap();
        })));
        td.row(row);
    }
    writeln!(out, "== Fig 12d: ST range vs time window (Order, ms) ==").unwrap();
    writeln!(out, "{}", td.render()).unwrap();
    std::fs::remove_dir_all(&sth_dir).ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_runs_and_z2t_beats_century_z3() {
        let cfg = BenchConfig {
            orders: 2000,
            trajectories: 6,
            points_per_trajectory: 120,
            data_sizes_pct: vec![100],
            spatial_windows_km: vec![2.0],
            time_windows_h: vec![6],
            queries_per_point: 5,
            hadoop_job_overhead: std::time::Duration::ZERO,
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        run(&cfg, &mut buf, &mut Report::new("fig12"));
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Fig 12a"));
        assert!(text.contains("Fig 12d"));
        // Shape check on 12a's single row: JUST <= JUSTc (the paper's
        // headline: Z2T beats the century-period Z3).
        let sec = text.split("Fig 12a").nth(1).unwrap();
        let row = sec
            .lines()
            .find(|l| l.trim_start().starts_with("100"))
            .unwrap();
        let cells: Vec<f64> = row
            .split_whitespace()
            .skip(1)
            .map(|c| c.parse().unwrap())
            .collect();
        let (just, justc) = (cells[0], cells[3]);
        assert!(
            just <= justc * 1.5,
            "Z2T ({just} ms) should not lose badly to Z3-century ({justc} ms)"
        );
    }
}
