//! Figure 8: the logical-plan optimization example — prints the analyzed
//! and optimized plans for the exact SQL statement of Section VI.

use crate::harness::Report;
use std::io::Write;

/// Prints the before/after plans.
pub fn run(out: &mut impl Write, report: &mut Report) {
    report.phase("plan");
    let sql = "SELECT name, geom FROM (SELECT * FROM tbl) t \
               WHERE fid = 52*9 AND geom WITHIN st_makeMBR(116.0, 39.0, 116.5, 39.5) \
               ORDER BY time";
    let stmt = just_ql::parse(sql).expect("parse");
    let just_ql::Statement::Query(q) = stmt else {
        unreachable!()
    };
    let analyzed = just_ql::LogicalPlan::from_select(&q).expect("analyze");
    let optimized = just_ql::optimize(analyzed.clone()).expect("optimize");
    writeln!(out, "== Figure 8: logical plan optimization ==").unwrap();
    writeln!(out, "SQL: {sql}\n").unwrap();
    writeln!(
        out,
        "-- (a) analyzed logical plan --\n{}",
        analyzed.render()
    )
    .unwrap();
    writeln!(
        out,
        "-- (b) optimized logical plan --\n{}",
        optimized.render()
    )
    .unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig8_shows_all_three_rules() {
        let mut buf = Vec::new();
        super::run(&mut buf, &mut crate::harness::Report::new("fig8"));
        let text = String::from_utf8(buf).unwrap();
        // Rule 1: 52*9 folded away in the optimized plan.
        let optimized = text.split("-- (b)").nth(1).unwrap();
        assert!(!optimized.contains("52"));
        // Rule 2: the ST predicate reached the scan.
        assert!(optimized.contains("spatial=(geom within"));
        // Rule 3: the scan projects only needed fields.
        assert!(optimized.contains("project="));
    }
}
