//! Figure 13: k-NN query performance vs data size and k.

use crate::config::BenchConfig;
use crate::figures::{build_order_table, build_traj_table};
use crate::harness::{median_latency, ms, Report, Table};
use crate::workload::{order_records, query_points, OrderDataset, TrajDataset};
use just_baselines::*;
use just_curves::TimePeriod;
use std::io::Write;

/// Runs Figure 13 (a–d).
pub fn run(cfg: &BenchConfig, out: &mut impl Write, report: &mut Report) {
    report.phase("generate");
    let orders = OrderDataset::generate(cfg.orders, cfg.seed);
    let trajs = TrajDataset::generate(cfg.trajectories, cfg.points_per_trajectory, cfg.seed);
    let points = query_points(cfg.queries_per_point, cfg.seed);
    let k = cfg.default_k();

    report.phase("13a");
    // ---- 13a: Order, vs data size --------------------------------------
    let mut ta = Table::new(&["data %", "JUST", "rtree", "grid", "quadtree", "kdtree"]);
    for &pct in &cfg.data_sizes_pct {
        let slice = orders.fraction(pct);
        let (te, _) = build_order_table("f13a", &slice, None, TimePeriod::Day, false);
        let recs = order_records(&slice);
        let mut row = vec![pct.to_string()];
        row.push(ms(median_latency(&points, |q| {
            te.engine.knn("orders", *q, k).unwrap();
        })));
        for mut engine in mem_engines() {
            engine.build(&recs).unwrap();
            row.push(ms(median_latency(&points, |q| {
                engine.knn(*q, k).unwrap();
            })));
        }
        ta.row(row);
    }
    writeln!(out, "== Fig 13a: k-NN vs data size (Order, k={k}, ms) ==").unwrap();
    writeln!(out, "{}", ta.render()).unwrap();

    report.phase("13b");
    // ---- 13b: Traj, vs data size (JUSTnc + capped rtree) ----------------
    let full_payload: usize = trajs.total_points() * 24;
    let cap = MemoryBudget {
        bytes: Some(full_payload * 6 / 10),
    };
    let traj_k = k.min(trajs.trajectories.len().max(1));
    let mut tb = Table::new(&["data %", "JUST", "JUSTnc", "rtree@cap"]);
    for &pct in &cfg.data_sizes_pct {
        let slice = trajs.fraction(pct);
        if slice.is_empty() {
            continue;
        }
        let (te, _) = build_traj_table("f13b", &slice, None, TimePeriod::Day, true);
        let (te_nc, _) = build_traj_table("f13b-nc", &slice, None, TimePeriod::Day, false);
        let kk = traj_k.min(slice.len());
        let mut row = vec![pct.to_string()];
        for engine in [&te, &te_nc] {
            row.push(ms(median_latency(&points, |q| {
                engine.engine.knn("traj", *q, kk).unwrap();
            })));
        }
        let mut rtree = RTreeEngine::new(cap);
        row.push(match rtree.build(&traj_records(&slice)) {
            Ok(()) => ms(median_latency(&points, |q| {
                rtree.knn(*q, kk).unwrap();
            })),
            Err(EngineError::OutOfMemory { .. }) => "OOM".into(),
            Err(e) => format!("err:{e}"),
        });
        tb.row(row);
    }
    writeln!(out, "== Fig 13b: k-NN vs data size (Traj, ms) ==").unwrap();
    writeln!(out, "{}", tb.render()).unwrap();

    report.phase("13c");
    // ---- 13c: Order, vs k ----------------------------------------------
    let (te, _) = build_order_table("f13c", &orders.orders, None, TimePeriod::Day, false);
    let recs = order_records(&orders.orders);
    let mut engines = mem_engines();
    for e in &mut engines {
        e.build(&recs).unwrap();
    }
    let mut tc = Table::new(&["k", "JUST", "rtree", "grid", "quadtree", "kdtree"]);
    for &k in &cfg.k_values {
        let mut row = vec![k.to_string()];
        row.push(ms(median_latency(&points, |q| {
            te.engine.knn("orders", *q, k).unwrap();
        })));
        for engine in &engines {
            row.push(ms(median_latency(&points, |q| {
                engine.knn(*q, k).unwrap();
            })));
        }
        tc.row(row);
    }
    writeln!(out, "== Fig 13c: k-NN vs k (Order, ms) ==").unwrap();
    writeln!(out, "{}", tc.render()).unwrap();

    report.phase("13d");
    // ---- 13d: Traj, vs k -------------------------------------------------
    let (tt, _) = build_traj_table("f13d", &trajs.trajectories, None, TimePeriod::Day, true);
    let (tt_nc, _) = build_traj_table("f13d-nc", &trajs.trajectories, None, TimePeriod::Day, false);
    let mut td = Table::new(&["k", "JUST", "JUSTnc"]);
    for &k in &cfg.k_values {
        let kk = k.min(trajs.trajectories.len());
        let mut row = vec![k.to_string()];
        for engine in [&tt, &tt_nc] {
            row.push(ms(median_latency(&points, |q| {
                engine.engine.knn("traj", *q, kk).unwrap();
            })));
        }
        td.row(row);
    }
    writeln!(out, "== Fig 13d: k-NN vs k (Traj, ms) ==").unwrap();
    writeln!(out, "{}", td.render()).unwrap();
}

fn mem_engines() -> Vec<Box<dyn SpatialEngine>> {
    vec![
        Box::new(RTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(GridEngine::new(MemoryBudget::unlimited(), 32)),
        Box::new(QuadTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(KdTreeEngine::new(MemoryBudget::unlimited())),
    ]
}

fn traj_records(trajs: &[crate::workload::TrajRecord]) -> Vec<StRecord> {
    crate::workload::traj_records(trajs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_runs_at_tiny_scale() {
        let cfg = BenchConfig {
            orders: 500,
            trajectories: 6,
            points_per_trajectory: 100,
            data_sizes_pct: vec![100],
            k_values: vec![5],
            queries_per_point: 3,
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        run(&cfg, &mut buf, &mut Report::new("fig13"));
        let text = String::from_utf8(buf).unwrap();
        for sec in ["Fig 13a", "Fig 13b", "Fig 13c", "Fig 13d"] {
            assert!(text.contains(sec), "{sec} missing");
        }
    }
}
