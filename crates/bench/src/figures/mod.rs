//! One module per table/figure of the paper's evaluation. Each `run`
//! writes a text rendition of the figure's data series to the given
//! writer.

pub mod durability;
pub mod exec_compile;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig8;
pub mod ingest_concurrency;
pub mod join_sort;
pub mod mvcc_split;
pub mod obs_overhead;
pub mod read_path;
pub mod scan_stream;
pub mod serve;
pub mod tables;

use crate::workload::{order_rows, traj_rows, Order, TrajRecord};
use just_core::{Engine, EngineConfig};
use just_curves::TimePeriod;
use just_storage::{Field, FieldType, IndexKind, Schema};
use std::path::PathBuf;
use std::time::Duration;

/// A JUST engine in a throwaway directory; removed on drop.
pub struct TempEngine {
    /// The engine.
    pub engine: Engine,
    dir: PathBuf,
}

impl TempEngine {
    /// Opens an engine under a unique temp directory.
    pub fn new(tag: &str) -> TempEngine {
        let dir = std::env::temp_dir().join(format!(
            "just-fig-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        let engine = Engine::open(&dir, EngineConfig::default()).expect("engine open");
        TempEngine { engine, dir }
    }
}

impl Drop for TempEngine {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The Order table schema (with a compressible address field so the
/// paper's "compressing small fields backfires" lesson is reproducible).
pub fn order_schema(compress_fields: bool) -> Schema {
    let codec = if compress_fields {
        just_compress::Codec::Gzip
    } else {
        just_compress::Codec::None
    };
    Schema::new(vec![
        Field::new("fid", FieldType::Int).primary(),
        Field::new("time", FieldType::Date),
        Field::new("geom", FieldType::Point),
        Field::new("addr", FieldType::Str).compressed(codec),
    ])
    .expect("order schema")
}

/// Order rows including the address field.
pub fn order_rows_with_addr(orders: &[Order]) -> Vec<just_storage::Row> {
    order_rows(orders)
        .into_iter()
        .zip(orders)
        .map(|(mut row, o)| {
            row.values.push(just_storage::Value::Str(format!(
                "No.{} Jingdong Rd, Daxing District, Beijing",
                o.fid
            )));
            row
        })
        .collect()
}

/// The trajectory plugin schema, optionally without GPS-list compression
/// (the JUSTnc variant).
pub fn traj_schema(compress: bool) -> Schema {
    if compress {
        return Schema::trajectory();
    }
    let mut fields = Schema::trajectory().fields().to_vec();
    for f in &mut fields {
        f.compress = just_compress::Codec::None;
    }
    Schema::new(fields).expect("traj schema")
}

/// Builds an Order table with the given index configuration, returning
/// the engine and the insert+flush ("indexing") time.
pub fn build_order_table(
    tag: &str,
    orders: &[Order],
    index: Option<IndexKind>,
    period: TimePeriod,
    compress_fields: bool,
) -> (TempEngine, Duration) {
    let te = TempEngine::new(tag);
    te.engine
        .create_table("orders", order_schema(compress_fields), index, Some(period))
        .expect("create orders");
    let rows = order_rows_with_addr(orders);
    let (_, elapsed) = crate::harness::time_once(|| {
        te.engine.insert("orders", &rows).expect("insert orders");
        te.engine.flush_all().expect("flush");
    });
    (te, elapsed)
}

/// Builds a Traj plugin table, returning the engine and the indexing
/// time.
pub fn build_traj_table(
    tag: &str,
    trajs: &[TrajRecord],
    index: Option<IndexKind>,
    period: TimePeriod,
    compress: bool,
) -> (TempEngine, Duration) {
    let te = TempEngine::new(tag);
    te.engine
        .create_table("traj", traj_schema(compress), index, Some(period))
        .expect("create traj");
    let rows = traj_rows(trajs);
    let (_, elapsed) = crate::harness::time_once(|| {
        te.engine.insert("traj", &rows).expect("insert traj");
        te.engine.flush_all().expect("flush");
    });
    (te, elapsed)
}
