//! Streaming scan pipeline: the materializing read path versus the
//! batch-at-a-time [`just_kvstore::ScanStream`], over a scan fanned out
//! across many key ranges (the shape a salted spatio-temporal index plan
//! produces).
//!
//! Three runs over the same flushed table, block cache disabled so
//! `blocks_read` is true disk IO:
//!
//! 1. **materialize** — `scan_ranges_parallel` collects every entry
//!    before the caller sees the first one.
//! 2. **stream-full** — `scan_ranges_stream` drained to the end; same
//!    rows, same order, but bounded in-flight memory (the peak batch
//!    size is reported).
//! 3. **stream-limit** — `scan_ranges_stream` cancelled after 10 rows:
//!    the consumer-side `LIMIT k` pattern.
//!
//! Two functional guards (re-checked by `ci.sh`): the streamed drain
//! must return exactly as many rows as the materializing scan, and the
//! limited stream must read **< 20 %** of the blocks the materializing
//! path reads.

use crate::config::BenchConfig;
use crate::harness::{ms, time_once, Report, Table};
use just_kvstore::{ScanOptions, Store, StoreOptions};

/// Ranges in the scan plan: enough fan-out that early termination has
/// whole ranges left to skip, like a sharded curve-range plan.
const FANOUT: usize = 16;

/// Rows the limited consumer wants.
const LIMIT: usize = 10;

fn key(shard: usize, i: usize) -> Vec<u8> {
    format!("{shard:02}/rec{i:08}").into_bytes()
}

/// A GPS-fix-like payload, sized so scans span many 4 KiB blocks.
fn value(i: usize) -> Vec<u8> {
    format!(
        "lng=116.{:06},lat=39.{:06},speed={:02}.5,heading={:03},status=driving,seq={i:08};",
        i * 131 % 1_000_000,
        i * 977 % 1_000_000,
        i % 80,
        i % 360
    )
    .into_bytes()
}

/// Runs the streaming-scan comparison. Returns `true` when both
/// functional guards pass.
pub fn run(cfg: &BenchConfig, out: &mut impl std::io::Write, report: &mut Report) -> bool {
    let n = cfg.orders.max(2000);
    report.phase("ingest");
    let dir = std::env::temp_dir().join(format!("just-fig-scan-stream-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::open(
        &dir,
        StoreOptions {
            block_size: 4096,
            block_cache_bytes: 0,
            ..StoreOptions::default()
        },
    )
    .expect("store open");
    let t = store.create_table("fanout", 4).expect("create table");
    for i in 0..n {
        t.put(key(i % FANOUT, i / FANOUT), value(i)).expect("put");
    }
    t.flush().expect("flush");
    t.compact().expect("compact");

    let ranges: Vec<(Vec<u8>, Vec<u8>)> = (0..FANOUT)
        .map(|s| (key(s, 0), key(s, usize::MAX / 2)))
        .collect();

    let mut table = Table::new(&[
        "path",
        "rows out",
        "blocks read",
        "ms",
        "batches",
        "peak batch KiB",
    ]);

    // 1. Materializing scan: every block of every range, up front.
    report.phase("materialize");
    let before = store.metrics().snapshot();
    let (mat_rows, mat_t) = time_once(|| {
        t.scan_ranges_parallel(&ranges)
            .expect("materializing scan")
            .len()
    });
    let mat = store.metrics().snapshot().since(&before);
    table.row(vec![
        "materialize".into(),
        mat_rows.to_string(),
        mat.blocks_read.to_string(),
        ms(mat_t),
        "-".into(),
        "-".into(),
    ]);

    // 2. Streaming scan drained to exhaustion: identical output, bounded
    // in-flight memory.
    report.phase("stream-full");
    let before = store.metrics().snapshot();
    let (full_rows, full_t) = time_once(|| {
        let mut stream = t.scan_ranges_stream(ranges.clone(), ScanOptions::default());
        let mut rows = 0usize;
        while let Some(batch) = stream.next_batch().expect("stream batch") {
            rows += batch.len();
        }
        rows
    });
    let full = store.metrics().snapshot().since(&before);
    table.row(vec![
        "stream-full".into(),
        full_rows.to_string(),
        full.blocks_read.to_string(),
        ms(full_t),
        full.batches_emitted.to_string(),
        format!("{:.1}", full.batch_bytes_peak as f64 / 1024.0),
    ]);

    // 3. Streaming scan cancelled after LIMIT rows: the pushdown payoff.
    report.phase("stream-limit");
    let before = store.metrics().snapshot();
    let (lim_rows, lim_t) = time_once(|| {
        let mut stream = t.scan_ranges_stream(
            ranges.clone(),
            ScanOptions {
                batch_rows: LIMIT,
                ..Default::default()
            },
        );
        let cancel = stream.cancel_token();
        let mut rows = 0usize;
        while let Some(batch) = stream.next_batch().expect("stream batch") {
            rows += batch.len();
            if rows >= LIMIT {
                cancel.cancel();
                break;
            }
        }
        rows
    });
    let lim = store.metrics().snapshot().since(&before);
    table.row(vec![
        format!("stream-limit{LIMIT}"),
        lim_rows.to_string(),
        lim.blocks_read.to_string(),
        ms(lim_t),
        lim.batches_emitted.to_string(),
        // `batch_bytes_peak` is a store-wide high-water mark, so after the
        // full drain above it no longer attributes to this phase.
        "-".into(),
    ]);

    writeln!(
        out,
        "== Streaming scan: materializing vs batch-at-a-time over {FANOUT} ranges =="
    )
    .unwrap();
    writeln!(out, "{}", table.render()).unwrap();

    let parity_ok = full_rows == mat_rows && mat_rows == n && lim_rows == LIMIT;
    let pct = 100.0 * lim.blocks_read as f64 / mat.blocks_read.max(1) as f64;
    let pushdown_ok = lim.blocks_read * 5 < mat.blocks_read && lim.scan_early_terminations == 1;
    writeln!(
        out,
        "parity guard: {} (stream drained {full_rows} rows vs {mat_rows} materialized, \
         limit run returned {lim_rows})",
        if parity_ok { "PASS" } else { "FAIL" },
    )
    .unwrap();
    writeln!(
        out,
        "streaming guard: {} (LIMIT {LIMIT} read {} blocks vs {} materialized: {pct:.1}%, \
         need <20%; early terminations: {})",
        if pushdown_ok { "PASS" } else { "FAIL" },
        lim.blocks_read,
        mat.blocks_read,
        lim.scan_early_terminations,
    )
    .unwrap();

    drop(t);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    parity_ok && pushdown_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_stream_figure_runs_and_guards_pass_at_tiny_scale() {
        let cfg = BenchConfig {
            orders: 3000,
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        let ok = run(&cfg, &mut buf, &mut Report::new("scan_stream"));
        let text = String::from_utf8(buf).unwrap();
        assert!(ok, "guards must pass: {text}");
        assert!(text.contains("parity guard: PASS"), "{text}");
        assert!(text.contains("streaming guard: PASS"), "{text}");
    }
}
