//! Figure 10: storage size and indexing time vs data size.
//!
//! Expected shapes (paper): compression shrinks Traj storage several-fold
//! (10b) but *grows* Order storage (10a); JUST's load time includes
//! storing to disk so it loses to in-memory builds on the small Order
//! data (10c) but compression makes the Traj load cheaper than the
//! uncompressed variant, and memory-hungry baselines OOM on Traj (10d).

use crate::config::BenchConfig;
use crate::figures::{build_order_table, build_traj_table};
use crate::harness::{ms, time_once, Report, Table};
use crate::workload::{order_records, traj_records, OrderDataset, TrajDataset};
use just_baselines::*;
use just_curves::TimePeriod;
use std::io::Write;

/// Runs Figure 10 (a–d).
pub fn run(cfg: &BenchConfig, out: &mut impl Write, report: &mut Report) {
    report.phase("generate");
    let orders = OrderDataset::generate(cfg.orders, cfg.seed);
    let trajs = TrajDataset::generate(cfg.trajectories, cfg.points_per_trajectory, cfg.seed);

    report.phase("order-build");
    // ---- 10a: Order storage size, plain vs compressed fields ----------
    let mut ta = Table::new(&["data %", "JUST (KB)", "JUSTcompress (KB)"]);
    // ---- 10c: Order indexing time --------------------------------------
    let mut tc = Table::new(&[
        "data %",
        "JUST (ms)",
        "rtree (ms)",
        "grid (ms)",
        "quadtree (ms)",
        "kdtree (ms)",
    ]);
    for &pct in &cfg.data_sizes_pct {
        let slice = orders.fraction(pct);
        let (e_plain, d_plain) =
            build_order_table("f10a-plain", &slice, None, TimePeriod::Day, false);
        let (e_comp, _) = build_order_table("f10a-comp", &slice, None, TimePeriod::Day, true);
        ta.row(vec![
            pct.to_string(),
            (e_plain.engine.table_disk_size("orders").unwrap() / 1024).to_string(),
            (e_comp.engine.table_disk_size("orders").unwrap() / 1024).to_string(),
        ]);

        let recs = order_records(&slice);
        let build_time = |mut e: Box<dyn SpatialEngine>| -> String {
            let (r, d) = time_once(|| e.build(&recs));
            match r {
                Ok(()) => ms(d),
                Err(EngineError::OutOfMemory { .. }) => "OOM".into(),
                Err(other) => format!("err:{other}"),
            }
        };
        tc.row(vec![
            pct.to_string(),
            ms(d_plain),
            build_time(Box::new(RTreeEngine::new(MemoryBudget::unlimited()))),
            build_time(Box::new(GridEngine::new(MemoryBudget::unlimited(), 32))),
            build_time(Box::new(QuadTreeEngine::new(MemoryBudget::unlimited()))),
            build_time(Box::new(KdTreeEngine::new(MemoryBudget::unlimited()))),
        ]);
    }
    writeln!(out, "== Fig 10a: storage size vs data size (Order) ==").unwrap();
    writeln!(out, "{}", ta.render()).unwrap();

    report.phase("traj-build");
    // ---- 10b: Traj storage size, gzip vs none --------------------------
    // ---- 10d: Traj indexing time with memory-capped baselines ----------
    let mut tb = Table::new(&["data %", "JUST gzip (KB)", "JUSTnc (KB)", "raw (KB)"]);
    let mut td = Table::new(&[
        "data %",
        "JUST (ms)",
        "JUSTnc (ms)",
        "rtree@cap (ms)",
        "grid@cap (ms)",
    ]);
    // A budget sized so bigger Traj fractions OOM (the paper's Simba
    // behaviour): 60% of the full payload.
    let full_payload: usize = trajs.total_points() * 24;
    let cap = MemoryBudget {
        bytes: Some(full_payload * 6 / 10),
    };
    for &pct in &cfg.data_sizes_pct {
        let slice = trajs.fraction(pct);
        let raw_kb: usize = slice.iter().map(|t| t.samples.len() * 24).sum::<usize>() / 1024;
        let (e_gzip, d_gzip) = build_traj_table("f10b-gzip", &slice, None, TimePeriod::Day, true);
        let (e_nc, d_nc) = build_traj_table("f10b-nc", &slice, None, TimePeriod::Day, false);
        tb.row(vec![
            pct.to_string(),
            (e_gzip.engine.table_disk_size("traj").unwrap() / 1024).to_string(),
            (e_nc.engine.table_disk_size("traj").unwrap() / 1024).to_string(),
            raw_kb.to_string(),
        ]);

        let recs = traj_records(&slice);
        let build_time = |mut e: Box<dyn SpatialEngine>| -> String {
            let (r, d) = time_once(|| e.build(&recs));
            match r {
                Ok(()) => ms(d),
                Err(EngineError::OutOfMemory { .. }) => "OOM".into(),
                Err(other) => format!("err:{other}"),
            }
        };
        td.row(vec![
            pct.to_string(),
            ms(d_gzip),
            ms(d_nc),
            build_time(Box::new(RTreeEngine::new(cap))),
            build_time(Box::new(GridEngine::new(cap, 32))),
        ]);
    }
    writeln!(out, "== Fig 10b: storage size vs data size (Traj) ==").unwrap();
    writeln!(out, "{}", tb.render()).unwrap();
    writeln!(out, "== Fig 10c: indexing time vs data size (Order) ==").unwrap();
    writeln!(out, "{}", tc.render()).unwrap();
    writeln!(out, "== Fig 10d: indexing time vs data size (Traj) ==").unwrap();
    writeln!(out, "{}", td.render()).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_shapes_hold_at_tiny_scale() {
        let cfg = BenchConfig {
            orders: 400,
            trajectories: 8,
            points_per_trajectory: 300,
            data_sizes_pct: vec![50, 100],
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        run(&cfg, &mut buf, &mut Report::new("fig10"));
        let text = String::from_utf8(buf).unwrap();

        // Parse the 100% rows of 10a and 10b.
        let row_after = |section: &str| -> Vec<String> {
            let sec = text.split(section).nth(1).unwrap();
            sec.lines()
                .find(|l| l.trim_start().starts_with("100"))
                .unwrap()
                .split_whitespace()
                .map(|s| s.to_string())
                .collect()
        };
        // 10a: compressing tiny Order fields does NOT save space.
        let a = row_after("Fig 10a");
        let just_kb: f64 = a[1].parse().unwrap();
        let comp_kb: f64 = a[2].parse().unwrap();
        assert!(
            comp_kb >= just_kb * 0.95,
            "order compression should not shrink storage: {just_kb} vs {comp_kb}"
        );
        // 10b: gzip shrinks Traj storage substantially vs JUSTnc.
        let b = row_after("Fig 10b");
        let gzip_kb: f64 = b[1].parse().unwrap();
        let nc_kb: f64 = b[2].parse().unwrap();
        assert!(
            gzip_kb < nc_kb * 0.7,
            "traj compression should shrink storage: {gzip_kb} vs {nc_kb}"
        );
        // 10d exists and has OOM markers or numbers.
        assert!(text.contains("Fig 10d"));
    }
}
