//! Compiled vs interpreted expression execution: the `just-exec` payoff.
//!
//! A ≥100k-row in-memory view (so storage decode cost can't dilute the
//! comparison — this measures the executor, not the kvstore) runs two
//! query shapes on both executor paths, toggled with
//! [`just_ql::set_compiled`]:
//!
//! - **filter-heavy scan**: a five-conjunct arithmetic predicate over
//!   every row, counting survivors (~12% pass);
//! - **group-aggregate**: the same style of heavy predicate (~40% pass)
//!   feeding a `GROUP BY` on a computed key with four aggregates over
//!   computed integer arguments.
//!
//! The conjuncts are mostly-true on purpose: a selective first conjunct
//! would let the row interpreter short-circuit the rest and hide the
//! evaluation cost being compared.
//!
//! Two functional guards (re-checked by `ci.sh`):
//!
//! - **speedup**: the compiled path must be at least **3×** faster than
//!   the interpreted path on both shapes (median of interleaved runs);
//! - **parity**: both paths must return byte-identical datasets for both
//!   queries (same rows, same order, same float bits — the accumulators
//!   fold in the same row order).

use crate::config::BenchConfig;
use crate::harness::{time_once, Report, Table};
use just_core::{Dataset, Engine, EngineConfig, SessionManager};
use just_obs::Rng;
use just_ql::{set_compiled, Client};
use just_storage::{Row, Value};

/// Timed runs per (query, path); odd so the median is one sample.
const RUNS: usize = 7;

/// Rows in the view at `--scale 1` (the ISSUE floor is 100k).
const ROWS_FULL_SCALE: usize = 120_000;

const FILTER_SQL: &str = "SELECT count(*) AS survivors FROM v \
     WHERE a * 3 + b * 2 - qty > -3000000 \
     AND f * 1.5 + a * 0.25 - b * 0.5 < 1000000.0 \
     AND (a + b) * (qty - b + 5) > -9000000 \
     AND (b * 7 - a) * (qty + 3) > -9000000 \
     AND a * 2 + b * 3 < 1200";

const AGG_SQL: &str = "SELECT grp % 32 AS g, count(*) AS c, \
     sum(a * 2 + b - qty) AS sm, min(a * 3 - b * 2 + qty) AS mn, \
     max((a - b) * (a + b)) AS mx FROM v \
     WHERE a * 3 + b * 2 - qty > -3000000 \
     AND (a + b) * (qty - b + 5) > -9000000 \
     AND (b * 7 - a) * (qty + 3) > -9000000 \
     AND a * 2 + b * 3 < 2200 \
     GROUP BY grp % 32";

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn run_query(client: &mut Client, sql: &str) -> Dataset {
    client
        .execute(sql)
        .expect("query")
        .into_dataset()
        .expect("dataset")
}

/// Runs the compiled-execution comparison. Returns `true` when both the
/// speedup and parity guards hold.
pub fn run(cfg: &BenchConfig, out: &mut impl std::io::Write, report: &mut Report) -> bool {
    report.phase("build");
    let dir = std::env::temp_dir().join(format!("just-fig-exec-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let engine = std::sync::Arc::new(Engine::open(&dir, EngineConfig::default()).expect("engine"));
    let sessions = SessionManager::new(engine);

    // Scale rows with --scale (via the orders knob) but keep the full
    // default at the 100k+ floor the comparison is specified against.
    let n = (ROWS_FULL_SCALE as f64 * cfg.orders as f64 / 20_000.0).max(2_000.0) as usize;
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x6578_6563);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        rows.push(Row::new(vec![
            Value::Int(i as i64),
            Value::Int((rng.next_u64() % 64) as i64),
            Value::Int((rng.next_u64() % 1000) as i64),
            Value::Int((rng.next_u64() % 1000) as i64),
            Value::Float((rng.next_u64() % 10_000) as f64 / 10.0),
            Value::Int((rng.next_u64() % 100) as i64),
        ]));
    }
    let columns = ["oid", "grp", "a", "b", "f", "qty"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    sessions
        .session("bench")
        .create_view("v", Dataset::new(columns, rows))
        .expect("create view");
    let mut client = Client::new(sessions.session("bench"));

    // Parity first: both paths, both queries, identical datasets.
    report.phase("parity");
    set_compiled(false);
    let filter_interp = run_query(&mut client, FILTER_SQL);
    let agg_interp = run_query(&mut client, AGG_SQL);
    set_compiled(true);
    let filter_comp = run_query(&mut client, FILTER_SQL);
    let agg_comp = run_query(&mut client, AGG_SQL);
    let parity_ok = filter_interp.columns == filter_comp.columns
        && filter_interp.rows == filter_comp.rows
        && agg_interp.columns == agg_comp.columns
        && agg_interp.rows == agg_comp.rows;

    report.phase("measure");
    let mut results = Vec::new();
    for (name, sql) in [("filter scan", FILTER_SQL), ("group aggregate", AGG_SQL)] {
        // Interleave the two paths so both see the same machine state.
        let mut interp = Vec::with_capacity(RUNS);
        let mut comp = Vec::with_capacity(RUNS);
        for _ in 0..RUNS {
            set_compiled(false);
            interp.push(time_once(|| run_query(&mut client, sql)).1.as_secs_f64());
            set_compiled(true);
            comp.push(time_once(|| run_query(&mut client, sql)).1.as_secs_f64());
        }
        results.push((name, median(interp), median(comp)));
    }
    set_compiled(true);

    let mut table = Table::new(&["query", "interpreted ms", "compiled ms", "speedup"]);
    for (name, ti, tc) in &results {
        table.row(vec![
            name.to_string(),
            format!("{:.2}", ti * 1e3),
            format!("{:.2}", tc * 1e3),
            format!("{:.1}x", ti / tc.max(f64::MIN_POSITIVE)),
        ]);
    }
    writeln!(
        out,
        "== Compiled expression execution: {n} rows, median of {RUNS} interleaved runs =="
    )
    .unwrap();
    writeln!(out, "{}", table.render()).unwrap();

    let min_speedup = results
        .iter()
        .map(|(_, ti, tc)| ti / tc.max(f64::MIN_POSITIVE))
        .fold(f64::INFINITY, f64::min);
    let speedup_ok = min_speedup >= 3.0;
    writeln!(
        out,
        "speedup guard: {} (min {min_speedup:.1}x across shapes, need >= 3x)",
        if speedup_ok { "PASS" } else { "FAIL" }
    )
    .unwrap();
    writeln!(
        out,
        "parity guard: {} (compiled and interpreted datasets {})",
        if parity_ok { "PASS" } else { "FAIL" },
        if parity_ok { "identical" } else { "DIFFER" }
    )
    .unwrap();

    std::fs::remove_dir_all(&dir).ok();
    parity_ok && speedup_ok
}
