//! MVCC snapshot reads + online region split under mixed load (`ISSUE
//! 10`): the region-lifecycle counterpart of `ingest_concurrency`.
//!
//! Three functional guards, all re-checked by `ci.sh` through the
//! process exit code:
//!
//! - **parity**: a [`just_kvstore::TableSnapshot`] captured mid-flight
//!   under 16-writer ingest is byte-for-byte equal to a *serial*
//!   execution of exactly the operations committed before it. The
//!   writers apply-and-count under the read side of a quiesce lock; the
//!   snapshot and the counters are taken together under the write side,
//!   so the expected content is exact, not statistical.
//! - **split**: forcing `SPLIT REGION` / `MERGE REGIONS` churn under
//!   concurrent writes and scans produces zero scan errors, a stream
//!   opened before the split completes correctly across it, and the
//!   scan p99 under churn stays under **2x** the churn-free p99
//!   (medians of paired phases, same device-mood reasoning as
//!   `ingest_concurrency`).
//! - **replay**: after a simulated `kill -9` (the data directory copied
//!   live, no shutdown, WAL unflushed), reopening reconstructs the
//!   post-split region map from the `REGIONS` manifest and replays
//!   every acknowledged write into the daughters.

use crate::config::BenchConfig;
use crate::harness::{Report, Table as TextTable};
use just_kvstore::{ScanOptions, Store, StoreOptions};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

const WRITERS: usize = 16;

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("just-fig-mvcc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn store_options() -> StoreOptions {
    StoreOptions {
        // Small enough that the load phase produces real SSTables (and
        // split fences), large enough to stay off the write path.
        flush_threshold: 1 << 20,
        ..StoreOptions::default()
    }
}

fn key_of(writer: usize, i: usize) -> Vec<u8> {
    format!("w{writer:02}-{i:07}").into_bytes()
}

fn value_of(writer: usize, i: usize) -> Vec<u8> {
    format!(
        "v{writer:02}-{i:07}-{:016x}",
        (writer as u64) << 32 | i as u64
    )
    .into_bytes()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() as f64 - 1.0) * p).round() as usize]
}

/// Guard 1: snapshot byte parity vs a serial execution, 16 writers.
fn snapshot_parity(rows_per_writer: usize, out: &mut impl std::io::Write) -> bool {
    let dir = bench_dir("parity");
    let store = Store::open(&dir, store_options()).expect("store");
    let table = store.create_table("mvcc", 1).expect("table");

    let quiesce = Arc::new(RwLock::new(()));
    let applied: Arc<Vec<AtomicUsize>> =
        Arc::new((0..WRITERS).map(|_| AtomicUsize::new(0)).collect());
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let table = table.clone();
            let quiesce = quiesce.clone();
            let applied = applied.clone();
            std::thread::spawn(move || {
                for i in 0..rows_per_writer {
                    let guard = quiesce.read().unwrap();
                    table.put(key_of(w, i), value_of(w, i)).expect("put");
                    applied[w].fetch_add(1, Ordering::Relaxed);
                    drop(guard);
                }
            })
        })
        .collect();

    // Capture mid-flight: snapshot + applied counts under one quiesce.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let (snap, counts) = {
        let _w = quiesce.write().unwrap();
        let counts: Vec<usize> = applied.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        (table.snapshot(), counts)
    };
    for h in handles {
        h.join().expect("writer");
    }

    // The serial execution: each writer's first `counts[w]` ops, merged
    // in key order (writer key spaces are disjoint and internally
    // ordered, so this is a flat sorted merge).
    let mut expected: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for (w, &n) in counts.iter().enumerate() {
        for i in 0..n {
            expected.push((key_of(w, i), value_of(w, i)));
        }
    }
    expected.sort();
    let got: Vec<(Vec<u8>, Vec<u8>)> = snap
        .scan(b"", b"\xff")
        .expect("snapshot scan")
        .into_iter()
        .map(|e| (e.key, e.value))
        .collect();
    let got_bytes: usize = got.iter().map(|(k, v)| k.len() + v.len()).sum();
    let want_bytes: usize = expected.iter().map(|(k, v)| k.len() + v.len()).sum();
    let ok = got == expected;
    let mid_rows: usize = counts.iter().sum();
    writeln!(
        out,
        "parity guard: {} (snapshot at {mid_rows}/{} rows: {} rows / {got_bytes} bytes vs \
         serial {} rows / {want_bytes} bytes)",
        if ok { "PASS" } else { "FAIL" },
        WRITERS * rows_per_writer,
        got.len(),
        expected.len(),
    )
    .unwrap();
    drop(snap);
    drop(table);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    ok
}

/// One scan phase: `scans` range scans against `table` with 4 writers
/// running; returns per-scan latencies (us) or `None` on any scan error.
fn scan_phase(table: &Arc<just_kvstore::Table>, scans: usize, churn: bool) -> Option<Vec<u64>> {
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let table = table.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    table
                        .put(key_of(20 + w, i % 50_000), value_of(20 + w, i))
                        .expect("churn put");
                    i += 1;
                }
            })
        })
        .collect();
    let churner = churn.then(|| {
        let table = table.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut splits = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let n = table.num_regions();
                if n >= 4 {
                    table.merge_regions(0).expect("merge");
                } else {
                    table.flush().expect("flush");
                    if table.split_region(splits % n).expect("split").is_some() {
                        splits += 1;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            splits
        })
    });

    let mut lat = Vec::with_capacity(scans);
    let mut failed = false;
    for s in 0..scans {
        let w = s % WRITERS;
        let lo = key_of(w, 0);
        let hi = key_of(w, 9_999_999);
        let t0 = Instant::now();
        match table.scan(&lo, &hi) {
            Ok(hits) => {
                if hits.is_empty() {
                    failed = true; // the load phase put rows in every writer range
                }
            }
            Err(_) => failed = true,
        }
        lat.push(t0.elapsed().as_micros() as u64);
    }
    stop.store(true, Ordering::Relaxed);
    for h in writers {
        h.join().expect("churn writer");
    }
    if let Some(c) = churner {
        let splits = c.join().expect("churner");
        if splits == 0 {
            failed = true; // the churn phase must actually split
        }
    }
    if failed {
        None
    } else {
        lat.sort_unstable();
        Some(lat)
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("dirent");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("ftype").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy");
        }
    }
}

/// Runs the three guards; returns `true` when all hold.
pub fn run(cfg: &BenchConfig, out: &mut impl std::io::Write, report: &mut Report) -> bool {
    let rows_per_writer = ((cfg.orders as f64 / 20_000.0) * 2_500.0).max(600.0) as usize;
    report.meta_raw("writers", WRITERS.to_string());
    report.meta_raw("rows_per_writer", rows_per_writer.to_string());
    writeln!(
        out,
        "== MVCC snapshots + online split: {WRITERS} writers, {rows_per_writer} rows/writer =="
    )
    .unwrap();

    // ---- Guard 1: snapshot parity under concurrent ingest ----
    report.phase("parity");
    let parity_ok = snapshot_parity(rows_per_writer, out);
    report.meta_raw("parity_ok", parity_ok.to_string());

    // ---- Guard 2: split churn vs quiet scans ----
    report.phase("split_churn");
    let dir = bench_dir("churn");
    let store = Store::open(&dir, store_options()).expect("store");
    let table = store.create_table("churn", 1).expect("table");
    for w in 0..WRITERS {
        for i in 0..rows_per_writer {
            table.put(key_of(w, i), value_of(w, i)).expect("load");
        }
    }
    table.flush().expect("flush");

    // A stream opened before the split must complete across it.
    let mut pre_split_stream = table.scan_stream(b"", b"\xff", ScanOptions::default());
    let first = pre_split_stream
        .next_batch()
        .expect("pre-split batch")
        .map(|b| b.len())
        .unwrap_or(0);
    let split_at = table.split_region(0).expect("forced split");
    let mut streamed = first;
    while let Some(batch) = pre_split_stream.next_batch().expect("cross-split batch") {
        streamed += batch.len();
    }
    let stream_ok = split_at.is_some() && streamed >= WRITERS * rows_per_writer;
    writeln!(
        out,
        "mid-scan split: {} (stream opened pre-split returned {streamed} rows across the swap)",
        if stream_ok { "PASS" } else { "FAIL" }
    )
    .unwrap();

    let scans = 220usize;
    const PAIRS: usize = 3;
    let mut ratios = Vec::with_capacity(PAIRS);
    let mut last = None;
    let mut scan_err = false;
    for _ in 0..PAIRS {
        let quiet = scan_phase(&table, scans, false);
        let churned = scan_phase(&table, scans, true);
        match (quiet, churned) {
            (Some(q), Some(c)) => {
                let qp99 = percentile(&q, 0.99).max(1);
                let cp99 = percentile(&c, 0.99);
                ratios.push(cp99 as f64 / qp99 as f64);
                last = Some((qp99, cp99));
            }
            _ => scan_err = true,
        }
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let ratio = ratios.get(ratios.len() / 2).copied().unwrap_or(f64::MAX);
    let (qp99, cp99) = last.unwrap_or((0, 0));
    let split_ok = !scan_err && stream_ok && ratio < 2.0;
    report.meta_raw("scan_p99_quiet_us", qp99.to_string());
    report.meta_raw("scan_p99_churn_us", cp99.to_string());
    report.meta_raw("scan_p99_ratio", format!("{ratio:.2}"));
    writeln!(
        out,
        "split guard: {} (scan p99 under split churn {ratio:.2}x quiet, median of {PAIRS} \
         paired phases, last pair {cp99}us vs {qp99}us, need < 2x and zero scan errors)",
        if split_ok { "PASS" } else { "FAIL" }
    )
    .unwrap();

    let mut table_txt = TextTable::new(&["phase", "scan p99 us"]);
    table_txt.row(vec!["quiet".into(), qp99.to_string()]);
    table_txt.row(vec!["split churn".into(), cp99.to_string()]);
    writeln!(out, "{}", table_txt.render()).unwrap();
    drop(table);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    // ---- Guard 3: WAL replay after kill -9 reconstructs daughters ----
    report.phase("replay");
    let dir = bench_dir("replay");
    let store = Store::open(&dir, store_options()).expect("store");
    let table = store.create_table("crash", 1).expect("table");
    for w in 0..4 {
        for i in 0..rows_per_writer {
            table.put(key_of(w, i), value_of(w, i)).expect("load");
        }
    }
    table.flush().expect("flush");
    let split = table.split_region(0).expect("split").is_some();
    let regions_before = table.num_regions();
    // Acknowledged-but-unflushed writes into both daughters: these only
    // exist in the daughters' WALs at "crash" time.
    for i in 0..200 {
        table
            .put(key_of(0, rows_per_writer + i), b"post-split".to_vec())
            .expect("post");
        table
            .put(key_of(3, rows_per_writer + i), b"post-split".to_vec())
            .expect("post");
    }
    let expected_rows = 4 * rows_per_writer + 400;
    let crash_dir = bench_dir("replay-crashcopy");
    copy_dir(&dir, &crash_dir); // kill -9: no shutdown, no flush
    drop(table);
    drop(store);

    let store2 = Store::open(&crash_dir, store_options()).expect("reopen");
    let table2 = store2.open_table("crash", 1).expect("reopen table");
    let regions_after = table2.num_regions();
    let rows_after = table2.scan(b"", b"\xff").expect("post-replay scan").len();
    let post_ok = table2
        .get(&key_of(0, rows_per_writer + 7))
        .expect("post-replay get")
        .as_deref()
        == Some(b"post-split".as_ref());
    let replay_ok =
        split && regions_after == regions_before && rows_after == expected_rows && post_ok;
    report.meta_raw("regions_before_crash", regions_before.to_string());
    report.meta_raw("regions_after_replay", regions_after.to_string());
    report.meta_raw("rows_after_replay", rows_after.to_string());
    writeln!(
        out,
        "replay guard: {} (kill -9 after split: {regions_after}/{regions_before} regions, \
         {rows_after}/{expected_rows} rows, WAL'd post-split writes {})",
        if replay_ok { "PASS" } else { "FAIL" },
        if post_ok { "intact" } else { "LOST" }
    )
    .unwrap();
    drop(table2);
    drop(store2);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();

    parity_ok && split_ok && replay_ok
}
