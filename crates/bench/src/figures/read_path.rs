//! Read-path overhead: blocks read and latency across SSTable formats —
//! legacy v1 (full keys, linear in-block scans, no bloom), v2 (prefix
//! compression + restart-point binary search + bloom filters), and v2
//! with per-block compression.
//!
//! This is the paper's §V compression argument measured end to end: the
//! same rows, the same scans and point gets, differing only in on-disk
//! layout. The block cache is disabled so `blocks_read` is true disk IO.
//! Two functional guards are printed (and re-checked by `ci.sh`):
//! a miss-heavy point-get workload must resolve ≥95 % of misses by bloom
//! filter alone, and the compressed v2 layout must read ≥30 % fewer
//! blocks than v1 on the range-scan workload.

use crate::config::BenchConfig;
use crate::harness::{median_latency, ms, ObsIoSnapshot, Report, Table};
use just_compress::Codec;
use just_kvstore::{BlockFormat, Store, StoreOptions};

/// The swept configurations: (label, format, codec, bloom bits/key).
pub fn variants() -> Vec<(&'static str, BlockFormat, Codec, usize)> {
    vec![
        ("v1", BlockFormat::V1, Codec::None, 0),
        ("v2", BlockFormat::V2, Codec::None, 10),
        ("v2-zip", BlockFormat::V2, Codec::Zip, 10),
    ]
}

/// Trajectory-point key for record `i`: 256 points per trajectory id,
/// lexicographically ascending in `i` (even slots; odd slots stay free
/// for the miss workload).
fn key(i: usize) -> Vec<u8> {
    format!("traj/{:04}/{:010}", i / 256, i * 2).into_bytes()
}

/// Absent key inside the table's key fence (odd slot of record `i`).
fn miss_key(i: usize) -> Vec<u8> {
    format!("traj/{:04}/{:010}", i / 256, i * 2 + 1).into_bytes()
}

/// A GPS-sample-like value: structured, repetitive, compressible — the
/// field shape the paper compresses.
fn value(i: usize) -> Vec<u8> {
    format!(
        "lng=116.{:06},lat=39.{:06},speed={:02}.5,heading={:03},status=driving;",
        i * 131 % 1_000_000,
        i * 977 % 1_000_000,
        i % 80,
        i % 360
    )
    .into_bytes()
}

/// Runs the read-path sweep. Returns `true` when both functional guards
/// pass (the binary's exit path and `ci.sh` depend on this, not on
/// timings).
pub fn run(cfg: &BenchConfig, out: &mut impl std::io::Write, report: &mut Report) -> bool {
    let n = cfg.orders;
    // Each scan must span several blocks' worth of rows, or the one-
    // block-per-scan floor hides the layout difference being measured.
    let scans = (n / 100).clamp(10, 200);
    let span = n / scans; // records per range scan
    let gets = 500.min(n);

    let mut table = Table::new(&[
        "format",
        "disk KiB",
        "scan blocks",
        "scan ms(med)",
        "get ms(med)",
        "miss blocks",
        "bloom skip %",
    ]);
    let mut v1_scan_blocks = 0u64;
    let mut zip_scan_blocks = 0u64;
    let mut bloom_pct = 0.0f64;
    for (label, format, codec, bloom_bits) in variants() {
        report.phase(&format!("ingest-{label}"));
        let dir =
            std::env::temp_dir().join(format!("just-fig-read-path-{label}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(
            &dir,
            StoreOptions {
                block_size: 4096,
                sst_format: format,
                codec,
                bloom_bits_per_key: bloom_bits,
                block_cache_bytes: 0,
                ..StoreOptions::default()
            },
        )
        .expect("store open");
        let t = store.create_table("traj", 1).expect("create table");
        for i in 0..n {
            t.put(key(i), value(i)).expect("put");
        }
        t.flush().expect("flush");
        t.compact().expect("compact");
        let disk_kib = t.disk_size() / 1024;

        // Range scans over disjoint slices of the keyspace.
        report.phase(&format!("scan-{label}"));
        let before = ObsIoSnapshot::capture();
        let ranges: Vec<(Vec<u8>, Vec<u8>)> = (0..scans)
            .map(|s| (key(s * span), key((s + 1) * span - 1)))
            .collect();
        let scan_med = median_latency(&ranges, |(lo, hi)| {
            let hits = t.scan(lo, hi).expect("scan");
            assert!(!hits.is_empty(), "scan returned no rows");
        });
        let scan_blocks = ObsIoSnapshot::capture().since(&before).blocks_read;

        // Point gets on present keys.
        report.phase(&format!("get-hit-{label}"));
        let hit_keys: Vec<Vec<u8>> = (0..gets).map(|i| key(i * (n / gets))).collect();
        let get_med = median_latency(&hit_keys, |k| {
            assert!(t.get(k).expect("get").is_some(), "present key missing");
        });

        // Miss-heavy point gets: absent keys *inside* the key fence, so
        // only a bloom filter (or a block read) can answer them.
        report.phase(&format!("get-miss-{label}"));
        let before = ObsIoSnapshot::capture();
        for i in 0..gets {
            assert!(
                t.get(&miss_key(i * (n / gets))).expect("get").is_none(),
                "miss key unexpectedly present"
            );
        }
        let d = ObsIoSnapshot::capture().since(&before);
        let skip_pct = 100.0 * d.bloom_skips as f64 / gets as f64;

        if label == "v1" {
            v1_scan_blocks = scan_blocks;
        }
        if label == "v2-zip" {
            zip_scan_blocks = scan_blocks;
            bloom_pct = skip_pct;
        }
        table.row(vec![
            label.to_string(),
            disk_kib.to_string(),
            scan_blocks.to_string(),
            ms(scan_med),
            ms(get_med),
            d.blocks_read.to_string(),
            format!("{skip_pct:.1}"),
        ]);
        drop(t);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    writeln!(
        out,
        "== Read path: blocks read and latency across SSTable formats =="
    )
    .unwrap();
    writeln!(out, "{}", table.render()).unwrap();

    let bloom_ok = bloom_pct >= 95.0;
    let saved = 100.0 - 100.0 * zip_scan_blocks as f64 / v1_scan_blocks.max(1) as f64;
    let compression_ok = saved >= 30.0;
    writeln!(
        out,
        "bloom guard: {} ({bloom_pct:.1}% of {gets} in-fence misses bloom-skipped, need >=95%)",
        if bloom_ok { "PASS" } else { "FAIL" },
    )
    .unwrap();
    writeln!(
        out,
        "compression guard: {} (v2-zip scans read {zip_scan_blocks} blocks vs {v1_scan_blocks} \
         for v1: {saved:.1}% fewer, need >=30%)",
        if compression_ok { "PASS" } else { "FAIL" },
    )
    .unwrap();
    bloom_ok && compression_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_path_figure_runs_and_guards_pass_at_tiny_scale() {
        let cfg = BenchConfig {
            orders: 2000,
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        let ok = run(&cfg, &mut buf, &mut Report::new("read_path"));
        let text = String::from_utf8(buf).unwrap();
        assert!(ok, "guards must pass: {text}");
        assert!(text.contains("bloom guard: PASS"), "{text}");
        assert!(text.contains("compression guard: PASS"), "{text}");
        for (label, ..) in variants() {
            assert!(
                text.lines().any(|l| l.trim().starts_with(label)),
                "missing row for {label}: {text}"
            );
        }
    }
}
