//! Figure 11: spatial range query performance vs data size and spatial
//! window, JUST vs the in-memory and disk baselines.

use crate::config::BenchConfig;
use crate::figures::{build_order_table, build_traj_table};
use crate::harness::{median_latency, ms, Report, Table};
use crate::workload::{order_records, query_windows, traj_records, OrderDataset, TrajDataset};
use just_baselines::*;
use just_curves::TimePeriod;
use just_storage::SpatialPredicate;
use std::io::Write;

/// Runs Figure 11 (a–d).
pub fn run(cfg: &BenchConfig, out: &mut impl Write, report: &mut Report) {
    report.phase("generate");
    let orders = OrderDataset::generate(cfg.orders, cfg.seed);
    let trajs = TrajDataset::generate(cfg.trajectories, cfg.points_per_trajectory, cfg.seed);
    let windows = query_windows(cfg.queries_per_point, cfg.default_window_km(), cfg.seed);

    report.phase("11a");
    // ---- 11a: Order, query time vs data size ---------------------------
    let mut ta = Table::new(&[
        "data %",
        "JUST (ms)",
        "rtree (ms)",
        "grid (ms)",
        "quadtree (ms)",
        "hadoop (ms)",
    ]);
    for &pct in &cfg.data_sizes_pct {
        let slice = orders.fraction(pct);
        let (te, _) = build_order_table("f11a", &slice, None, TimePeriod::Day, false);
        let recs = order_records(&slice);
        let mut row = vec![pct.to_string()];
        row.push(ms(median_latency(&windows, |w| {
            te.engine
                .spatial_range("orders", w, SpatialPredicate::Within)
                .unwrap();
        })));
        for engine in baseline_set(pct) {
            row.push(run_engine_ranges(engine, &recs, &windows));
        }
        ta.row(row);
    }
    writeln!(out, "== Fig 11a: spatial range vs data size (Order) ==").unwrap();
    writeln!(out, "{}", ta.render()).unwrap();

    report.phase("11b");
    // ---- 11b: Traj, query time vs data size (with JUSTnc) --------------
    let mut tb = Table::new(&[
        "data %",
        "JUST (ms)",
        "JUSTnc (ms)",
        "rtree@cap (ms)",
        "grid@cap (ms)",
    ]);
    let full_payload: usize = trajs.total_points() * 24;
    let cap = MemoryBudget {
        bytes: Some(full_payload * 6 / 10),
    };
    for &pct in &cfg.data_sizes_pct {
        let slice = trajs.fraction(pct);
        let (te, _) = build_traj_table("f11b", &slice, None, TimePeriod::Day, true);
        let (te_nc, _) = build_traj_table("f11b-nc", &slice, None, TimePeriod::Day, false);
        let recs = traj_records(&slice);
        let mut row = vec![pct.to_string()];
        for engine in [&te, &te_nc] {
            row.push(ms(median_latency(&windows, |w| {
                engine
                    .engine
                    .spatial_range("traj", w, SpatialPredicate::Intersects)
                    .unwrap();
            })));
        }
        row.push(run_engine_ranges(
            Box::new(RTreeEngine::new(cap)),
            &recs,
            &windows,
        ));
        row.push(run_engine_ranges(
            Box::new(GridEngine::new(cap, 32)),
            &recs,
            &windows,
        ));
        tb.row(row);
    }
    writeln!(out, "== Fig 11b: spatial range vs data size (Traj) ==").unwrap();
    writeln!(out, "{}", tb.render()).unwrap();

    report.phase("11cd");
    // ---- 11c/11d: query time vs spatial window -------------------------
    let (te_o, _) = build_order_table("f11c", &orders.orders, None, TimePeriod::Day, false);
    let recs_o = order_records(&orders.orders);
    let (te_t, _) = build_traj_table("f11d", &trajs.trajectories, None, TimePeriod::Day, true);
    let (te_t_nc, _) =
        build_traj_table("f11d-nc", &trajs.trajectories, None, TimePeriod::Day, false);
    let recs_t = traj_records(&trajs.trajectories);

    let mut tc = Table::new(&[
        "window km",
        "JUST (ms)",
        "rtree (ms)",
        "grid (ms)",
        "quadtree (ms)",
        "hadoop (ms)",
    ]);
    let mut td = Table::new(&[
        "window km",
        "JUST (ms)",
        "JUSTnc (ms)",
        "rtree (ms)",
        "grid (ms)",
    ]);
    for &km in &cfg.spatial_windows_km {
        let windows = query_windows(cfg.queries_per_point, km, cfg.seed);
        let mut row = vec![format!("{km}x{km}")];
        row.push(ms(median_latency(&windows, |w| {
            te_o.engine
                .spatial_range("orders", w, SpatialPredicate::Within)
                .unwrap();
        })));
        for engine in baseline_set(100) {
            row.push(run_engine_ranges(engine, &recs_o, &windows));
        }
        tc.row(row);

        let mut row = vec![format!("{km}x{km}")];
        for engine in [&te_t, &te_t_nc] {
            row.push(ms(median_latency(&windows, |w| {
                engine
                    .engine
                    .spatial_range("traj", w, SpatialPredicate::Intersects)
                    .unwrap();
            })));
        }
        row.push(run_engine_ranges(
            Box::new(RTreeEngine::new(MemoryBudget::unlimited())),
            &recs_t,
            &windows,
        ));
        row.push(run_engine_ranges(
            Box::new(GridEngine::new(MemoryBudget::unlimited(), 32)),
            &recs_t,
            &windows,
        ));
        td.row(row);
    }
    writeln!(out, "== Fig 11c: spatial range vs window (Order) ==").unwrap();
    writeln!(out, "{}", tc.render()).unwrap();
    writeln!(out, "== Fig 11d: spatial range vs window (Traj) ==").unwrap();
    writeln!(out, "{}", td.render()).unwrap();
}

fn baseline_set(pct: u32) -> Vec<Box<dyn SpatialEngine>> {
    let dir = std::env::temp_dir().join(format!(
        "just-f11-hadoop-{}-{pct}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len()
    ));
    std::fs::remove_dir_all(&dir).ok();
    vec![
        Box::new(RTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(GridEngine::new(MemoryBudget::unlimited(), 32)),
        Box::new(QuadTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(HadoopSimEngine::new(
            dir,
            crate::config::BenchConfig::default().hadoop_job_overhead,
            false,
        )),
    ]
}

fn run_engine_ranges(
    mut engine: Box<dyn SpatialEngine>,
    recs: &[StRecord],
    windows: &[just_geo::Rect],
) -> String {
    match engine.build(recs) {
        Ok(()) => ms(median_latency(windows, |w| {
            engine.spatial_range(w).unwrap();
        })),
        Err(EngineError::OutOfMemory { .. }) => "OOM".into(),
        Err(other) => format!("err:{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_runs_at_tiny_scale() {
        let cfg = BenchConfig {
            orders: 300,
            trajectories: 6,
            points_per_trajectory: 150,
            data_sizes_pct: vec![100],
            spatial_windows_km: vec![2.0],
            queries_per_point: 3,
            hadoop_job_overhead: std::time::Duration::ZERO,
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        run(&cfg, &mut buf, &mut Report::new("fig11"));
        let text = String::from_utf8(buf).unwrap();
        for sec in ["Fig 11a", "Fig 11b", "Fig 11c", "Fig 11d"] {
            assert!(text.contains(sec), "{sec} missing");
        }
    }
}
