//! Figure 14: scalability over the Synthetic dataset — indexing time and
//! storage grow linearly with data size; spatial and k-NN query times
//! grow, while ST query time stays flat ("the efficiency of
//! spatio-temporal query has nothing to do with the data size").

use crate::config::BenchConfig;
use crate::figures::build_traj_table;
use crate::harness::{median_latency, ms, Report, Table};
use crate::workload::{query_points, query_time_windows, query_windows, TrajDataset, DAY_MS};
use just_curves::TimePeriod;
use just_storage::SpatialPredicate;
use std::io::Write;

/// Runs Figure 14 (a–b).
pub fn run(cfg: &BenchConfig, out: &mut impl Write, report: &mut Report) {
    report.phase("generate");
    let base = TrajDataset::generate(cfg.trajectories, cfg.points_per_trajectory, cfg.seed);
    let synth = base.synthesize(cfg.synthetic_copies, cfg.seed);
    let windows = query_windows(cfg.queries_per_point, cfg.default_window_km(), cfg.seed);
    let points = query_points(cfg.queries_per_point, cfg.seed);
    // ST windows limited to the base month so result sizes stay constant
    // as copies (later months) are added — the paper's flat-line setup.
    let times: Vec<(i64, i64)> = query_time_windows(cfg.queries_per_point, 24, cfg.seed)
        .into_iter()
        .map(|(a, b)| (a.min(29 * DAY_MS), b.min(30 * DAY_MS)))
        .collect();
    let st_queries: Vec<(just_geo::Rect, (i64, i64))> =
        windows.iter().cloned().zip(times.iter().cloned()).collect();

    report.phase("14ab");
    let mut ta = Table::new(&["data %", "indexing (ms)", "storage (KB)"]);
    let mut tb = Table::new(&["data %", "S (ms)", "ST (ms)", "k-NN (ms)"]);
    let k = 20.min(synth.trajectories.len());
    for &pct in &cfg.data_sizes_pct {
        let slice = synth.fraction(pct);
        if slice.is_empty() {
            continue;
        }
        let (te, index_time) = build_traj_table("f14", &slice, None, TimePeriod::Day, true);
        ta.row(vec![
            pct.to_string(),
            ms(index_time),
            (te.engine.table_disk_size("traj").unwrap() / 1024).to_string(),
        ]);

        let s = median_latency(&windows, |w| {
            te.engine
                .spatial_range("traj", w, SpatialPredicate::Intersects)
                .unwrap();
        });
        let st = median_latency(&st_queries, |(w, t)| {
            te.engine
                .st_range("traj", w, t.0, t.1, SpatialPredicate::Intersects)
                .unwrap();
        });
        let knn = median_latency(&points, |q| {
            te.engine.knn("traj", *q, k).unwrap();
        });
        tb.row(vec![pct.to_string(), ms(s), ms(st), ms(knn)]);
    }
    writeln!(
        out,
        "== Fig 14a: Synthetic indexing time & storage vs size =="
    )
    .unwrap();
    writeln!(out, "{}", ta.render()).unwrap();
    writeln!(out, "== Fig 14b: Synthetic query time vs size ==").unwrap();
    writeln!(out, "{}", tb.render()).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_storage_grows_linearly() {
        let cfg = BenchConfig {
            trajectories: 6,
            points_per_trajectory: 100,
            synthetic_copies: 2,
            data_sizes_pct: vec![50, 100],
            queries_per_point: 3,
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        run(&cfg, &mut buf, &mut Report::new("fig14"));
        let text = String::from_utf8(buf).unwrap();
        let sec = text.split("Fig 14a").nth(1).unwrap();
        let kb_of = |pct: &str| -> f64 {
            sec.lines()
                .find(|l| l.trim_start().starts_with(pct))
                .unwrap()
                .split_whitespace()
                .last()
                .unwrap()
                .parse()
                .unwrap()
        };
        let (half, full) = (kb_of("50"), kb_of("100"));
        assert!(
            full > half * 1.5 && full < half * 3.0,
            "storage should grow roughly linearly: {half} -> {full}"
        );
    }
}
