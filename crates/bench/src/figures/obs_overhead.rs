//! Observability overhead: the always-on query registry + per-operator
//! stats collection versus the same engine with tracking disabled.
//!
//! Two identical engines are built from the same Order workload — one
//! with `query_tracking: true` (the default: every SELECT registers in
//! the live registry, carries a kill token, and collects flat
//! per-operator stats) and one with `query_tracking: false`. The same
//! scan query then runs against both as tightly interleaved *pairs*
//! (A/B, B/A, A/B, ...), and the guard is computed from the median of
//! the per-pair time differences: adjacent-in-time pairs see the same
//! machine state, so scheduler spikes and clock drift cancel instead of
//! masquerading as instrumentation cost.
//!
//! One functional guard (re-checked by `ci.sh`): the median per-pair
//! slowdown must be within **5 %** of the untracked median query — the
//! "always-on" in always-on observability is only honest if nobody is
//! tempted to turn it off.

use crate::config::BenchConfig;
use crate::harness::{time_once, Report, Table};
use crate::workload::OrderDataset;
use just_core::{Engine, EngineConfig};
use just_ql::Client;

/// Interleaved measurement pairs (odd, so the median is one sample).
const PAIRS: usize = 121;

fn build(tag: &str, cfg: &BenchConfig, tracking: bool) -> (Client, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "just-fig-obs-{tag}-{}-{}",
        std::process::id(),
        tracking
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine_cfg = EngineConfig {
        query_tracking: tracking,
        // The slow-query log is part of the measured pipeline; leave it
        // on at its default threshold (these queries stay far below it).
        ..EngineConfig::default()
    };
    let engine = std::sync::Arc::new(Engine::open(&dir, engine_cfg).expect("engine open"));
    let mut client = Client::new(just_core::SessionManager::new(engine).session("bench"));
    client
        .execute(
            "CREATE TABLE orders (fid integer:primary key, time date, \
             geom point:srid=4326)",
        )
        .expect("create orders");
    let orders = OrderDataset::generate(cfg.orders, cfg.seed).orders;
    for chunk in orders.chunks(500) {
        let values: Vec<String> = chunk
            .iter()
            .map(|o| {
                format!(
                    "({}, {}, st_makePoint({}, {}))",
                    o.fid, o.time_ms, o.point.x, o.point.y
                )
            })
            .collect();
        client
            .execute(&format!("INSERT INTO orders VALUES {}", values.join(", ")))
            .expect("insert orders");
    }
    (client, dir)
}

/// One measured query: scan-heavy, touching the streaming read path,
/// the spatial filter, and aggregation.
fn query(client: &mut Client) {
    client
        .execute(
            "SELECT count(*) FROM orders WHERE geom WITHIN \
             st_makeMBR(116.0, 39.6, 116.5, 40.1)",
        )
        .expect("range count");
}

fn median_f64(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Runs the observability-overhead comparison. Returns `true` when the
/// tracked engine stays within the 5 % guard.
pub fn run(cfg: &BenchConfig, out: &mut impl std::io::Write, report: &mut Report) -> bool {
    report.phase("build");
    let (mut tracked, dir_on) = build("on", cfg, true);
    let (mut untracked, dir_off) = build("off", cfg, false);

    // Warm both sides (page cache, block cache, lazily-opened regions)
    // before anything is timed.
    report.phase("warmup");
    for _ in 0..5 {
        query(&mut tracked);
        query(&mut untracked);
    }

    report.phase("measure");
    let mut on_times = Vec::with_capacity(PAIRS);
    let mut off_times = Vec::with_capacity(PAIRS);
    let mut diffs = Vec::with_capacity(PAIRS);
    for i in 0..PAIRS {
        // Alternate which side goes first inside each pair: whoever runs
        // first systematically sees slightly different cache/clock
        // state, and that bias must not masquerade as overhead.
        let (t_on, t_off) = if i % 2 == 0 {
            let on = time_once(|| query(&mut tracked)).1;
            let off = time_once(|| query(&mut untracked)).1;
            (on, off)
        } else {
            let off = time_once(|| query(&mut untracked)).1;
            let on = time_once(|| query(&mut tracked)).1;
            (on, off)
        };
        on_times.push(t_on.as_secs_f64());
        off_times.push(t_off.as_secs_f64());
        diffs.push(t_on.as_secs_f64() - t_off.as_secs_f64());
    }
    let med_on = median_f64(on_times.clone());
    let med_off = median_f64(off_times.clone());
    let med_diff = median_f64(diffs);

    let mut table = Table::new(&["engine", "median query us", "min us", "max us"]);
    for (name, times) in [("tracked", &on_times), ("untracked", &off_times)] {
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        table.row(vec![
            name.into(),
            format!("{:.1}", median_f64(times.clone()) * 1e6),
            format!("{:.1}", min * 1e6),
            format!("{:.1}", max * 1e6),
        ]);
    }
    writeln!(
        out,
        "== Observability overhead: query registry + per-op stats, \
         {PAIRS} interleaved query pairs =="
    )
    .unwrap();
    writeln!(out, "{}", table.render()).unwrap();

    // The guard uses the median of *per-pair* differences: adjacent
    // measurements share machine state, so ambient noise cancels inside
    // each pair and the median discards the spiky tail.
    let overhead_pct = 100.0 * med_diff / med_off.max(f64::MIN_POSITIVE);
    let ok = overhead_pct <= 5.0;
    writeln!(
        out,
        "overhead guard: {} (median paired slowdown {:+.1}us on a {:.1}us query: \
         {overhead_pct:+.1}%, need <= +5%; medians {:.1}us tracked / {:.1}us untracked)",
        if ok { "PASS" } else { "FAIL" },
        med_diff * 1e6,
        med_off * 1e6,
        med_on * 1e6,
        med_off * 1e6,
    )
    .unwrap();

    drop(tracked);
    drop(untracked);
    std::fs::remove_dir_all(dir_on).ok();
    std::fs::remove_dir_all(dir_off).ok();
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_overhead_figure_runs_and_guard_passes_at_tiny_scale() {
        let cfg = BenchConfig {
            orders: 2000,
            ..BenchConfig::default()
        };
        let mut buf = Vec::new();
        let ok = run(&cfg, &mut buf, &mut Report::new("obs_overhead"));
        let text = String::from_utf8(buf).unwrap();
        assert!(ok, "overhead guard must pass: {text}");
        assert!(text.contains("overhead guard: PASS"), "{text}");
    }
}
