//! Benchmark configuration: the laptop-scale equivalents of Table II-IV.

use std::time::Duration;

/// Scaled-down dataset sizes and query settings.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Number of purchase orders at 100 % (paper: 71 M).
    pub orders: usize,
    /// Number of trajectories at 100 % (paper: 314 K records).
    pub trajectories: usize,
    /// GPS samples per trajectory (paper: ~2.8 K points/record).
    pub points_per_trajectory: usize,
    /// Synthetic = Traj copied-and-sampled this many times (paper: 10×).
    pub synthetic_copies: usize,
    /// Data-size sweep in percent (Table IV).
    pub data_sizes_pct: Vec<u32>,
    /// Spatial windows in km (Table IV; default bold 3×3).
    pub spatial_windows_km: Vec<f64>,
    /// Time windows in hours (Table IV: 1h, 6h, 1d, 1w, 1m).
    pub time_windows_h: Vec<i64>,
    /// k values (Table IV; default bold 150).
    pub k_values: Vec<usize>,
    /// Queries per measurement (paper: 100; median reported).
    pub queries_per_point: usize,
    /// Simulated MapReduce job startup (the Hadoop-family handicap the
    /// paper observes; measured, not asserted).
    pub hadoop_job_overhead: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            orders: 20_000,
            trajectories: 150,
            points_per_trajectory: 400,
            synthetic_copies: 3,
            data_sizes_pct: vec![20, 40, 60, 80, 100],
            spatial_windows_km: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            time_windows_h: vec![1, 6, 24, 7 * 24, 30 * 24],
            k_values: vec![50, 100, 150, 200, 250],
            queries_per_point: 12,
            hadoop_job_overhead: Duration::from_millis(40),
            seed: 0x4A55_5354, // "JUST"
        }
    }
}

impl BenchConfig {
    /// Scales record counts by `factor` (the `--scale` CLI flag).
    pub fn scaled(mut self, factor: f64) -> Self {
        let f = factor.max(0.01);
        self.orders = ((self.orders as f64) * f).max(100.0) as usize;
        self.trajectories = ((self.trajectories as f64) * f).max(5.0) as usize;
        self
    }

    /// The default query window (Table IV bold): 3×3 km.
    pub fn default_window_km(&self) -> f64 {
        3.0
    }

    /// The default k (Table IV bold: 150) — the middle of the configured
    /// sweep, so scaled-down runs use proportionate values.
    pub fn default_k(&self) -> usize {
        self.k_values
            .get(self.k_values.len() / 2)
            .copied()
            .unwrap_or(150)
    }

    /// The default time window (Table IV bold): 1 day.
    pub fn default_time_window_h(&self) -> i64 {
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_respects_floors() {
        let c = BenchConfig::default().scaled(0.0001);
        assert!(c.orders >= 100);
        assert!(c.trajectories >= 5);
        let big = BenchConfig::default().scaled(2.0);
        assert_eq!(big.orders, 40_000);
    }
}
