//! Workload generation and the figure-regeneration harness for the JUST
//! evaluation (Section VIII).
//!
//! The `figures` binary re-runs every table and figure of the paper at
//! laptop scale:
//!
//! ```text
//! cargo run --release -p just-bench --bin figures -- all
//! cargo run --release -p just-bench --bin figures -- fig12 --scale 0.5
//! ```
//!
//! Absolute numbers differ from the paper's 5-node cluster, but the
//! *shapes* — who wins, by what factor, where crossovers happen — are the
//! reproduction target (see EXPERIMENTS.md).

#![deny(missing_docs)]

pub mod config;
pub mod figures;
pub mod harness;
pub mod workload;

pub use config::BenchConfig;
pub use workload::{OrderDataset, TrajDataset};
