//! Synthetic workload generators standing in for the JD datasets
//! (Table II): `Order` (many small point records), `Traj` (fewer fat
//! trajectory records with long GPS lists) and `Synthetic` (Traj copied &
//! sampled).

use just_compress::gps::GpsSample;
use just_geo::{Point, Rect};
use just_obs::Rng;
use just_storage::{Row, Value};

/// Beijing-metro-like bounding box all workloads live in.
pub const CITY: Rect = Rect {
    min_x: 115.8,
    min_y: 39.4,
    max_x: 117.0,
    max_y: 40.6,
};

/// One day in ms.
pub const DAY_MS: i64 = 86_400_000;

/// A purchase order: id, biased delivery point, order time.
#[derive(Debug, Clone)]
pub struct Order {
    /// Order id.
    pub fid: i64,
    /// Delivery point.
    pub point: Point,
    /// Order time (ms since epoch, relative to the dataset's day 0).
    pub time_ms: i64,
}

/// The Order dataset (spans 61 days like the paper's two months).
#[derive(Debug, Clone)]
pub struct OrderDataset {
    /// The orders.
    pub orders: Vec<Order>,
}

impl OrderDataset {
    /// Generates `n` orders: a handful of hot districts plus uniform
    /// background, over 61 days with a daily demand curve.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        // Hot districts (cluster centres).
        let hubs: Vec<Point> = (0..8)
            .map(|_| {
                Point::new(
                    rng.gen_range(CITY.min_x + 0.1..CITY.max_x - 0.1),
                    rng.gen_range(CITY.min_y + 0.1..CITY.max_y - 0.1),
                )
            })
            .collect();
        let mut orders = Vec::with_capacity(n);
        for fid in 0..n {
            let point = if rng.gen_bool(0.7) {
                let hub = hubs[rng.gen_range(0..hubs.len())];
                Point::new(
                    (hub.x + rng.gen_range(-0.03..0.03)).clamp(CITY.min_x, CITY.max_x),
                    (hub.y + rng.gen_range(-0.03..0.03)).clamp(CITY.min_y, CITY.max_y),
                )
            } else {
                Point::new(
                    rng.gen_range(CITY.min_x..CITY.max_x),
                    rng.gen_range(CITY.min_y..CITY.max_y),
                )
            };
            let day = rng.gen_range(0..61i64);
            // Orders cluster in daytime hours.
            let hour = (8.0 + 12.0 * rng.gen_range(0.0f64..1.0).powf(0.7)) as i64;
            let time_ms = day * DAY_MS + hour * 3_600_000 + rng.gen_range(0..3_600_000i64);
            orders.push(Order {
                fid: fid as i64,
                point,
                time_ms,
            });
        }
        OrderDataset { orders }
    }

    /// The first `pct` percent of the dataset (the paper's data-size
    /// sweep).
    pub fn fraction(&self, pct: u32) -> Vec<Order> {
        let n = self.orders.len() * pct as usize / 100;
        self.orders[..n].to_vec()
    }

    /// Time span covered.
    pub fn time_span(&self) -> (i64, i64) {
        let lo = self.orders.iter().map(|o| o.time_ms).min().unwrap_or(0);
        let hi = self.orders.iter().map(|o| o.time_ms).max().unwrap_or(0);
        (lo, hi)
    }
}

/// Converts orders to engine rows (`fid integer, time date, geom point`).
pub fn order_rows(orders: &[Order]) -> Vec<Row> {
    orders
        .iter()
        .map(|o| {
            Row::new(vec![
                Value::Int(o.fid),
                Value::Date(o.time_ms),
                Value::Geom(just_geo::Geometry::Point(o.point)),
            ])
        })
        .collect()
}

/// Converts orders to baseline records.
pub fn order_records(orders: &[Order]) -> Vec<just_baselines::StRecord> {
    orders
        .iter()
        .map(|o| just_baselines::StRecord::point(o.fid as u64, o.point, o.time_ms, 40))
        .collect()
}

/// One lorry trajectory.
#[derive(Debug, Clone)]
pub struct TrajRecord {
    /// Lorry id + day.
    pub oid: String,
    /// The GPS list (the big compressible field).
    pub samples: Vec<GpsSample>,
}

impl TrajRecord {
    /// Spatial MBR of the samples.
    pub fn mbr(&self) -> Rect {
        let mut r = Rect::empty();
        for s in &self.samples {
            r.expand_point(&Point::new(s.lng, s.lat));
        }
        r
    }

    /// `(first, last)` timestamps.
    pub fn time_span(&self) -> (i64, i64) {
        (
            self.samples.first().map(|s| s.time_ms).unwrap_or(0),
            self.samples.last().map(|s| s.time_ms).unwrap_or(0),
        )
    }
}

/// The Traj dataset (31 days like the paper's March window).
#[derive(Debug, Clone)]
pub struct TrajDataset {
    /// The trajectories.
    pub trajectories: Vec<TrajRecord>,
}

impl TrajDataset {
    /// Generates `n` lorry random walks of `points_each` samples.
    pub fn generate(n: usize, points_each: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed ^ 0x7261_6a54);
        let mut trajectories = Vec::with_capacity(n);
        for i in 0..n {
            let day = rng.gen_range(0..31i64);
            let mut t = day * DAY_MS + rng.gen_range(6..10i64) * 3_600_000;
            let mut lng = rng.gen_range(CITY.min_x + 0.05..CITY.max_x - 0.05);
            let mut lat = rng.gen_range(CITY.min_y + 0.05..CITY.max_y - 0.05);
            // Persistent heading with drift: city-delivery random walk.
            let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let mut samples = Vec::with_capacity(points_each);
            for _ in 0..points_each {
                samples.push(GpsSample {
                    lng,
                    lat,
                    time_ms: t,
                });
                heading += rng.gen_range(-0.4..0.4);
                let speed_deg = rng.gen_range(0.00002..0.00012); // ~2-13 m/s
                lng = (lng + heading.cos() * speed_deg).clamp(CITY.min_x, CITY.max_x);
                lat = (lat + heading.sin() * speed_deg).clamp(CITY.min_y, CITY.max_y);
                t += rng.gen_range(800..1500i64);
            }
            trajectories.push(TrajRecord {
                oid: format!("lorry-{i:06}"),
                samples,
            });
        }
        TrajDataset { trajectories }
    }

    /// The first `pct` percent of the trajectories.
    pub fn fraction(&self, pct: u32) -> Vec<TrajRecord> {
        let n = self.trajectories.len() * pct as usize / 100;
        self.trajectories[..n].to_vec()
    }

    /// The Synthetic dataset: this dataset copied `copies` times with
    /// per-copy day offsets (the paper's "copying & sampling ... up to
    /// 1T"), preserving record shape while multiplying volume.
    pub fn synthesize(&self, copies: usize, seed: u64) -> TrajDataset {
        let mut rng = Rng::seed_from_u64(seed ^ 0x5359_4e54);
        let mut out = Vec::with_capacity(self.trajectories.len() * copies);
        for c in 0..copies {
            let day_shift = (c as i64) * 31 * DAY_MS;
            for t in &self.trajectories {
                let jitter_lng = rng.gen_range(-0.01..0.01);
                let jitter_lat = rng.gen_range(-0.01..0.01);
                out.push(TrajRecord {
                    oid: format!("{}-c{c}", t.oid),
                    samples: t
                        .samples
                        .iter()
                        .map(|s| GpsSample {
                            lng: (s.lng + jitter_lng).clamp(CITY.min_x, CITY.max_x),
                            lat: (s.lat + jitter_lat).clamp(CITY.min_y, CITY.max_y),
                            time_ms: s.time_ms + day_shift,
                        })
                        .collect(),
                });
            }
        }
        TrajDataset { trajectories: out }
    }

    /// Total GPS points.
    pub fn total_points(&self) -> usize {
        self.trajectories.iter().map(|t| t.samples.len()).sum()
    }
}

/// Converts trajectories into trajectory-plugin-table rows (Figure 6).
pub fn traj_rows(trajs: &[TrajRecord]) -> Vec<Row> {
    trajs
        .iter()
        .map(|t| {
            let mbr = t.mbr();
            let (t0, t1) = t.time_span();
            let first = t.samples.first().expect("non-empty trajectory");
            let last = t.samples.last().expect("non-empty trajectory");
            Row::new(vec![
                Value::Str(t.oid.clone()),
                Value::Geom(just_geo::Geometry::Rect(mbr)),
                Value::Date(t0),
                Value::Date(t1),
                Value::Geom(just_geo::Geometry::Point(Point::new(first.lng, first.lat))),
                Value::Geom(just_geo::Geometry::Point(Point::new(last.lng, last.lat))),
                Value::GpsList(t.samples.clone()),
            ])
        })
        .collect()
}

/// Converts trajectories to baseline records (payload = raw GPS bytes, so
/// memory budgets see the real weight).
pub fn traj_records(trajs: &[TrajRecord]) -> Vec<just_baselines::StRecord> {
    trajs
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let (t0, t1) = t.time_span();
            just_baselines::StRecord::extent(
                i as u64,
                t.mbr(),
                t0,
                t1,
                (t.samples.len() * 24) as u32,
            )
        })
        .collect()
}

/// Deterministic query windows inside the data extent.
pub fn query_windows(n: usize, side_km: f64, seed: u64) -> Vec<Rect> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x7177_696e);
    (0..n)
        .map(|_| {
            let c = Point::new(
                rng.gen_range(CITY.min_x + 0.1..CITY.max_x - 0.1),
                rng.gen_range(CITY.min_y + 0.1..CITY.max_y - 0.1),
            );
            Rect::window_km(c, side_km)
        })
        .collect()
}

/// Deterministic query points.
pub fn query_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x7170_7473);
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(CITY.min_x + 0.1..CITY.max_x - 0.1),
                rng.gen_range(CITY.min_y + 0.1..CITY.max_y - 0.1),
            )
        })
        .collect()
}

/// Deterministic time windows of `hours` length within the Order span.
pub fn query_time_windows(n: usize, hours: i64, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x7174_696d);
    let span = 61 * DAY_MS;
    let len = hours * 3_600_000;
    (0..n)
        .map(|_| {
            let start = rng.gen_range(0..(span - len).max(1));
            (start, start + len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_are_deterministic_and_in_bounds() {
        let a = OrderDataset::generate(500, 42);
        let b = OrderDataset::generate(500, 42);
        assert_eq!(a.orders.len(), 500);
        assert_eq!(a.orders[17].point, b.orders[17].point);
        for o in &a.orders {
            assert!(CITY.contains_point(&o.point));
            assert!((0..61 * DAY_MS).contains(&o.time_ms));
        }
    }

    #[test]
    fn fraction_scales() {
        let d = OrderDataset::generate(1000, 1);
        assert_eq!(d.fraction(20).len(), 200);
        assert_eq!(d.fraction(100).len(), 1000);
    }

    #[test]
    fn trajectories_walk_smoothly() {
        let d = TrajDataset::generate(10, 200, 7);
        assert_eq!(d.total_points(), 2000);
        for t in &d.trajectories {
            // Samples are time-ordered and hops are bounded.
            for w in t.samples.windows(2) {
                assert!(w[1].time_ms > w[0].time_ms);
                let d_deg = ((w[1].lng - w[0].lng).powi(2) + (w[1].lat - w[0].lat).powi(2)).sqrt();
                assert!(d_deg < 0.001, "hop too large: {d_deg}");
            }
            // The MBR is much smaller than the city: spatial locality.
            assert!(t.mbr().width() < 0.3);
        }
    }

    #[test]
    fn synthetic_multiplies_volume() {
        let d = TrajDataset::generate(10, 50, 3);
        let s = d.synthesize(3, 3);
        assert_eq!(s.trajectories.len(), 30);
        assert_eq!(s.total_points(), 3 * d.total_points());
    }

    #[test]
    fn row_conversions_roundtrip_shapes() {
        let d = TrajDataset::generate(3, 50, 5);
        let rows = traj_rows(&d.trajectories);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].values.len(), 7);
        let recs = traj_records(&d.trajectories);
        assert_eq!(recs[0].payload_bytes, 50 * 24);
        let o = OrderDataset::generate(10, 9);
        assert_eq!(order_rows(&o.orders).len(), 10);
        assert_eq!(order_records(&o.orders).len(), 10);
    }

    #[test]
    fn query_generators_are_deterministic() {
        assert_eq!(query_windows(5, 3.0, 1), query_windows(5, 3.0, 1));
        assert_eq!(query_points(5, 1), query_points(5, 1));
        assert_eq!(query_time_windows(5, 24, 1), query_time_windows(5, 24, 1));
        for (a, b) in query_time_windows(20, 6, 2) {
            assert_eq!(b - a, 6 * 3_600_000);
        }
    }
}
