//! Measurement and reporting helpers for the figure harness.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Times one closure invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Runs `f` over each query input, returning the median latency — the
/// paper's methodology ("perform each query only once, and take the
/// median response time").
pub fn median_latency<Q>(queries: &[Q], mut f: impl FnMut(&Q)) -> Duration {
    let mut samples: Vec<Duration> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            f(q);
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples.get(samples.len() / 2).copied().unwrap_or_default()
}

/// Pretty milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1000.0)
}

/// A simple aligned text table for figure output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// A hand-rolled micro-benchmark runner (the criterion replacement — the
/// repo builds fully offline). Warms up for ~50 ms to size a batch, then
/// times batches of calls for ~300 ms and prints the mean ns/op plus
/// p50/p95/p99 of the per-batch rates from a log-scale histogram.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let warm_end = Instant::now() + Duration::from_millis(50);
    let mut warm_iters: u64 = 0;
    while Instant::now() < warm_end {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    // Aim for ~1 ms per batch so Instant granularity is negligible.
    let batch = (warm_iters / 50).max(1);
    let hist = just_obs::Histogram::detached();
    let measure_end = Instant::now() + Duration::from_millis(300);
    let mut total_ns: u128 = 0;
    let mut total_iters: u64 = 0;
    while Instant::now() < measure_end {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let ns = t0.elapsed().as_nanos();
        total_ns += ns;
        total_iters += batch;
        hist.record((ns as u64) / batch);
    }
    let s = hist.summary();
    println!(
        "{name:<42} {:>12.0} ns/op   p50={} p95={} p99={}   ({} iters)",
        total_ns as f64 / total_iters as f64,
        s.p50,
        s.p95,
        s.p99,
        total_iters
    );
}

/// A snapshot of the process-wide kvstore IO counters from the
/// [`just_obs::global`] registry.
///
/// Figure runners open many throwaway engines per phase, so per-engine
/// [`just_kvstore::IoSnapshot`]s would miss work; these counters aggregate
/// every engine in the process. Field names mirror `IoSnapshot`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsIoSnapshot {
    /// Data blocks fetched from disk.
    pub blocks_read: u64,
    /// Block reads served from the block cache.
    pub cache_hits: u64,
    /// Point reads answered by a memtable.
    pub memtable_hits: u64,
    /// SSTables pruned by their key fence without any block read.
    pub index_skips: u64,
    /// Point-get misses answered by a bloom filter without any block read.
    pub bloom_skips: u64,
    /// Memtable flushes.
    pub memtable_flushes: u64,
    /// Compactions.
    pub compactions: u64,
}

impl ObsIoSnapshot {
    /// Reads the current counter values.
    pub fn capture() -> Self {
        let obs = just_obs::global();
        let get = |name: &str| obs.counter(name).get();
        ObsIoSnapshot {
            blocks_read: get("just_kvstore_blocks_read"),
            cache_hits: get("just_kvstore_cache_hits"),
            memtable_hits: get("just_kvstore_memtable_hits"),
            index_skips: get("just_kvstore_index_skips"),
            bloom_skips: get("just_kvstore_bloom_skips"),
            memtable_flushes: get("just_kvstore_memtable_flushes"),
            compactions: get("just_kvstore_compactions"),
        }
    }

    /// Counter-wise difference `self - earlier`.
    pub fn since(&self, earlier: &ObsIoSnapshot) -> ObsIoSnapshot {
        ObsIoSnapshot {
            blocks_read: self.blocks_read - earlier.blocks_read,
            cache_hits: self.cache_hits - earlier.cache_hits,
            memtable_hits: self.memtable_hits - earlier.memtable_hits,
            index_skips: self.index_skips - earlier.index_skips,
            bloom_skips: self.bloom_skips - earlier.bloom_skips,
            memtable_flushes: self.memtable_flushes - earlier.memtable_flushes,
            compactions: self.compactions - earlier.compactions,
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"blocks_read\":{},\"cache_hits\":{},\"memtable_hits\":{},\
             \"index_skips\":{},\"bloom_skips\":{},\"memtable_flushes\":{},\
             \"compactions\":{}}}",
            self.blocks_read,
            self.cache_hits,
            self.memtable_hits,
            self.index_skips,
            self.bloom_skips,
            self.memtable_flushes,
            self.compactions
        )
    }
}

/// One completed report phase.
struct Phase {
    name: String,
    elapsed: Duration,
    io: ObsIoSnapshot,
}

/// A per-figure machine-readable report: named phases (wall time + IO
/// counter delta) plus, at serialization time, the summaries of every
/// latency histogram in the global registry.
///
/// Usage: call [`Report::phase`] at each section boundary; the previous
/// phase is closed automatically. [`Report::to_json`] / [`Report::write_to`]
/// close the last phase and serialize.
pub struct Report {
    figure: String,
    phases: Vec<Phase>,
    open: Option<(String, Instant, ObsIoSnapshot)>,
    meta: Vec<(String, String)>,
}

impl Report {
    /// An empty report for one figure.
    pub fn new(figure: &str) -> Self {
        Report {
            figure: figure.to_string(),
            phases: Vec::new(),
            open: None,
            meta: Vec::new(),
        }
    }

    /// Attaches a machine-readable fact about the run (host shape, sweep
    /// parameters) so a later regression is attributable to a config or
    /// hardware change, not guessed at. `value` is raw JSON — pass
    /// `"4"`, `"[1,2,4]"` or a pre-quoted string.
    pub fn meta_raw(&mut self, key: &str, value: impl Into<String>) {
        self.meta.push((key.to_string(), value.into()));
    }

    /// String-valued [`Report::meta_raw`] (quotes for you).
    pub fn meta_str(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), json_str(value)));
    }

    /// Starts a phase named `name`, ending the previous one (if any).
    pub fn phase(&mut self, name: &str) {
        self.close_open();
        self.open = Some((name.to_string(), Instant::now(), ObsIoSnapshot::capture()));
    }

    fn close_open(&mut self) {
        if let Some((name, started, before)) = self.open.take() {
            self.phases.push(Phase {
                name,
                elapsed: started.elapsed(),
                io: ObsIoSnapshot::capture().since(&before),
            });
        }
    }

    /// Serializes the report: figure name, phases with seconds and IO
    /// deltas, and current global histogram summaries.
    pub fn to_json(&mut self) -> String {
        self.close_open();
        let phases = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"name\":{},\"secs\":{:.6},\"io\":{}}}",
                    json_str(&p.name),
                    p.elapsed.as_secs_f64(),
                    p.io.to_json()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let histograms = just_obs::global()
            .histogram_summaries()
            .into_iter()
            .map(|(name, s)| format!("{}:{}", json_str(&name), s.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        let meta = self
            .meta
            .iter()
            .map(|(k, v)| format!("{}:{}", json_str(k), v))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"figure\":{},\"meta\":{{{}}},\"phases\":[{}],\"histograms\":{{{}}}}}",
            json_str(&self.figure),
            meta,
            phases,
            histograms
        )
    }

    /// Writes the JSON report to `dir/<figure>.json`, creating `dir`.
    pub fn write_to(&mut self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.figure));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Minimal JSON string quoting (metric and phase names are ASCII).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_samples() {
        let queries = [1, 2, 3];
        let d = median_latency(&queries, |q| {
            std::thread::sleep(Duration::from_micros(*q * 10));
        });
        assert!(d >= Duration::from_micros(10));
    }

    #[test]
    fn report_serializes_phases_and_histograms() {
        let mut r = Report::new("figX");
        r.phase("build");
        just_obs::global()
            .counter("just_kvstore_blocks_read")
            .add(3);
        just_obs::global()
            .histogram("just_bench_report_test_us")
            .record(42);
        r.phase("query");
        let json = r.to_json();
        assert!(json.contains("\"figure\":\"figX\""));
        assert!(json.contains("\"name\":\"build\""));
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("\"blocks_read\":"));
        assert!(json.contains("\"just_bench_report_test_us\":{\"count\":"));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "ms"]);
        t.row(vec!["just".into(), "1.25".into()]);
        t.row(vec!["geospark-like".into(), "10.00".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("10.00"));
    }
}
