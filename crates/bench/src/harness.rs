//! Measurement and reporting helpers for the figure harness.

use std::time::{Duration, Instant};

/// Times one closure invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Runs `f` over each query input, returning the median latency — the
/// paper's methodology ("perform each query only once, and take the
/// median response time").
pub fn median_latency<Q>(queries: &[Q], mut f: impl FnMut(&Q)) -> Duration {
    let mut samples: Vec<Duration> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            f(q);
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples.get(samples.len() / 2).copied().unwrap_or_default()
}

/// Pretty milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1000.0)
}

/// A simple aligned text table for figure output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_samples() {
        let queries = [1, 2, 3];
        let d = median_latency(&queries, |q| {
            std::thread::sleep(Duration::from_micros(*q * 10));
        });
        assert!(d >= Duration::from_micros(10));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "ms"]);
        t.row(vec!["just".into(), "1.25".into()]);
        t.row(vec!["geospark-like".into(), "10.00".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("10.00"));
    }
}
