//! The figure-regeneration harness: re-runs every table and figure of
//! the paper's evaluation at laptop scale.
//!
//! ```text
//! figures all                 # everything (the EXPERIMENTS.md run)
//! figures fig12 --scale 0.5   # one figure at half the default size
//! figures all --json out/     # also emit out/<figure>.json reports
//! ```

use just_bench::figures;
use just_bench::harness::Report;
use just_bench::BenchConfig;
use std::io::Write;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = 1.0f64;
    let mut json_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
                i += 2;
            }
            "--json" => {
                json_dir = Some(PathBuf::from(
                    args.get(i + 1)
                        .unwrap_or_else(|| usage("--json needs a directory")),
                ));
                i += 2;
            }
            other => {
                which.push(other.to_string());
                i += 1;
            }
        }
    }
    if which.is_empty() {
        usage("no figure selected");
    }
    if which.iter().any(|w| w == "all") {
        which = vec![
            "table1".into(),
            "table2".into(),
            "fig8".into(),
            "fig10".into(),
            "fig11".into(),
            "fig12".into(),
            "fig13".into(),
            "fig14".into(),
            "serve".into(),
            "durability".into(),
            "read_path".into(),
            "scan_stream".into(),
            "obs_overhead".into(),
            "exec_compile".into(),
            "join_sort".into(),
            "ingest_concurrency".into(),
            "mvcc_split".into(),
        ];
    }
    let cfg = BenchConfig::default().scaled(scale);
    let mut failed = false;
    let out = std::io::stdout();
    let mut out = out.lock();
    writeln!(
        out,
        "JUST evaluation harness — scale {scale} ({} orders, {} trajectories x {} pts)\n",
        cfg.orders, cfg.trajectories, cfg.points_per_trajectory
    )
    .unwrap();
    for w in which {
        let t0 = std::time::Instant::now();
        let mut report = Report::new(&w);
        match w.as_str() {
            "table1" => figures::tables::table1(&mut out, &mut report),
            "table2" => figures::tables::table2(&cfg, &mut out, &mut report),
            "fig8" => figures::fig8::run(&mut out, &mut report),
            "fig10" => figures::fig10::run(&cfg, &mut out, &mut report),
            "fig11" => figures::fig11::run(&cfg, &mut out, &mut report),
            "fig12" => figures::fig12::run(&cfg, &mut out, &mut report),
            "fig13" => figures::fig13::run(&cfg, &mut out, &mut report),
            "fig14" => figures::fig14::run(&cfg, &mut out, &mut report),
            "serve" => figures::serve::run(&cfg, &mut out, &mut report),
            "durability" => figures::durability::run(&cfg, &mut out, &mut report),
            "read_path" => {
                if !figures::read_path::run(&cfg, &mut out, &mut report) {
                    failed = true;
                }
            }
            "scan_stream" => {
                if !figures::scan_stream::run(&cfg, &mut out, &mut report) {
                    failed = true;
                }
            }
            "obs_overhead" => {
                if !figures::obs_overhead::run(&cfg, &mut out, &mut report) {
                    failed = true;
                }
            }
            "exec_compile" => {
                if !figures::exec_compile::run(&cfg, &mut out, &mut report) {
                    failed = true;
                }
            }
            "join_sort" => {
                if !figures::join_sort::run(&cfg, &mut out, &mut report) {
                    failed = true;
                }
            }
            "ingest_concurrency" => {
                if !figures::ingest_concurrency::run(&cfg, &mut out, &mut report) {
                    failed = true;
                }
            }
            "mvcc_split" => {
                if !figures::mvcc_split::run(&cfg, &mut out, &mut report) {
                    failed = true;
                }
            }
            other => usage(&format!("unknown figure '{other}'")),
        }
        if let Some(dir) = &json_dir {
            match report.write_to(dir) {
                Ok(path) => writeln!(out, "[{w} report: {}]", path.display()).unwrap(),
                Err(e) => eprintln!("warning: could not write {w} report: {e}"),
            }
        }
        writeln!(out, "[{w} done in {:.1}s]\n", t0.elapsed().as_secs_f64()).unwrap();
    }
    if failed {
        eprintln!("error: a figure's functional guard failed");
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: figures [all|table1|table2|fig8|fig10|fig11|fig12|fig13|fig14|serve|durability|\
         read_path|scan_stream|obs_overhead|exec_compile|join_sort|ingest_concurrency|\
         mvcc_split]... \
         [--scale X] [--json DIR]"
    );
    std::process::exit(2);
}
