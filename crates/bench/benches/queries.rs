//! End-to-end query benchmarks against a populated engine: the Criterion
//! companions to Figures 11–13 (single default parameter point each).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use just_bench::workload::{order_rows, query_points, query_windows, OrderDataset};
use just_core::{Engine, EngineConfig};
use just_geo::Point;
use just_storage::{Field, FieldType, Schema, SpatialPredicate};

fn setup() -> (Engine, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("just-bench-q-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Engine::open(&dir, EngineConfig::default()).unwrap();
    let schema = Schema::new(vec![
        Field::new("fid", FieldType::Int).primary(),
        Field::new("time", FieldType::Date),
        Field::new("geom", FieldType::Point),
    ])
    .unwrap();
    engine.create_table("orders", schema, None, None).unwrap();
    let data = OrderDataset::generate(20_000, 7);
    engine.insert("orders", &order_rows(&data.orders)).unwrap();
    engine.flush_all().unwrap();
    (engine, dir)
}

fn bench_queries(c: &mut Criterion) {
    let (engine, dir) = setup();
    let windows = query_windows(64, 3.0, 7);
    let points = query_points(64, 7);
    let mut g = c.benchmark_group("engine_queries_20k_orders");
    g.sample_size(20);
    let mut wi = 0usize;
    g.bench_function("spatial_range_3km", |b| {
        b.iter(|| {
            wi = (wi + 1) % windows.len();
            engine
                .spatial_range("orders", black_box(&windows[wi]), SpatialPredicate::Within)
                .unwrap()
        })
    });
    let mut ti = 0usize;
    g.bench_function("st_range_3km_1d", |b| {
        b.iter(|| {
            ti = (ti + 1) % windows.len();
            engine
                .st_range(
                    "orders",
                    black_box(&windows[ti]),
                    0,
                    86_400_000,
                    SpatialPredicate::Within,
                )
                .unwrap()
        })
    });
    let mut pi = 0usize;
    g.bench_function("knn_k50", |b| {
        b.iter(|| {
            pi = (pi + 1) % points.len();
            engine.knn("orders", black_box::<Point>(points[pi]), 50).unwrap()
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_queries
}
criterion_main!(benches);
