//! End-to-end query benchmarks against a populated engine: the
//! micro-bench companions to Figures 11–13 (single default parameter
//! point each).

use just_bench::harness::bench;
use just_bench::workload::{order_rows, query_points, query_windows, OrderDataset};
use just_core::{Engine, EngineConfig};
use just_storage::{Field, FieldType, Schema, SpatialPredicate};
use std::hint::black_box;

fn setup() -> (Engine, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("just-bench-q-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Engine::open(&dir, EngineConfig::default()).unwrap();
    let schema = Schema::new(vec![
        Field::new("fid", FieldType::Int).primary(),
        Field::new("time", FieldType::Date),
        Field::new("geom", FieldType::Point),
    ])
    .unwrap();
    engine.create_table("orders", schema, None, None).unwrap();
    let data = OrderDataset::generate(20_000, 7);
    engine.insert("orders", &order_rows(&data.orders)).unwrap();
    engine.flush_all().unwrap();
    (engine, dir)
}

fn main() {
    let (engine, dir) = setup();
    let windows = query_windows(64, 3.0, 7);
    let points = query_points(64, 7);
    let mut wi = 0usize;
    bench("engine_queries_20k_orders/spatial_range_3km", || {
        wi = (wi + 1) % windows.len();
        engine
            .spatial_range("orders", black_box(&windows[wi]), SpatialPredicate::Within)
            .unwrap()
    });
    let mut ti = 0usize;
    bench("engine_queries_20k_orders/st_range_3km_1d", || {
        ti = (ti + 1) % windows.len();
        engine
            .st_range(
                "orders",
                black_box(&windows[ti]),
                0,
                86_400_000,
                SpatialPredicate::Within,
            )
            .unwrap()
    });
    let mut pi = 0usize;
    bench("engine_queries_20k_orders/knn_k50", || {
        pi = (pi + 1) % points.len();
        engine.knn("orders", black_box(points[pi]), 50).unwrap()
    });
    std::fs::remove_dir_all(&dir).ok();
}
