//! Micro-benchmarks for the space-filling curves: encode throughput and
//! query-range decomposition cost for every index family, including the
//! paper's Z2T/XZ2T against the Z3/XZ3 baselines (the per-query planning
//! cost behind Figure 12).

use just_bench::harness::bench;
use just_curves::xz3::StMbr;
use just_curves::*;
use just_geo::{Point, Rect};
use std::hint::black_box;

const DAY_MS: i64 = 86_400_000;

fn bench_encode() {
    let z2 = Z2::default();
    bench("encode/z2_index", || {
        z2.index(black_box(116.397), black_box(39.916))
    });
    let z3 = Z3::with_period(TimePeriod::Day);
    bench("encode/z3_index", || {
        z3.index(
            black_box(116.397),
            black_box(39.916),
            black_box(5 * 3_600_000),
        )
    });
    let z2t = Z2t::new(TimePeriod::Day);
    bench("encode/z2t_index", || {
        z2t.index(
            black_box(116.397),
            black_box(39.916),
            black_box(5 * 3_600_000),
        )
    });
    let xz2 = Xz2::default();
    let mbr = Rect::new(116.30, 39.90, 116.45, 39.99);
    bench("encode/xz2_index", || xz2.index(black_box(&mbr)));
    let xz2t = Xz2t::new(TimePeriod::Day);
    let st = StMbr::new(mbr, 3_600_000, 5 * 3_600_000);
    bench("encode/xz2t_index", || xz2t.index(black_box(&st)));
    let xz3 = Xz3::with_period(TimePeriod::Day);
    bench("encode/xz3_index", || xz3.index(black_box(&st)));
}

fn bench_ranges() {
    let window = Rect::window_km(Point::new(116.4, 39.9), 3.0);
    let opts = RangeOptions::default();
    let z2 = Z2::default();
    bench("query_planning/z2_ranges_3km", || {
        z2.ranges(black_box(&window), &opts)
    });
    let z2t = Z2t::new(TimePeriod::Day);
    bench("query_planning/z2t_ranges_3km_12h", || {
        z2t.ranges(black_box(&window), 3_600_000, 13 * 3_600_000, &opts)
    });
    let z3 = Z3::with_period(TimePeriod::Day);
    bench("query_planning/z3_ranges_3km_12h", || {
        z3.ranges(black_box(&window), 3_600_000, 13 * 3_600_000, &opts)
    });
    let xz2t = Xz2t::new(TimePeriod::Day);
    bench("query_planning/xz2t_ranges_3km_12h", || {
        xz2t.ranges(black_box(&window), 3_600_000, 13 * 3_600_000, &opts)
    });
    let xz3 = Xz3::with_period(TimePeriod::Day);
    bench("query_planning/xz3_ranges_3km_12h", || {
        xz3.ranges(black_box(&window), 3_600_000, 13 * 3_600_000, &opts)
    });
    // Multi-day windows: Z2T replicates spatial ranges per period.
    bench("query_planning/z2t_ranges_3km_7d", || {
        z2t.ranges(black_box(&window), 0, 7 * DAY_MS, &opts)
    });
}

fn main() {
    bench_encode();
    bench_ranges();
}
