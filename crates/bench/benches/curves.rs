//! Micro-benchmarks for the space-filling curves: encode throughput and
//! query-range decomposition cost for every index family, including the
//! paper's Z2T/XZ2T against the Z3/XZ3 baselines (the per-query planning
//! cost behind Figure 12).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use just_curves::xz3::StMbr;
use just_curves::*;
use just_geo::{Point, Rect};

const DAY_MS: i64 = 86_400_000;

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    let z2 = Z2::default();
    g.bench_function("z2_index", |b| {
        b.iter(|| z2.index(black_box(116.397), black_box(39.916)))
    });
    let z3 = Z3::with_period(TimePeriod::Day);
    g.bench_function("z3_index", |b| {
        b.iter(|| z3.index(black_box(116.397), black_box(39.916), black_box(5 * 3_600_000)))
    });
    let z2t = Z2t::new(TimePeriod::Day);
    g.bench_function("z2t_index", |b| {
        b.iter(|| z2t.index(black_box(116.397), black_box(39.916), black_box(5 * 3_600_000)))
    });
    let xz2 = Xz2::default();
    let mbr = Rect::new(116.30, 39.90, 116.45, 39.99);
    g.bench_function("xz2_index", |b| b.iter(|| xz2.index(black_box(&mbr))));
    let xz2t = Xz2t::new(TimePeriod::Day);
    let st = StMbr::new(mbr, 3_600_000, 5 * 3_600_000);
    g.bench_function("xz2t_index", |b| b.iter(|| xz2t.index(black_box(&st))));
    let xz3 = Xz3::with_period(TimePeriod::Day);
    g.bench_function("xz3_index", |b| b.iter(|| xz3.index(black_box(&st))));
    g.finish();
}

fn bench_ranges(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_planning");
    let window = Rect::window_km(Point::new(116.4, 39.9), 3.0);
    let opts = RangeOptions::default();
    let z2 = Z2::default();
    g.bench_function("z2_ranges_3km", |b| {
        b.iter(|| z2.ranges(black_box(&window), &opts))
    });
    let z2t = Z2t::new(TimePeriod::Day);
    g.bench_function("z2t_ranges_3km_12h", |b| {
        b.iter(|| z2t.ranges(black_box(&window), 3_600_000, 13 * 3_600_000, &opts))
    });
    let z3 = Z3::with_period(TimePeriod::Day);
    g.bench_function("z3_ranges_3km_12h", |b| {
        b.iter(|| z3.ranges(black_box(&window), 3_600_000, 13 * 3_600_000, &opts))
    });
    let xz2t = Xz2t::new(TimePeriod::Day);
    g.bench_function("xz2t_ranges_3km_12h", |b| {
        b.iter(|| xz2t.ranges(black_box(&window), 3_600_000, 13 * 3_600_000, &opts))
    });
    let xz3 = Xz3::with_period(TimePeriod::Day);
    g.bench_function("xz3_ranges_3km_12h", |b| {
        b.iter(|| xz3.ranges(black_box(&window), 3_600_000, 13 * 3_600_000, &opts))
    });
    // Multi-day windows: Z2T replicates spatial ranges per period.
    g.bench_function("z2t_ranges_3km_7d", |b| {
        b.iter(|| z2t.ranges(black_box(&window), 0, 7 * DAY_MS, &opts))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_encode, bench_ranges
}
criterion_main!(benches);
