//! Micro-benchmarks for the compression codecs on realistic payloads:
//! the GPS-list field of a trajectory row (the paper's gzip target) and
//! generic text.

use just_bench::harness::bench;
use just_bench::TrajDataset;
use just_compress::{gps, Codec};
use std::hint::black_box;

fn payloads() -> (Vec<u8>, Vec<u8>) {
    let trajs = TrajDataset::generate(1, 1000, 7);
    let samples = &trajs.trajectories[0].samples;
    // The raw (pre-delta) 24-byte-per-sample form.
    let mut raw = Vec::with_capacity(samples.len() * 24);
    for s in samples {
        raw.extend_from_slice(&s.lng.to_le_bytes());
        raw.extend_from_slice(&s.lat.to_le_bytes());
        raw.extend_from_slice(&s.time_ms.to_le_bytes());
    }
    // The delta-encoded form the row codec actually compresses.
    let delta = gps::encode(samples);
    (raw, delta)
}

fn main() {
    let (raw, delta) = payloads();
    println!(
        "payload: {} raw bytes, {} delta-encoded bytes",
        raw.len(),
        delta.len()
    );
    bench("compress_gps_1000pts/gzip_raw", || {
        Codec::Gzip.compress(black_box(&raw))
    });
    bench("compress_gps_1000pts/zip_raw", || {
        Codec::Zip.compress(black_box(&raw))
    });
    bench("compress_gps_1000pts/gzip_delta", || {
        Codec::Gzip.compress(black_box(&delta))
    });
    let packed = Codec::Gzip.compress(&raw);
    bench("compress_gps_1000pts/gzip_decompress", || {
        Codec::decompress(black_box(&packed)).unwrap()
    });

    let trajs = TrajDataset::generate(1, 1000, 7);
    let samples = trajs.trajectories[0].samples.clone();
    bench("gps_delta_codec/encode_1000", || {
        gps::encode(black_box(&samples))
    });
    let encoded = gps::encode(&samples);
    bench("gps_delta_codec/decode_1000", || {
        gps::decode(black_box(&encoded)).unwrap()
    });
}
