//! Micro-benchmarks for the compression codecs on realistic payloads:
//! the GPS-list field of a trajectory row (the paper's gzip target) and
//! generic text.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use just_bench::TrajDataset;
use just_compress::{gps, Codec};

fn payloads() -> (Vec<u8>, Vec<u8>) {
    let trajs = TrajDataset::generate(1, 1000, 7);
    let samples = &trajs.trajectories[0].samples;
    // The raw (pre-delta) 24-byte-per-sample form.
    let mut raw = Vec::with_capacity(samples.len() * 24);
    for s in samples {
        raw.extend_from_slice(&s.lng.to_le_bytes());
        raw.extend_from_slice(&s.lat.to_le_bytes());
        raw.extend_from_slice(&s.time_ms.to_le_bytes());
    }
    // The delta-encoded form the row codec actually compresses.
    let delta = gps::encode(samples);
    (raw, delta)
}

fn bench_codecs(c: &mut Criterion) {
    let (raw, delta) = payloads();
    let mut g = c.benchmark_group("compress_gps_1000pts");
    g.throughput(Throughput::Bytes(raw.len() as u64));
    g.bench_function("gzip_raw", |b| {
        b.iter(|| Codec::Gzip.compress(black_box(&raw)))
    });
    g.bench_function("zip_raw", |b| {
        b.iter(|| Codec::Zip.compress(black_box(&raw)))
    });
    g.bench_function("gzip_delta", |b| {
        b.iter(|| Codec::Gzip.compress(black_box(&delta)))
    });
    let packed = Codec::Gzip.compress(&raw);
    g.bench_function("gzip_decompress", |b| {
        b.iter(|| Codec::decompress(black_box(&packed)).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("gps_delta_codec");
    let trajs = TrajDataset::generate(1, 1000, 7);
    let samples = trajs.trajectories[0].samples.clone();
    g.bench_function("encode_1000", |b| b.iter(|| gps::encode(black_box(&samples))));
    let encoded = gps::encode(&samples);
    g.bench_function("decode_1000", |b| {
        b.iter(|| gps::decode(black_box(&encoded)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codecs
}
criterion_main!(benches);
