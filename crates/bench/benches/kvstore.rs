//! Micro-benchmarks for the key-value substrate: point writes (the
//! "millions of updates per second" HBase property), range scans and
//! parallel multi-range scans.

use just_bench::harness::bench;
use just_kvstore::{Store, StoreOptions};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let dir = std::env::temp_dir().join(format!("just-bench-kv-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::open(&dir, StoreOptions::default()).unwrap();

    // Pre-populated table for scans.
    let table = store.create_table("scan", 4).unwrap();
    for i in 0..100_000u32 {
        table.put(i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap();
    }
    table.flush().unwrap();

    let write_table = store.create_table("writes", 4).unwrap();
    let counter = AtomicU64::new(0);
    bench("kvstore/put_64b", || {
        let i = counter.fetch_add(1, Ordering::Relaxed);
        write_table
            .put(i.to_be_bytes().to_vec(), vec![0u8; 64])
            .unwrap()
    });
    bench("kvstore/get_hit", || {
        table.get(black_box(&5000u32.to_be_bytes())).unwrap()
    });
    bench("kvstore/scan_1k_of_100k", || {
        table
            .scan(
                black_box(&10_000u32.to_be_bytes()),
                black_box(&10_999u32.to_be_bytes()),
            )
            .unwrap()
    });
    let ranges: Vec<(Vec<u8>, Vec<u8>)> = (0..16u32)
        .map(|i| {
            let s = (i * 6000).to_be_bytes().to_vec();
            let e = (i * 6000 + 500).to_be_bytes().to_vec();
            (s, e)
        })
        .collect();
    bench("kvstore/parallel_scan_16_ranges", || {
        table.scan_ranges_parallel(black_box(&ranges)).unwrap()
    });
    std::fs::remove_dir_all(&dir).ok();
}
