//! Micro-benchmarks for the key-value substrate: point writes (the
//! "millions of updates per second" HBase property), range scans and
//! parallel multi-range scans.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use just_kvstore::{Store, StoreOptions};
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_kvstore(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("just-bench-kv-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::open(&dir, StoreOptions::default()).unwrap();

    // Pre-populated table for scans.
    let table = store.create_table("scan", 4).unwrap();
    for i in 0..100_000u32 {
        table
            .put(i.to_be_bytes().to_vec(), vec![0u8; 64])
            .unwrap();
    }
    table.flush().unwrap();

    let mut g = c.benchmark_group("kvstore");
    let write_table = store.create_table("writes", 4).unwrap();
    let counter = AtomicU64::new(0);
    g.bench_function("put_64b", |b| {
        b.iter_batched(
            || counter.fetch_add(1, Ordering::Relaxed),
            |i| write_table.put(i.to_be_bytes().to_vec(), vec![0u8; 64]).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("get_hit", |b| {
        b.iter(|| table.get(black_box(&5000u32.to_be_bytes())).unwrap())
    });
    g.bench_function("scan_1k_of_100k", |b| {
        b.iter(|| {
            table
                .scan(
                    black_box(&10_000u32.to_be_bytes()),
                    black_box(&10_999u32.to_be_bytes()),
                )
                .unwrap()
        })
    });
    let ranges: Vec<(Vec<u8>, Vec<u8>)> = (0..16u32)
        .map(|i| {
            let s = (i * 6000).to_be_bytes().to_vec();
            let e = (i * 6000 + 500).to_be_bytes().to_vec();
            (s, e)
        })
        .collect();
    g.bench_function("parallel_scan_16_ranges", |b| {
        b.iter(|| table.scan_ranges_parallel(black_box(&ranges)).unwrap())
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kvstore
}
criterion_main!(benches);
