//! Randomized equivalence tests: indexed queries return exactly what a
//! brute-force scan over the same data returns (no false negatives after
//! planning, no false positives after post-filtering). Deterministically
//! seeded (the offline stand-in for proptest).

use just_geo::{Geometry, Point, Rect};
use just_kvstore::{Store, StoreOptions};
use just_obs::Rng;
use just_storage::{
    Field, FieldType, IndexKind, Row, Schema, SpatialPredicate, StTable, StorageConfig, Value,
};

const HOUR_MS: i64 = 3_600_000;
const CASES: u64 = 16;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("fid", FieldType::Int).primary(),
        Field::new("time", FieldType::Date),
        Field::new("geom", FieldType::Point),
    ])
    .unwrap()
}

#[test]
fn indexed_query_equals_brute_force() {
    let mut rng = Rng::seed_from_u64(0x5354_0001);
    for case in 0..CASES {
        let dir = std::env::temp_dir().join(format!(
            "just-storage-prop-{case}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let kind = match rng.gen_range(0u32..3) {
            0 => IndexKind::Z2t,
            1 => IndexKind::Z3,
            _ => IndexKind::Z2,
        };
        let table = StTable::create(
            &store,
            "t",
            schema(),
            StorageConfig {
                index: Some(kind),
                ..StorageConfig::default()
            },
        )
        .unwrap();

        // Last write per fid wins (the paper's update semantics).
        let n = rng.gen_range(1usize..120);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..n {
            let fid = rng.gen_range(0i64..500);
            let lng = rng.gen_range(100.0f64..130.0);
            let lat = rng.gen_range(20.0f64..50.0);
            let t = rng.gen_range(0i64..72 * HOUR_MS);
            let row = Row::new(vec![
                Value::Int(fid),
                Value::Date(t),
                Value::Geom(Geometry::Point(Point::new(lng, lat))),
            ]);
            table.insert(&row).unwrap();
            model.insert(fid, (lng, lat, t));
        }

        let qx = rng.gen_range(100.0f64..129.0);
        let qy = rng.gen_range(20.0f64..49.0);
        let qw = rng.gen_range(0.1f64..10.0);
        let qt0 = rng.gen_range(0i64..48 * HOUR_MS);
        let qdt = rng.gen_range(1i64..24 * HOUR_MS);
        let window = Rect::new(qx, qy, qx + qw, qy + qw);
        let time = (qt0, qt0 + qdt);
        let hits = table
            .query(Some(&window), Some(time), SpatialPredicate::Within)
            .unwrap();
        let mut got: Vec<i64> = hits.iter().map(|r| r.values[0].as_int().unwrap()).collect();
        got.sort_unstable();
        got.dedup();

        let mut expected: Vec<i64> = model
            .iter()
            .filter(|(_, (lng, lat, t))| {
                window.contains_point(&Point::new(*lng, *lat)) && (time.0..=time.1).contains(t)
            })
            .map(|(fid, _)| *fid)
            .collect();
        expected.sort_unstable();

        assert_eq!(got, expected, "case {case}, index kind {kind:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
