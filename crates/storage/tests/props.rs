//! Property tests: indexed queries return exactly what a brute-force scan
//! over the same data returns (no false negatives after planning, no
//! false positives after post-filtering).

use just_geo::{Geometry, Point, Rect};
use just_kvstore::{Store, StoreOptions};
use just_storage::{
    Field, FieldType, IndexKind, Row, Schema, SpatialPredicate, StTable, StorageConfig, Value,
};
use proptest::prelude::*;

const HOUR_MS: i64 = 3_600_000;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("fid", FieldType::Int).primary(),
        Field::new("time", FieldType::Date),
        Field::new("geom", FieldType::Point),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn indexed_query_equals_brute_force(
        points in proptest::collection::vec(
            (0i64..500, 100.0f64..130.0, 20.0f64..50.0, 0i64..(72 * HOUR_MS)),
            1..120
        ),
        qx in 100.0f64..129.0,
        qy in 20.0f64..49.0,
        qw in 0.1f64..10.0,
        qt0 in 0i64..(48 * HOUR_MS),
        qdt in 1i64..(24 * HOUR_MS),
        kind_pick in 0u8..3,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "just-storage-prop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let kind = match kind_pick {
            0 => IndexKind::Z2t,
            1 => IndexKind::Z3,
            _ => IndexKind::Z2,
        };
        let table = StTable::create(&store, "t", schema(), StorageConfig {
            index: Some(kind),
            ..StorageConfig::default()
        }).unwrap();

        // Last write per fid wins (the paper's update semantics).
        let mut model = std::collections::BTreeMap::new();
        for (fid, lng, lat, t) in &points {
            let row = Row::new(vec![
                Value::Int(*fid),
                Value::Date(*t),
                Value::Geom(Geometry::Point(Point::new(*lng, *lat))),
            ]);
            table.insert(&row).unwrap();
            model.insert(*fid, (*lng, *lat, *t));
        }

        let window = Rect::new(qx, qy, qx + qw, qy + qw);
        let time = (qt0, qt0 + qdt);
        let hits = table
            .query(Some(&window), Some(time), SpatialPredicate::Within)
            .unwrap();
        let mut got: Vec<i64> = hits.iter().map(|r| r.values[0].as_int().unwrap()).collect();
        got.sort_unstable();
        got.dedup();

        let mut expected: Vec<i64> = model
            .iter()
            .filter(|(_, (lng, lat, t))| {
                window.contains_point(&Point::new(*lng, *lat)) && (time.0..=time.1).contains(t)
            })
            .map(|(fid, _)| *fid)
            .collect();
        expected.sort_unstable();

        prop_assert_eq!(got, expected, "index kind {:?}", kind);
        std::fs::remove_dir_all(&dir).ok();
    }
}
