//! Indexed spatio-temporal tables: the write and read paths that tie
//! schemas, curves and the key-value store together.

use crate::index::{IndexKind, IndexStrategy, MAX_FID_BYTES};
use crate::row::Row;
use crate::schema::{FieldType, Schema};
use crate::value::Value;
use crate::{Result, StorageError};
use just_curves::{RangeOptions, TimePeriod};
use just_geo::{Geometry, LineString, Point, Rect};
use just_kvstore::{Store, Table as KvTable};
use std::sync::Arc;
use std::sync::OnceLock;

/// Cached handles to the process-wide index-selectivity metrics, resolved
/// once so the per-query cost is a few relaxed atomic adds.
struct IndexObs {
    /// Sharded key ranges produced by query planning.
    ranges_generated: just_obs::Counter,
    /// Pre-shard curve ranges from range decomposition.
    curve_ranges: just_obs::Counter,
    /// Raw keys returned by the kvstore scans (before exact filtering).
    keys_scanned: just_obs::Counter,
    /// Rows surviving decode + exact spatial/temporal filtering.
    rows_matched: just_obs::Counter,
    /// Rows rejected by the pushed-down exact predicate *before* their
    /// non-index fields were decoded (streaming path only).
    rows_pruned: just_obs::Counter,
    /// End-to-end `StTable::query` latency.
    query_latency: just_obs::Histogram,
}

fn index_obs() -> &'static IndexObs {
    static OBS: OnceLock<IndexObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let obs = just_obs::global();
        IndexObs {
            ranges_generated: obs.counter("just_index_ranges_generated"),
            curve_ranges: obs.counter("just_index_curve_ranges"),
            keys_scanned: obs.counter("just_index_keys_scanned"),
            rows_matched: obs.counter("just_index_rows_matched"),
            rows_pruned: obs.counter("just_storage_rows_pruned_pushdown"),
            query_latency: obs.histogram("just_storage_query_latency_us"),
        }
    })
}

/// Table-creation knobs.
#[derive(Debug, Clone, Copy)]
pub struct StorageConfig {
    /// Salt shards (GeoMesa's random key prefix; = parallel scan fan-out).
    pub shards: u8,
    /// Key-value regions ("region servers") per table.
    pub regions: usize,
    /// Index override; `None` picks the paper's defaults
    /// (Z2/XZ2/Z2T/XZ2T by data shape).
    pub index: Option<IndexKind>,
    /// Time-period length for temporal indexes (paper default: a day).
    pub period: TimePeriod,
    /// Query decomposition budget.
    pub range_options: RangeOptions,
    /// Maintain the record-id side table enabling updates/deletes by id.
    pub track_ids: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            shards: 4,
            regions: 4,
            index: None,
            period: TimePeriod::Day,
            range_options: RangeOptions::default(),
            track_ids: true,
        }
    }
}

/// The index-relevant digest of a record.
#[derive(Debug, Clone)]
pub struct RecordMeta {
    /// Canonical record-id bytes.
    pub fid: Vec<u8>,
    /// The indexed geometry (`None` for non-spatial tables).
    pub geom: Option<Geometry>,
    /// Earliest timestamp (ms).
    pub t_min: i64,
    /// Latest timestamp (ms).
    pub t_max: i64,
}

/// How spatial windows filter records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialPredicate {
    /// Any overlap qualifies (trajectories crossing the window).
    Intersects,
    /// The record must lie entirely inside the window (the paper's
    /// `geom WITHIN st_makeMBR(...)`).
    Within,
}

/// An indexed spatio-temporal table over the key-value store.
pub struct StTable {
    name: String,
    schema: Schema,
    strategy: IndexStrategy,
    data: Arc<KvTable>,
    /// Secondary spatial-only index (Table III: Traj stores "XZ2 on MBR"
    /// *and* "XZ2T on MBR and Timestart"). Present when the primary index
    /// is temporal; spatial-only queries (and k-NN expansion) use it so
    /// they never fan out across time periods.
    spatial: Option<(IndexStrategy, Arc<KvTable>)>,
    ids: Option<Arc<KvTable>>,
    /// Observed `[min t_min, max t_max]` over all inserts, persisted under
    /// a reserved key so open-time-window queries on temporal indexes only
    /// plan the periods that can hold data (instead of ±50 years).
    time_bounds: just_obs::sync::Mutex<Option<(i64, i64)>>,
}

/// Reserved key for the persisted time bounds. Shard bytes are always
/// `< shards <= 255`, so the `0xff` prefix never collides with data.
const TIME_BOUNDS_KEY: &[u8] = &[0xff, b't', b'b'];

impl std::fmt::Debug for StTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StTable")
            .field("name", &self.name)
            .field("index", &self.strategy.kind().name())
            .finish()
    }
}

/// Canonical id bytes: order-preserving for ints/dates, raw for strings.
pub(crate) fn fid_bytes(v: &Value) -> Result<Vec<u8>> {
    let bytes = match v {
        Value::Int(i) | Value::Date(i) => {
            ((*i as u64) ^ 0x8000_0000_0000_0000).to_be_bytes().to_vec()
        }
        Value::Str(s) => s.as_bytes().to_vec(),
        other => {
            let mut buf = Vec::new();
            other.encode(&mut buf);
            buf
        }
    };
    if bytes.is_empty() || bytes.len() > MAX_FID_BYTES {
        return Err(StorageError::SchemaMismatch(format!(
            "record id must be 1..={MAX_FID_BYTES} bytes, got {}",
            bytes.len()
        )));
    }
    Ok(bytes)
}

/// Schema-level [`StTable::meta_of`]: extracts id bytes, geometry and the
/// temporal extent. Only reads the index-relevant fields, so it works on
/// rows partially decoded by [`Row::decode_masked`] with the meta mask.
pub(crate) fn row_meta(schema: &Schema, row: &Row) -> Result<RecordMeta> {
    let fid_value = row
        .get(schema.fid_index())
        .ok_or_else(|| StorageError::SchemaMismatch("row missing id field".into()))?;
    let fid = fid_bytes(fid_value)?;

    let (geom, gps_span) = match schema.geom_index() {
        None => (None, None),
        Some(geom_idx) => {
            let geom_value = row
                .get(geom_idx)
                .ok_or_else(|| StorageError::SchemaMismatch("row missing geometry".into()))?;
            match geom_value {
                Value::Geom(g) => (Some(g.clone()), None),
                Value::GpsList(samples) if !samples.is_empty() => {
                    let pts: Vec<Point> =
                        samples.iter().map(|s| Point::new(s.lng, s.lat)).collect();
                    let span = (
                        samples.iter().map(|s| s.time_ms).min().unwrap(),
                        samples.iter().map(|s| s.time_ms).max().unwrap(),
                    );
                    (Some(Geometry::LineString(LineString::new(pts))), Some(span))
                }
                other => {
                    return Err(StorageError::SchemaMismatch(format!(
                        "geometry field holds {other:?}"
                    )))
                }
            }
        }
    };

    let t_min = schema
        .time_index()
        .and_then(|i| row.get(i))
        .and_then(|v| v.as_date());
    let t_max = schema
        .time_end_index()
        .and_then(|i| row.get(i))
        .and_then(|v| v.as_date());
    let (t_min, t_max) = match (t_min, t_max, gps_span) {
        (Some(a), Some(b), _) => (a, b.max(a)),
        (Some(a), None, _) => (a, a),
        (None, _, Some((a, b))) => (a, b),
        (None, _, None) => (0, 0),
    };
    Ok(RecordMeta {
        fid,
        geom,
        t_min,
        t_max,
    })
}

impl StTable {
    /// Creates the backing key-value tables and the index binding.
    pub fn create(
        store: &Store,
        name: &str,
        schema: Schema,
        config: StorageConfig,
    ) -> Result<StTable> {
        let data = store.create_table(&format!("{name}__data"), config.regions)?;
        let ids = if config.track_ids {
            Some(store.create_table(&format!("{name}__ids"), config.regions)?)
        } else {
            None
        };
        let sdata = if Self::decide_kind(&schema, &config).is_temporal() {
            Some(store.create_table(&format!("{name}__sdata"), config.regions)?)
        } else {
            None
        };
        Ok(Self::bind(name, schema, config, data, sdata, ids))
    }

    /// Reopens a previously created table.
    pub fn open(
        store: &Store,
        name: &str,
        schema: Schema,
        config: StorageConfig,
    ) -> Result<StTable> {
        let data = store.open_table(&format!("{name}__data"), config.regions)?;
        let ids = if config.track_ids {
            Some(store.open_table(&format!("{name}__ids"), config.regions)?)
        } else {
            None
        };
        let sdata = if Self::decide_kind(&schema, &config).is_temporal() {
            Some(store.open_table(&format!("{name}__sdata"), config.regions)?)
        } else {
            None
        };
        Ok(Self::bind(name, schema, config, data, sdata, ids))
    }

    /// The index kind a schema+config resolves to.
    fn decide_kind(schema: &Schema, config: &StorageConfig) -> IndexKind {
        if schema.geom_index().is_none() {
            return IndexKind::Id;
        }
        let point_data = schema
            .geom_index()
            .map(|i| schema.fields()[i].ty == FieldType::Point)
            .unwrap_or(true);
        let temporal = schema.time_index().is_some()
            || schema
                .geom_index()
                .map(|i| schema.fields()[i].ty == FieldType::StSeries)
                .unwrap_or(false);
        config
            .index
            .unwrap_or_else(|| IndexKind::default_for(point_data, temporal))
    }

    fn bind(
        name: &str,
        schema: Schema,
        config: StorageConfig,
        data: Arc<KvTable>,
        sdata: Option<Arc<KvTable>>,
        ids: Option<Arc<KvTable>>,
    ) -> StTable {
        let point_data = schema
            .geom_index()
            .map(|i| schema.fields()[i].ty == FieldType::Point)
            .unwrap_or(true);
        let kind = Self::decide_kind(&schema, &config);
        let strategy = IndexStrategy::new(kind, config.period, config.shards)
            .with_options(config.range_options);
        let spatial = sdata.map(|table| {
            let skind = if point_data {
                IndexKind::Z2
            } else {
                IndexKind::Xz2
            };
            (
                IndexStrategy::new(skind, config.period, config.shards)
                    .with_options(config.range_options),
                table,
            )
        });
        let time_bounds = data.get(TIME_BOUNDS_KEY).ok().flatten().and_then(|v| {
            let lo = i64::from_le_bytes(v.get(0..8)?.try_into().ok()?);
            let hi = i64::from_le_bytes(v.get(8..16)?.try_into().ok()?);
            Some((lo, hi))
        });
        StTable {
            name: name.to_string(),
            schema,
            strategy,
            data,
            spatial,
            ids,
            time_bounds: just_obs::sync::Mutex::new(time_bounds),
        }
    }

    /// Widens the persisted time bounds to include `[t_min, t_max]`.
    fn widen_time_bounds(&self, t_min: i64, t_max: i64) -> Result<()> {
        let mut bounds = self.time_bounds.lock();
        let widened = match *bounds {
            None => (t_min, t_max),
            Some((lo, hi)) => {
                if t_min >= lo && t_max <= hi {
                    return Ok(());
                }
                (lo.min(t_min), hi.max(t_max))
            }
        };
        *bounds = Some(widened);
        let mut value = Vec::with_capacity(16);
        value.extend_from_slice(&widened.0.to_le_bytes());
        value.extend_from_slice(&widened.1.to_le_bytes());
        self.data.put(TIME_BOUNDS_KEY.to_vec(), value)?;
        Ok(())
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The index strategy in use.
    pub fn strategy(&self) -> &IndexStrategy {
        &self.strategy
    }

    /// Extracts the index digest from a row: id bytes, geometry and the
    /// temporal extent (explicit `time`/`time_end` fields, else the GPS
    /// list's span).
    pub fn meta_of(&self, row: &Row) -> Result<RecordMeta> {
        row_meta(&self.schema, row)
    }

    /// Inserts a record; re-inserting an id replaces the old record even
    /// when its location or time changed (the paper's "historical data
    /// updates without index reconstruction").
    pub fn insert(&self, row: &Row) -> Result<()> {
        let meta = self.meta_of(row)?;
        self.widen_time_bounds(meta.t_min, meta.t_max)?;
        let key = self.strategy.key(&meta);
        let skey = self.spatial.as_ref().map(|(st, _)| st.key(&meta));
        if let Some(ids) = &self.ids {
            if let Some(old_key) = ids.get(&meta.fid)? {
                if old_key != key {
                    // Remove the superseded version from both indexes.
                    if let (Some((sst, stable)), Some(bytes)) =
                        (&self.spatial, self.data.get(&old_key)?)
                    {
                        let old_row = Row::decode(&self.schema, &bytes)?;
                        let old_meta = self.meta_of(&old_row)?;
                        stable.delete(sst.key(&old_meta))?;
                    }
                    self.data.delete(old_key)?;
                }
            }
            ids.put(meta.fid.clone(), key.clone())?;
        }
        let value = row.encode(&self.schema)?;
        if let (Some((_, stable)), Some(skey)) = (&self.spatial, skey) {
            stable.put(skey, value.clone())?;
        }
        self.data.put(key, value)?;
        Ok(())
    }

    /// Deletes a record by id. Returns whether it existed. Requires
    /// `track_ids`.
    pub fn delete(&self, fid: &Value) -> Result<bool> {
        let ids = self.ids.as_ref().ok_or_else(|| {
            StorageError::SchemaMismatch("delete-by-id requires track_ids".into())
        })?;
        let fid = fid_bytes(fid)?;
        match ids.get(&fid)? {
            Some(key) => {
                if let Some((sst, stable)) = &self.spatial {
                    if let Some(bytes) = self.data.get(&key)? {
                        let old_row = Row::decode(&self.schema, &bytes)?;
                        let old_meta = self.meta_of(&old_row)?;
                        stable.delete(sst.key(&old_meta))?;
                    }
                }
                self.data.delete(key)?;
                ids.delete(fid)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Point lookup by id. Requires `track_ids`.
    pub fn get(&self, fid: &Value) -> Result<Option<Row>> {
        let ids = self
            .ids
            .as_ref()
            .ok_or_else(|| StorageError::SchemaMismatch("get-by-id requires track_ids".into()))?;
        let fid = fid_bytes(fid)?;
        let Some(key) = ids.get(&fid)? else {
            return Ok(None);
        };
        let Some(bytes) = self.data.get(&key)? else {
            return Ok(None);
        };
        Ok(Some(Row::decode(&self.schema, &bytes)?))
    }

    /// Chooses the physical table and key ranges for a query window:
    /// spatial-only queries on a temporal primary go to the secondary
    /// spatial index (Table III's dual-index setting), open time windows
    /// on a temporal primary clamp to the observed data bounds. Records
    /// planning metrics. `None` means the table provably holds no data
    /// for the window (no time bounds persisted yet).
    fn plan_scan(
        &self,
        spatial: Option<&Rect>,
        time: Option<(i64, i64)>,
    ) -> Option<(crate::index::ShardedPlan, &Arc<KvTable>)> {
        let (plan, scan_table) = match (time, &self.spatial) {
            (None, Some((sst, stable))) => (sst.plan(spatial, None), stable),
            _ => {
                let plan_time = match time {
                    Some(t) => Some(t),
                    None if self.strategy.kind().is_temporal() => match *self.time_bounds.lock() {
                        Some(bounds) => Some(bounds),
                        None => return None,
                    },
                    None => None,
                };
                (self.strategy.plan(spatial, plan_time), &self.data)
            }
        };
        let obs = index_obs();
        obs.ranges_generated.add(plan.ranges.len() as u64);
        obs.curve_ranges.add(plan.curve_ranges as u64);
        Some((plan, scan_table))
    }

    /// Plans and scans a query window, returning the raw key-value
    /// entries without decoding or exact filtering. The k-NN expansion
    /// uses this to deduplicate candidates by key before paying for row
    /// decode (and GPS-list decompression).
    pub fn query_raw(
        &self,
        spatial: Option<&Rect>,
        time: Option<(i64, i64)>,
    ) -> Result<Vec<just_kvstore::KvEntry>> {
        let Some((plan, scan_table)) = self.plan_scan(spatial, time) else {
            return Ok(Vec::new());
        };
        let entries = scan_table.scan_ranges_parallel(&plan.ranges)?;
        index_obs().keys_scanned.add(entries.len() as u64);
        Ok(entries)
    }

    /// Streaming variant of [`StTable::query_raw`]: the planned ranges
    /// are scanned lazily, one bounded batch at a time. The k-NN ring
    /// expansion pulls from this and stops as soon as its candidate heap
    /// is provably complete, leaving the rest of the ring unread.
    pub fn query_raw_stream(
        &self,
        spatial: Option<&Rect>,
        time: Option<(i64, i64)>,
        opts: just_kvstore::ScanOptions,
    ) -> RawQueryStream {
        let inner = match self.plan_scan(spatial, time) {
            Some((plan, scan_table)) => scan_table.scan_ranges_stream(plan.ranges, opts),
            None => self.data.scan_ranges_stream(Vec::new(), opts),
        };
        RawQueryStream { inner }
    }

    /// Decodes one raw entry from [`StTable::query_raw`].
    pub fn decode_entry(&self, entry: &just_kvstore::KvEntry) -> Result<Row> {
        Row::decode(&self.schema, &entry.value)
    }

    /// Executes a spatial / spatio-temporal range query: plan key ranges,
    /// scan them in parallel, decode and post-filter exactly.
    pub fn query(
        &self,
        spatial: Option<&Rect>,
        time: Option<(i64, i64)>,
        predicate: SpatialPredicate,
    ) -> Result<Vec<Row>> {
        // Spatial-only queries use the secondary spatial index when the
        // primary is temporal (Table III's dual-index setting) — one set
        // of ranges instead of a fan-out across every time period; open
        // time windows on the temporal primary clamp to the observed data
        // bounds. Both live in query_raw.
        let started = std::time::Instant::now();
        let entries = self.query_raw(spatial, time)?;
        // No window, nothing to refine: skip the per-row meta extraction
        // (fid canonicalisation + geometry reconstruction) entirely.
        let filtering = spatial.is_some() || time.is_some();
        let mut rows = Vec::with_capacity(entries.len());
        for e in entries {
            let row = Row::decode(&self.schema, &e.value)?;
            if filtering {
                let meta = self.meta_of(&row)?;
                if let Some(rect) = spatial {
                    let ok = match (&meta.geom, predicate) {
                        (None, _) => false,
                        (Some(g), SpatialPredicate::Intersects) => g.intersects_rect(rect),
                        (Some(g), SpatialPredicate::Within) => g.within_rect(rect),
                    };
                    if !ok {
                        continue;
                    }
                }
                if let Some((t_min, t_max)) = time {
                    if meta.t_max < t_min || meta.t_min > t_max {
                        continue;
                    }
                }
            }
            rows.push(row);
        }
        let obs = index_obs();
        obs.rows_matched.add(rows.len() as u64);
        obs.query_latency.record_duration(started.elapsed());
        Ok(rows)
    }

    /// Streaming variant of [`StTable::query`] with predicate and
    /// projection pushdown — the refine step of the paper's query
    /// algorithm, applied per batch instead of after a full
    /// materialisation.
    ///
    /// Per entry the stream decodes only the index-relevant fields
    /// ([`Row::decode_masked`]), applies the exact spatial/temporal
    /// predicate, and pays full field decode (including GPS-list
    /// decompression) only for survivors; rejected rows count toward
    /// `just_storage_rows_pruned_pushdown`. `projection` limits which
    /// field indices of surviving rows are decoded at all — undecoded
    /// slots surface as [`Value::Null`] at full schema arity. Pass
    /// `None` to decode every field.
    ///
    /// Cancellation (via `opts.cancel` or simply dropping the stream)
    /// stops the underlying block reads mid-range.
    pub fn query_stream(
        &self,
        spatial: Option<&Rect>,
        time: Option<(i64, i64)>,
        predicate: SpatialPredicate,
        projection: Option<&[usize]>,
        opts: just_kvstore::ScanOptions,
    ) -> QueryStream {
        let inner = match self.plan_scan(spatial, time) {
            Some((plan, scan_table)) => scan_table.scan_ranges_stream(plan.ranges, opts),
            None => self.data.scan_ranges_stream(Vec::new(), opts),
        };
        self.build_stream(inner, spatial, time, predicate, projection)
    }

    /// Streaming variant of [`StTable::scan_all`]: every record, decoded
    /// batch by batch (with optional projection pushdown).
    pub fn scan_all_stream(
        &self,
        projection: Option<&[usize]>,
        opts: just_kvstore::ScanOptions,
    ) -> QueryStream {
        // Stop short of the reserved 0xff-prefixed meta keys.
        let inner = self
            .data
            .scan_ranges_stream(vec![(vec![0u8], vec![0xfeu8; 80])], opts);
        self.build_stream(inner, None, None, SpatialPredicate::Intersects, projection)
    }

    fn build_stream(
        &self,
        inner: just_kvstore::ScanStream,
        spatial: Option<&Rect>,
        time: Option<(i64, i64)>,
        predicate: SpatialPredicate,
        projection: Option<&[usize]>,
    ) -> QueryStream {
        let len = self.schema.len();
        let filtering = spatial.is_some() || time.is_some();
        let mut meta_mask = vec![false; len];
        meta_mask[self.schema.fid_index()] = true;
        if let Some(i) = self.schema.geom_index() {
            meta_mask[i] = true;
        }
        if let Some(i) = self.schema.time_index() {
            meta_mask[i] = true;
        }
        if let Some(i) = self.schema.time_end_index() {
            meta_mask[i] = true;
        }
        let fill_mask = projection.map(|idxs| {
            let mut m = vec![false; len];
            for &i in idxs {
                if i < len {
                    m[i] = true;
                }
            }
            m
        });
        // What survivors still need after the meta-phase decode.
        let post_mask = if filtering {
            let m: Vec<bool> = match &fill_mask {
                Some(fm) => fm
                    .iter()
                    .zip(&meta_mask)
                    .map(|(f, mm)| *f && !*mm)
                    .collect(),
                None => meta_mask.iter().map(|mm| !*mm).collect(),
            };
            m.iter().any(|&b| b).then_some(m)
        } else {
            None
        };
        QueryStream {
            schema: self.schema.clone(),
            inner,
            spatial: spatial.cloned(),
            time,
            predicate,
            filtering,
            meta_mask,
            fill_mask,
            post_mask,
            started: std::time::Instant::now(),
            done: false,
        }
    }

    /// Every record in the table.
    pub fn scan_all(&self) -> Result<Vec<Row>> {
        // Stop short of the reserved 0xff-prefixed meta keys.
        let entries = self.data.scan(&[0u8], &[0xfeu8; 80])?;
        entries
            .into_iter()
            .map(|e| Row::decode(&self.schema, &e.value))
            .collect()
    }

    /// Flushes memtables to disk.
    pub fn flush(&self) -> Result<()> {
        self.data.flush()?;
        if let Some((_, stable)) = &self.spatial {
            stable.flush()?;
        }
        if let Some(ids) = &self.ids {
            ids.flush()?;
        }
        Ok(())
    }

    /// Compacts the backing store.
    pub fn compact(&self) -> Result<()> {
        self.data.compact()?;
        if let Some((_, stable)) = &self.spatial {
            stable.compact()?;
        }
        if let Some(ids) = &self.ids {
            ids.compact()?;
        }
        Ok(())
    }

    /// Bytes on disk (data + id index).
    pub fn disk_size(&self) -> u64 {
        self.data.disk_size()
            + self
                .spatial
                .as_ref()
                .map(|(_, t)| t.disk_size())
                .unwrap_or(0)
            + self.ids.as_ref().map(|t| t.disk_size()).unwrap_or(0)
    }

    /// Approximate record count.
    pub fn approx_entries(&self) -> u64 {
        self.data.approx_entries()
    }
}

/// Streaming raw key-value entries from [`StTable::query_raw_stream`] —
/// no decode, no exact filtering, but full planning/`keys_scanned`
/// accounting. Self-contained: holds no borrow of the table.
pub struct RawQueryStream {
    inner: just_kvstore::ScanStream,
}

impl RawQueryStream {
    /// The next bounded batch of raw entries, or `None` when drained.
    pub fn next_batch(&mut self) -> Result<Option<Vec<just_kvstore::KvEntry>>> {
        let batch = self.inner.next_batch()?;
        if let Some(entries) = &batch {
            index_obs().keys_scanned.add(entries.len() as u64);
        }
        Ok(batch)
    }

    /// Token to stop the scan early (see
    /// [`just_kvstore::ScanStream::cancel_token`]).
    pub fn cancel_token(&self) -> just_kvstore::CancelToken {
        self.inner.cancel_token()
    }
}

/// A streaming [`StTable::query`]: refined rows, one bounded batch at a
/// time, with the exact predicate and the column projection pushed into
/// the per-batch decode. Built by [`StTable::query_stream`] /
/// [`StTable::scan_all_stream`]; self-contained (owns a schema clone),
/// so it can be threaded through sessions without borrowing the table.
pub struct QueryStream {
    schema: Schema,
    inner: just_kvstore::ScanStream,
    spatial: Option<Rect>,
    time: Option<(i64, i64)>,
    predicate: SpatialPredicate,
    /// Whether any exact predicate is active (otherwise the meta phase
    /// is skipped wholesale — the streaming twin of the `query()` fast
    /// path).
    filtering: bool,
    /// Index-relevant fields (id, geometry, time): decoded first.
    meta_mask: Vec<bool>,
    /// Projected fields (`None` = all). Undecoded slots stay `Null`.
    fill_mask: Option<Vec<bool>>,
    /// Fields survivors still need after the meta phase (`None` = the
    /// meta phase already decoded everything the projection wants).
    post_mask: Option<Vec<bool>>,
    started: std::time::Instant,
    done: bool,
}

impl QueryStream {
    /// The schema rows of this stream conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Token to stop the scan early (cloneable into the consumer).
    pub fn cancel_token(&self) -> just_kvstore::CancelToken {
        self.inner.cancel_token()
    }

    /// The next batch of refined rows, or `None` when the planned ranges
    /// are drained (or the stream was cancelled). Batches where every
    /// row was pruned are skipped, so a returned batch is non-empty.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        let obs = index_obs();
        loop {
            let Some(entries) = self.inner.next_batch()? else {
                self.done = true;
                obs.query_latency.record_duration(self.started.elapsed());
                return Ok(None);
            };
            obs.keys_scanned.add(entries.len() as u64);
            let mut rows = Vec::with_capacity(entries.len());
            for e in &entries {
                if !self.filtering {
                    rows.push(match &self.fill_mask {
                        Some(mask) => Row::decode_masked(&self.schema, &e.value, mask)?,
                        None => Row::decode(&self.schema, &e.value)?,
                    });
                    continue;
                }
                // Phase 1: decode only the index digest and filter.
                let mut row = Row::decode_masked(&self.schema, &e.value, &self.meta_mask)?;
                let meta = row_meta(&self.schema, &row)?;
                if let Some(rect) = &self.spatial {
                    let ok = match (&meta.geom, self.predicate) {
                        (None, _) => false,
                        (Some(g), SpatialPredicate::Intersects) => g.intersects_rect(rect),
                        (Some(g), SpatialPredicate::Within) => g.within_rect(rect),
                    };
                    if !ok {
                        obs.rows_pruned.inc();
                        continue;
                    }
                }
                if let Some((t_min, t_max)) = self.time {
                    if meta.t_max < t_min || meta.t_min > t_max {
                        obs.rows_pruned.inc();
                        continue;
                    }
                }
                // Phase 2: survivors pay for the rest of their fields.
                if let Some(mask) = &self.post_mask {
                    row.fill_masked(&self.schema, &e.value, mask)?;
                }
                rows.push(row);
            }
            obs.rows_matched.add(rows.len() as u64);
            if !rows.is_empty() {
                return Ok(Some(rows));
            }
            // Every entry pruned: keep pulling rather than yield an
            // empty batch.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use just_compress::gps::GpsSample;
    use just_kvstore::StoreOptions;

    const HOUR_MS: i64 = 3_600_000;
    const DAY_MS: i64 = 24 * HOUR_MS;

    fn store(name: &str) -> (Store, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "just-sttable-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        (Store::open(&dir, StoreOptions::default()).unwrap(), dir)
    }

    fn order_schema() -> Schema {
        Schema::new(vec![
            Field::new("fid", FieldType::Int).primary(),
            Field::new("time", FieldType::Date),
            Field::new("geom", FieldType::Point),
        ])
        .unwrap()
    }

    fn order_row(fid: i64, lng: f64, lat: f64, t: i64) -> Row {
        Row::new(vec![
            Value::Int(fid),
            Value::Date(t),
            Value::Geom(Geometry::Point(Point::new(lng, lat))),
        ])
    }

    #[test]
    fn point_table_defaults_to_z2t_and_queries_work() {
        let (s, dir) = store("points");
        let t = StTable::create(&s, "orders", order_schema(), StorageConfig::default()).unwrap();
        assert_eq!(t.strategy().kind(), IndexKind::Z2t);
        for i in 0..200 {
            let lng = 116.0 + (i % 20) as f64 * 0.01;
            let lat = 39.0 + (i / 20) as f64 * 0.01;
            t.insert(&order_row(i, lng, lat, (i % 48) * HOUR_MS / 2))
                .unwrap();
        }
        // Spatial window covering the first two columns, first 12 hours.
        let window = Rect::new(115.995, 38.995, 116.015, 39.095);
        let hits = t
            .query(
                Some(&window),
                Some((0, 12 * HOUR_MS)),
                SpatialPredicate::Within,
            )
            .unwrap();
        assert!(!hits.is_empty());
        for row in &hits {
            let m = t.meta_of(row).unwrap();
            assert!(m.geom.as_ref().unwrap().within_rect(&window));
            assert!(m.t_min <= 12 * HOUR_MS);
        }
        // Exhaustive check against a full scan.
        let brute: usize = t
            .scan_all()
            .unwrap()
            .iter()
            .filter(|r| {
                let m = t.meta_of(r).unwrap();
                m.geom.as_ref().unwrap().within_rect(&window) && m.t_min <= 12 * HOUR_MS
            })
            .count();
        assert_eq!(hits.len(), brute);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn query_stream_matches_materializing_query() {
        let (s, dir) = store("stream-eq");
        let t = StTable::create(&s, "orders", order_schema(), StorageConfig::default()).unwrap();
        for i in 0..300 {
            let lng = 116.0 + (i % 20) as f64 * 0.01;
            let lat = 39.0 + (i / 20) as f64 * 0.01;
            t.insert(&order_row(i, lng, lat, (i % 48) * HOUR_MS / 2))
                .unwrap();
        }
        t.flush().unwrap();
        let window = Rect::new(115.995, 38.995, 116.055, 39.095);
        let time = Some((0, 12 * HOUR_MS));
        let expected = t
            .query(Some(&window), time, SpatialPredicate::Within)
            .unwrap();
        let mut stream = t.query_stream(
            Some(&window),
            time,
            SpatialPredicate::Within,
            None,
            just_kvstore::ScanOptions {
                batch_rows: 16,
                ..Default::default()
            },
        );
        let mut streamed = Vec::new();
        while let Some(batch) = stream.next_batch().unwrap() {
            assert!(!batch.is_empty(), "returned batches are non-empty");
            streamed.extend(batch);
        }
        assert!(!expected.is_empty());
        assert_eq!(streamed, expected);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn query_stream_projection_skips_decode_and_keeps_arity() {
        let (s, dir) = store("stream-proj");
        let t = StTable::create(&s, "orders", order_schema(), StorageConfig::default()).unwrap();
        for i in 0..50 {
            t.insert(&order_row(i, 116.0 + i as f64 * 0.001, 39.0, i * HOUR_MS))
                .unwrap();
        }
        // Project only `fid` (index 0): no predicate, so `time` (1) and
        // `geom` (2) must surface as Null — never decoded.
        let mut stream = t.scan_all_stream(Some(&[0]), just_kvstore::ScanOptions::default());
        let mut n = 0;
        while let Some(batch) = stream.next_batch().unwrap() {
            for row in batch {
                assert_eq!(row.values.len(), 3, "full schema arity");
                assert!(matches!(row.values[0], Value::Int(_)));
                assert!(row.values[1].is_null());
                assert!(row.values[2].is_null());
                n += 1;
            }
        }
        assert_eq!(n, 50);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn query_stream_counts_pruned_rows() {
        let (s, dir) = store("stream-prune");
        let t = StTable::create(&s, "orders", order_schema(), StorageConfig::default()).unwrap();
        // All rows share one curve cell neighbourhood, but only one is
        // inside the exact window — the rest are false positives the
        // refine step must prune (and count).
        for i in 0..20 {
            t.insert(&order_row(i, 116.0 + i as f64 * 0.0001, 39.0, 0))
                .unwrap();
        }
        let tight = Rect::new(115.99995, 38.9999, 116.00005, 39.0001);
        let before = index_obs().rows_pruned.get();
        let mut stream = t.query_stream(
            Some(&tight),
            None,
            SpatialPredicate::Within,
            None,
            just_kvstore::ScanOptions::default(),
        );
        let mut hits = Vec::new();
        while let Some(batch) = stream.next_batch().unwrap() {
            hits.extend(batch);
        }
        assert_eq!(hits.len(), 1);
        assert!(
            index_obs().rows_pruned.get() > before,
            "pushdown pruning must be counted"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn update_moves_record_to_new_location() {
        let (s, dir) = store("update");
        let t = StTable::create(&s, "o", order_schema(), StorageConfig::default()).unwrap();
        t.insert(&order_row(1, 116.4, 39.9, HOUR_MS)).unwrap();
        // Historical update: same id, different place & time.
        t.insert(&order_row(1, 121.5, 31.2, 3 * DAY_MS)).unwrap();

        let beijing = Rect::new(116.0, 39.0, 117.0, 40.0);
        let shanghai = Rect::new(121.0, 31.0, 122.0, 32.0);
        assert!(t
            .query(Some(&beijing), None, SpatialPredicate::Within)
            .unwrap()
            .is_empty());
        let hits = t
            .query(Some(&shanghai), None, SpatialPredicate::Within)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(
            t.get(&Value::Int(1)).unwrap().unwrap().values[0],
            Value::Int(1)
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn delete_removes_from_queries() {
        let (s, dir) = store("delete");
        let t = StTable::create(&s, "o", order_schema(), StorageConfig::default()).unwrap();
        t.insert(&order_row(1, 116.4, 39.9, HOUR_MS)).unwrap();
        assert!(t.delete(&Value::Int(1)).unwrap());
        assert!(!t.delete(&Value::Int(1)).unwrap());
        assert!(t
            .query(None, None, SpatialPredicate::Intersects)
            .unwrap()
            .is_empty());
        assert_eq!(t.get(&Value::Int(1)).unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn trajectory_plugin_roundtrip_with_xz2t() {
        let (s, dir) = store("traj");
        let t =
            StTable::create(&s, "traj", Schema::trajectory(), StorageConfig::default()).unwrap();
        assert_eq!(t.strategy().kind(), IndexKind::Xz2t);

        let samples: Vec<GpsSample> = (0..300)
            .map(|i| GpsSample {
                lng: 116.30 + i as f64 * 0.0005,
                lat: 39.90 + (i % 7) as f64 * 0.0001,
                time_ms: 2 * HOUR_MS + i as i64 * 10_000,
            })
            .collect();
        let mbr = {
            let mut r = Rect::empty();
            for p in &samples {
                r.expand_point(&Point::new(p.lng, p.lat));
            }
            r
        };
        let row = Row::new(vec![
            Value::Str("lorry-1".into()),
            Value::Geom(Geometry::Rect(mbr)),
            Value::Date(samples.first().unwrap().time_ms),
            Value::Date(samples.last().unwrap().time_ms),
            Value::Geom(Geometry::Point(Point::new(samples[0].lng, samples[0].lat))),
            Value::Geom(Geometry::Point(Point::new(
                samples.last().unwrap().lng,
                samples.last().unwrap().lat,
            ))),
            Value::GpsList(samples),
        ]);
        t.insert(&row).unwrap();
        t.flush().unwrap();

        let window = Rect::new(116.30, 39.89, 116.35, 39.95);
        let hits = t
            .query(
                Some(&window),
                Some((0, DAY_MS)),
                SpatialPredicate::Intersects,
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].values[6].as_gps_list().unwrap().len(),
            300,
            "compressed GPS list survives storage"
        );
        // A disjoint window misses.
        let far = Rect::new(100.0, 20.0, 101.0, 21.0);
        assert!(t
            .query(Some(&far), Some((0, DAY_MS)), SpatialPredicate::Intersects)
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn meta_extraction_uses_gps_span_without_date_fields() {
        let (s, dir) = store("metagps");
        let schema = Schema::new(vec![
            Field::new("id", FieldType::Str).primary(),
            Field::new("gps", FieldType::StSeries),
        ])
        .unwrap();
        let t = StTable::create(&s, "g", schema, StorageConfig::default()).unwrap();
        let row = Row::new(vec![
            Value::Str("x".into()),
            Value::GpsList(vec![
                GpsSample {
                    lng: 1.0,
                    lat: 2.0,
                    time_ms: 500,
                },
                GpsSample {
                    lng: 1.1,
                    lat: 2.1,
                    time_ms: 1500,
                },
            ]),
        ]);
        let meta = t.meta_of(&row).unwrap();
        assert_eq!((meta.t_min, meta.t_max), (500, 1500));
        assert!(matches!(meta.geom, Some(Geometry::LineString(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fid_bytes_preserve_int_order() {
        let a = fid_bytes(&Value::Int(-5)).unwrap();
        let b = fid_bytes(&Value::Int(0)).unwrap();
        let c = fid_bytes(&Value::Int(7)).unwrap();
        assert!(a < b && b < c);
        assert!(fid_bytes(&Value::Str("x".repeat(100))).is_err());
        assert!(fid_bytes(&Value::Str(String::new())).is_err());
    }
}
