//! Index strategies: from records to byte keys, and from query windows to
//! byte-key scan ranges.
//!
//! Key layouts (all integers big-endian so byte order = numeric order):
//!
//! ```text
//! Z2 / XZ2    : [shard u8][code u64][fid bytes]
//! Z3 / XZ3   /
//! Z2T / XZ2T  : [shard u8][period u32 (sign-flipped)][code u64][fid bytes]
//! ```
//!
//! The shard byte reproduces GeoMesa's salted-key load balancing: records
//! spread over `shards` buckets (= region servers), and every logical
//! curve range fans out into one byte range per shard, scanned in
//! parallel.

use crate::sttable::RecordMeta;
use just_curves::xz3::StMbr;
use just_curves::{RangeOptions, TimePeriod, Xz2, Xz2t, Xz3, Z2t, Z2, Z3};
use just_geo::Rect;

/// Which index to build — the `geomesa.indices.enabled` hint of the
/// paper's `USERDATA` example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Z-order over points (spatial only).
    Z2,
    /// Z-order over points + time (GeoMesa native).
    Z3,
    /// XZ-order over extents (spatial only).
    Xz2,
    /// XZ-order over extents + time (GeoMesa native).
    Xz3,
    /// The paper's Z2T (Section IV-B).
    Z2t,
    /// The paper's XZ2T (Section IV-C).
    Xz2t,
    /// Record-id (attribute) index for non-spatial tables — the
    /// "Attribute Indexing" box of the paper's Figure 1. Keys carry only
    /// the shard and the record id; queries scan.
    Id,
}

impl IndexKind {
    /// Parses the `USERDATA` names (`z2`, `z3`, `xz2`, `xz3`, `z2t`,
    /// `xz2t`).
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "z2" => IndexKind::Z2,
            "z3" => IndexKind::Z3,
            "xz2" => IndexKind::Xz2,
            "xz3" => IndexKind::Xz3,
            "z2t" => IndexKind::Z2t,
            "xz2t" => IndexKind::Xz2t,
            "id" | "attribute" => IndexKind::Id,
            _ => return None,
        })
    }

    /// Whether keys carry a time-period prefix.
    pub fn is_temporal(self) -> bool {
        !matches!(self, IndexKind::Z2 | IndexKind::Xz2 | IndexKind::Id)
    }

    /// The default index for a table: Z2/XZ2 for spatial-only data,
    /// Z2T/XZ2T when a time field exists (Section V-C: "JUST builds a Z2T
    /// index (for point-based data) or XZ2T index (for non-point-based
    /// data) ... by default").
    pub fn default_for(point_data: bool, temporal: bool) -> IndexKind {
        match (point_data, temporal) {
            (true, false) => IndexKind::Z2,
            (false, false) => IndexKind::Xz2,
            (true, true) => IndexKind::Z2t,
            (false, true) => IndexKind::Xz2t,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::Z2 => "z2",
            IndexKind::Z3 => "z3",
            IndexKind::Xz2 => "xz2",
            IndexKind::Xz3 => "xz3",
            IndexKind::Z2t => "z2t",
            IndexKind::Xz2t => "xz2t",
            IndexKind::Id => "id",
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The scan plan for one query: byte ranges over the key-value table.
#[derive(Debug, Clone)]
pub struct ShardedPlan {
    /// Inclusive byte ranges, one per (curve range × shard).
    pub ranges: Vec<(Vec<u8>, Vec<u8>)>,
    /// Logical curve ranges before shard fan-out.
    pub curve_ranges: usize,
}

/// A fully configured index: kind + period + resolution + sharding.
#[derive(Debug, Clone, Copy)]
pub struct IndexStrategy {
    kind: IndexKind,
    period: TimePeriod,
    shards: u8,
    opts: RangeOptions,
}

/// Maximum record-id length embeddable in keys; bounded so range end keys
/// (padded with `0xff`) always compare greater than any real key.
pub(crate) const MAX_FID_BYTES: usize = 48;
const END_PAD: [u8; 64] = [0xff; 64];

impl IndexStrategy {
    /// Creates a strategy. `shards` must be at least 1.
    pub fn new(kind: IndexKind, period: TimePeriod, shards: u8) -> Self {
        IndexStrategy {
            kind,
            period,
            shards: shards.max(1),
            opts: RangeOptions::default(),
        }
    }

    /// Overrides the query-decomposition options.
    pub fn with_options(mut self, opts: RangeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The index kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// The time period for temporal kinds.
    pub fn period(&self) -> TimePeriod {
        self.period
    }

    /// Number of salt shards.
    pub fn shards(&self) -> u8 {
        self.shards
    }

    fn shard_of(&self, fid: &[u8]) -> u8 {
        // FNV-1a over the record id: stable and uniform enough for salting.
        let mut h = 0xcbf29ce484222325u64;
        for &b in fid {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % u64::from(self.shards)) as u8
    }

    /// Sign-flipped period so negative periods sort before positive ones.
    fn period_bytes(period: i32) -> [u8; 4] {
        ((period as u32) ^ 0x8000_0000).to_be_bytes()
    }

    /// Builds the storage key for a record. Spatial kinds require the
    /// record to carry a geometry.
    pub fn key(&self, meta: &RecordMeta) -> Vec<u8> {
        if self.kind == IndexKind::Id {
            let mut key = Vec::with_capacity(1 + meta.fid.len());
            key.push(self.shard_of(&meta.fid));
            key.extend_from_slice(&meta.fid);
            return key;
        }
        let geom = meta
            .geom
            .as_ref()
            .expect("spatial index over a record without geometry");
        let mbr = geom.mbr();
        let rep = geom.representative_point();
        let (period, code): (Option<i32>, u64) = match self.kind {
            IndexKind::Z2 => (None, Z2::default().index(rep.x, rep.y)),
            IndexKind::Xz2 => (None, Xz2::default().index(&mbr)),
            IndexKind::Z3 => {
                let (p, c) = Z3::with_period(self.period).index(rep.x, rep.y, meta.t_min);
                (Some(p), c)
            }
            IndexKind::Xz3 => {
                let (p, c) =
                    Xz3::with_period(self.period).index(&StMbr::new(mbr, meta.t_min, meta.t_max));
                (Some(p), c)
            }
            IndexKind::Z2t => {
                let (p, c) = Z2t::new(self.period).index(rep.x, rep.y, meta.t_min);
                (Some(p), c)
            }
            IndexKind::Xz2t => {
                let (p, c) = Xz2t::new(self.period).index(&StMbr::new(mbr, meta.t_min, meta.t_max));
                (Some(p), c)
            }
            IndexKind::Id => unreachable!("handled above"),
        };
        let mut key = Vec::with_capacity(13 + meta.fid.len());
        key.push(self.shard_of(&meta.fid));
        if let Some(p) = period {
            key.extend_from_slice(&Self::period_bytes(p));
        }
        key.extend_from_slice(&code.to_be_bytes());
        key.extend_from_slice(&meta.fid);
        key
    }

    /// Plans the byte-key scan ranges for a query window. `spatial` =
    /// `None` means "everywhere"; `time` = `None` means "any time".
    pub fn plan(&self, spatial: Option<&Rect>, time: Option<(i64, i64)>) -> ShardedPlan {
        let world = just_geo::WORLD;
        let rect = spatial.unwrap_or(&world);
        // Temporal indexes need a time window; an open one spans every
        // period seen in practice (clamped to ±50 years around epoch for
        // planning purposes).
        const FIFTY_YEARS_MS: i64 = 50 * 365 * 86_400_000;
        let (t_min, t_max) = time.unwrap_or((-FIFTY_YEARS_MS, FIFTY_YEARS_MS));

        if self.kind == IndexKind::Id {
            // One full-shard scan per shard; filtering happens on decode.
            let mut ranges = Vec::with_capacity(self.shards as usize);
            for shard in 0..self.shards {
                let start = vec![shard];
                let mut end = vec![shard];
                end.extend_from_slice(&END_PAD);
                ranges.push((start, end));
            }
            return ShardedPlan {
                ranges,
                curve_ranges: 1,
            };
        }
        let mut curve: Vec<(Option<i32>, u64, u64)> = Vec::new();
        match self.kind {
            IndexKind::Z2 => {
                for r in Z2::default().ranges(rect, &self.opts) {
                    curve.push((None, r.lo, r.hi));
                }
            }
            IndexKind::Xz2 => {
                for r in Xz2::default().ranges(rect, &self.opts) {
                    curve.push((None, r.lo, r.hi));
                }
            }
            IndexKind::Z3 => {
                for pr in Z3::with_period(self.period).ranges(rect, t_min, t_max, &self.opts) {
                    curve.push((Some(pr.period), pr.range.lo, pr.range.hi));
                }
            }
            IndexKind::Xz3 => {
                for pr in Xz3::with_period(self.period).ranges(rect, t_min, t_max, &self.opts) {
                    curve.push((Some(pr.period), pr.range.lo, pr.range.hi));
                }
            }
            IndexKind::Z2t => {
                for pr in Z2t::new(self.period).ranges(rect, t_min, t_max, &self.opts) {
                    curve.push((Some(pr.period), pr.range.lo, pr.range.hi));
                }
            }
            IndexKind::Xz2t => {
                for pr in Xz2t::new(self.period).ranges(rect, t_min, t_max, &self.opts) {
                    curve.push((Some(pr.period), pr.range.lo, pr.range.hi));
                }
            }
            IndexKind::Id => unreachable!("handled above"),
        }

        let mut ranges = Vec::with_capacity(curve.len() * self.shards as usize);
        for shard in 0..self.shards {
            for (period, lo, hi) in &curve {
                let mut start = Vec::with_capacity(13);
                let mut end = Vec::with_capacity(13 + END_PAD.len());
                start.push(shard);
                end.push(shard);
                if let Some(p) = period {
                    let pb = Self::period_bytes(*p);
                    start.extend_from_slice(&pb);
                    end.extend_from_slice(&pb);
                }
                start.extend_from_slice(&lo.to_be_bytes());
                end.extend_from_slice(&hi.to_be_bytes());
                end.extend_from_slice(&END_PAD);
                ranges.push((start, end));
            }
        }
        ShardedPlan {
            ranges,
            curve_ranges: curve.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use just_geo::{Geometry, Point};

    const HOUR_MS: i64 = 3_600_000;
    const DAY_MS: i64 = 24 * HOUR_MS;

    fn meta(fid: &str, lng: f64, lat: f64, t: i64) -> RecordMeta {
        RecordMeta {
            fid: fid.as_bytes().to_vec(),
            geom: Some(Geometry::Point(Point::new(lng, lat))),
            t_min: t,
            t_max: t,
        }
    }

    fn covered(plan: &ShardedPlan, key: &[u8]) -> bool {
        plan.ranges
            .iter()
            .any(|(s, e)| s.as_slice() <= key && key <= e.as_slice())
    }

    #[test]
    fn kind_parsing_and_defaults() {
        assert_eq!(IndexKind::parse("Z2T"), Some(IndexKind::Z2t));
        assert_eq!(IndexKind::parse("bogus"), None);
        assert_eq!(IndexKind::default_for(true, true), IndexKind::Z2t);
        assert_eq!(IndexKind::default_for(false, true), IndexKind::Xz2t);
        assert_eq!(IndexKind::default_for(true, false), IndexKind::Z2);
        assert_eq!(IndexKind::default_for(false, false), IndexKind::Xz2);
    }

    #[test]
    fn keys_are_found_by_plans_for_every_kind() {
        for kind in [
            IndexKind::Z2,
            IndexKind::Z3,
            IndexKind::Xz2,
            IndexKind::Xz3,
            IndexKind::Z2t,
            IndexKind::Xz2t,
        ] {
            let idx = IndexStrategy::new(kind, TimePeriod::Day, 4);
            let m = meta("traj-42", 116.4, 39.9, 5 * HOUR_MS);
            let key = idx.key(&m);
            let window = Rect::new(116.3, 39.8, 116.5, 40.0);
            let plan = idx.plan(Some(&window), Some((4 * HOUR_MS, 6 * HOUR_MS)));
            assert!(covered(&plan, &key), "{kind}: key escaped plan");
        }
    }

    #[test]
    fn temporal_kinds_prune_other_days() {
        for kind in [IndexKind::Z3, IndexKind::Z2t] {
            let idx = IndexStrategy::new(kind, TimePeriod::Day, 4);
            let m = meta("id", 116.4, 39.9, 3 * DAY_MS + 5 * HOUR_MS);
            let key = idx.key(&m);
            let window = Rect::new(116.3, 39.8, 116.5, 40.0);
            let plan = idx.plan(Some(&window), Some((4 * HOUR_MS, 6 * HOUR_MS)));
            assert!(!covered(&plan, &key), "{kind}: wrong-day key matched");
        }
    }

    #[test]
    fn spatial_kinds_prune_far_points() {
        for kind in [IndexKind::Z2, IndexKind::Z2t, IndexKind::Xz2t] {
            let idx = IndexStrategy::new(kind, TimePeriod::Day, 4);
            let m = meta("id", -120.0, -40.0, 5 * HOUR_MS);
            let key = idx.key(&m);
            let window = Rect::new(116.3, 39.8, 116.5, 40.0);
            let plan = idx.plan(Some(&window), Some((0, DAY_MS)));
            assert!(!covered(&plan, &key), "{kind}: far key matched");
        }
    }

    #[test]
    fn negative_periods_sort_before_positive() {
        let a = IndexStrategy::period_bytes(-3);
        let b = IndexStrategy::period_bytes(-1);
        let c = IndexStrategy::period_bytes(0);
        let d = IndexStrategy::period_bytes(7);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn shards_spread_and_stay_stable() {
        let idx = IndexStrategy::new(IndexKind::Z2, TimePeriod::Day, 8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            let m = meta(&format!("id-{i}"), 116.4, 39.9, 0);
            let key = idx.key(&m);
            seen.insert(key[0]);
            assert!(key[0] < 8);
            // Same record always lands on the same shard.
            assert_eq!(idx.key(&m)[0], key[0]);
        }
        assert!(seen.len() >= 4, "poor shard spread: {seen:?}");
    }

    #[test]
    fn plan_fans_out_per_shard() {
        let idx = IndexStrategy::new(IndexKind::Z2, TimePeriod::Day, 8);
        let plan = idx.plan(Some(&Rect::new(116.0, 39.0, 116.5, 39.5)), None);
        assert_eq!(plan.ranges.len(), plan.curve_ranges * 8);
    }

    #[test]
    fn open_spatial_query_plans_whole_world() {
        let idx = IndexStrategy::new(IndexKind::Z2, TimePeriod::Day, 2);
        let m = meta("anywhere", -120.0, -40.0, 0);
        let key = idx.key(&m);
        let plan = idx.plan(None, None);
        assert!(covered(&plan, &key));
    }
}
