//! The spatio-temporal storage layer: this repository's GeoMesa.
//!
//! It binds the space-filling-curve indexes of `just-curves` to the
//! ordered key-value store of `just-kvstore`:
//!
//! * [`Value`] / [`FieldType`] / [`Schema`] — the type system of JUST
//!   tables, including the paper's `st_series` GPS-list type,
//! * [`Row`] — the binary row codec with per-field compression
//!   (`compress=gzip|zip`, Section IV-D),
//! * [`IndexStrategy`] — key generation and query planning for
//!   Z2/Z3/XZ2/XZ3 and the paper's Z2T/XZ2T, with shard salting for
//!   region-server load balance,
//! * [`StTable`] — an indexed table: insert/update/delete records, run
//!   spatial and spatio-temporal range scans with exact post-filtering.
//!
//! Queries come in two shapes. [`StTable::query`] materializes every
//! matching row. [`StTable::query_stream`] returns a [`QueryStream`] that
//! yields bounded batches and pushes the work down: the exact
//! spatial/temporal predicate is checked against a cheap partial decode
//! (rejected rows are never fully decoded — counted by
//! `just_storage_rows_pruned_pushdown`), a column projection skips
//! decoding unwanted fields, and dropping or cancelling the stream stops
//! the underlying block reads mid-scan.

#![deny(missing_docs)]

mod index;
mod row;
mod schema;
mod sttable;
mod value;

pub use index::{IndexKind, IndexStrategy, ShardedPlan};
pub use row::Row;
pub use schema::{Field, FieldType, Schema};
pub use sttable::{
    QueryStream, RawQueryStream, RecordMeta, SpatialPredicate, StTable, StorageConfig,
};
pub use value::Value;

// The streaming query API ([`StTable::query_stream`]) hands out kvstore
// scan types directly; re-export them so downstream crates (ql, core)
// need not depend on just-kvstore for plumbing alone.
pub use just_kvstore::{CancelToken, KvEntry, ScanOptions};

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying key-value store failure.
    Kv(just_kvstore::KvError),
    /// A row did not match its schema.
    SchemaMismatch(String),
    /// Stored bytes failed to decode.
    Corrupt(String),
    /// Compression container failure.
    Compress(just_compress::CompressError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Kv(e) => write!(f, "kv error: {e}"),
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt row: {m}"),
            StorageError::Compress(e) => write!(f, "compression error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<just_kvstore::KvError> for StorageError {
    fn from(e: just_kvstore::KvError) -> Self {
        StorageError::Kv(e)
    }
}

impl From<just_compress::CompressError> for StorageError {
    fn from(e: just_compress::CompressError) -> Self {
        StorageError::Compress(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StorageError>;
