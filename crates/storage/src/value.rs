//! Cell values and their binary encoding.

use just_compress::gps::{self, GpsSample};
use just_compress::varint;
use just_geo::{Geometry, GeometryType, LineString, Point, Polygon, Rect};
use std::fmt;

/// One cell of a row: the dynamic value type of JUST tables.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (covers the paper's `integer` column type).
    Int(i64),
    /// 64-bit float (`double`).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Timestamp, milliseconds since the Unix epoch (`date`).
    Date(i64),
    /// Any geometry (`point`, `linestring`, `polygon`).
    Geom(Geometry),
    /// A GPS point list — the paper's `st_series` type, the big field
    /// that benefits from compression.
    GpsList(Vec<GpsSample>),
}

impl Value {
    /// Type tag used on the wire.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Date(_) => 5,
            Value::Geom(_) => 6,
            Value::GpsList(_) => 7,
        }
    }

    /// Serialises the value (tag + payload) onto `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            Value::Null => {}
            Value::Bool(b) => out.push(u8::from(*b)),
            Value::Int(v) => varint::write_i64(out, *v),
            Value::Float(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::Str(s) => varint::write_bytes(out, s.as_bytes()),
            Value::Date(v) => varint::write_i64(out, *v),
            Value::Geom(g) => encode_geometry(g, out),
            Value::GpsList(samples) => {
                let bytes = gps::encode(samples);
                varint::write_bytes(out, &bytes);
            }
        }
    }

    /// Deserialises one value, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<Value> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            0 => Value::Null,
            1 => {
                let b = *buf.get(*pos)?;
                *pos += 1;
                Value::Bool(b != 0)
            }
            2 => Value::Int(varint::read_i64(buf, pos)?),
            3 => {
                let bytes: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
                *pos += 8;
                Value::Float(f64::from_le_bytes(bytes))
            }
            4 => {
                let bytes = varint::read_bytes(buf, pos)?;
                Value::Str(String::from_utf8(bytes.to_vec()).ok()?)
            }
            5 => Value::Date(varint::read_i64(buf, pos)?),
            6 => Value::Geom(decode_geometry(buf, pos)?),
            7 => {
                let bytes = varint::read_bytes(buf, pos)?;
                Value::GpsList(gps::decode(bytes)?)
            }
            8 => {
                // Raw fixed-width GPS list (uncompressed storage).
                let n = varint::read_u64(buf, pos)? as usize;
                if n > buf.len() / 24 {
                    return None;
                }
                let mut samples = Vec::with_capacity(n);
                for _ in 0..n {
                    let lng: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
                    let lat: [u8; 8] = buf.get(*pos + 8..*pos + 16)?.try_into().ok()?;
                    let t: [u8; 8] = buf.get(*pos + 16..*pos + 24)?.try_into().ok()?;
                    *pos += 24;
                    samples.push(GpsSample {
                        lng: f64::from_le_bytes(lng),
                        lat: f64::from_le_bytes(lat),
                        time_ms: i64::from_le_bytes(t),
                    });
                }
                Value::GpsList(samples)
            }
            _ => return None,
        })
    }

    /// The value as an integer, when it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float, coercing integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a timestamp (accepting raw ints as ms).
    pub fn as_date(&self) -> Option<i64> {
        match self {
            Value::Date(v) => Some(*v),
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a geometry.
    pub fn as_geom(&self) -> Option<&Geometry> {
        match self {
            Value::Geom(g) => Some(g),
            _ => None,
        }
    }

    /// The value as a GPS list.
    pub fn as_gps_list(&self) -> Option<&[GpsSample]> {
        match self {
            Value::GpsList(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(v) => write!(f, "{v}"),
            Value::Geom(g) => write!(f, "{}", g.to_wkt()),
            Value::GpsList(s) => write!(f, "<gps list: {} samples>", s.len()),
        }
    }
}

fn encode_point(p: &Point, out: &mut Vec<u8>) {
    out.extend_from_slice(&p.x.to_le_bytes());
    out.extend_from_slice(&p.y.to_le_bytes());
}

fn decode_point(buf: &[u8], pos: &mut usize) -> Option<Point> {
    let x: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
    *pos += 8;
    let y: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
    *pos += 8;
    Some(Point::new(f64::from_le_bytes(x), f64::from_le_bytes(y)))
}

/// Encodes a GPS list in the raw fixed-width layout (24 bytes/sample,
/// tag 8) — what the storage layer writes for `st_series` fields *without*
/// a `compress=` option, so the paper's JUSTnc variant pays raw size.
pub(crate) fn encode_gps_raw(samples: &[gps::GpsSample], out: &mut Vec<u8>) {
    out.push(8);
    varint::write_u64(out, samples.len() as u64);
    for s in samples {
        out.extend_from_slice(&s.lng.to_le_bytes());
        out.extend_from_slice(&s.lat.to_le_bytes());
        out.extend_from_slice(&s.time_ms.to_le_bytes());
    }
}

/// Compact WKB-like geometry encoding: type code, then coordinates.
pub(crate) fn encode_geometry(g: &Geometry, out: &mut Vec<u8>) {
    out.push(g.geometry_type().code());
    match g {
        Geometry::Point(p) => encode_point(p, out),
        Geometry::LineString(l) => {
            varint::write_u64(out, l.points.len() as u64);
            for p in &l.points {
                encode_point(p, out);
            }
        }
        Geometry::Polygon(p) => {
            varint::write_u64(out, p.exterior.len() as u64);
            for p in &p.exterior {
                encode_point(p, out);
            }
        }
        Geometry::Rect(r) => {
            encode_point(&Point::new(r.min_x, r.min_y), out);
            encode_point(&Point::new(r.max_x, r.max_y), out);
        }
    }
}

pub(crate) fn decode_geometry(buf: &[u8], pos: &mut usize) -> Option<Geometry> {
    let code = *buf.get(*pos)?;
    *pos += 1;
    let ty = GeometryType::from_code(code)?;
    Some(match ty {
        GeometryType::Point => Geometry::Point(decode_point(buf, pos)?),
        GeometryType::LineString => {
            let n = varint::read_u64(buf, pos)? as usize;
            if n > buf.len() {
                return None;
            }
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                pts.push(decode_point(buf, pos)?);
            }
            Geometry::LineString(LineString::new(pts))
        }
        GeometryType::Polygon => {
            let n = varint::read_u64(buf, pos)? as usize;
            if n > buf.len() {
                return None;
            }
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                pts.push(decode_point(buf, pos)?);
            }
            Geometry::Polygon(Polygon::new(pts))
        }
        GeometryType::Rect => {
            let a = decode_point(buf, pos)?;
            let b = decode_point(buf, pos)?;
            Geometry::Rect(Rect::new(a.x, a.y, b.x, b.y))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        let back = Value::decode(&buf, &mut pos).unwrap();
        assert_eq!(&back, v);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::Int(-42));
        roundtrip(&Value::Int(i64::MAX));
        roundtrip(&Value::Float(std::f64::consts::PI));
        roundtrip(&Value::Float(f64::NEG_INFINITY));
        roundtrip(&Value::Str("héllo wörld".to_string()));
        roundtrip(&Value::Str(String::new()));
        roundtrip(&Value::Date(1_600_000_000_000));
    }

    #[test]
    fn geometry_roundtrips() {
        roundtrip(&Value::Geom(Geometry::Point(Point::new(116.4, 39.9))));
        roundtrip(&Value::Geom(Geometry::LineString(LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
        ]))));
        roundtrip(&Value::Geom(Geometry::Polygon(Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]))));
        roundtrip(&Value::Geom(Geometry::Rect(Rect::new(0.0, 0.0, 2.0, 2.0))));
    }

    #[test]
    fn gps_list_roundtrip_quantizes() {
        let samples = vec![
            GpsSample {
                lng: 116.4000001,
                lat: 39.9,
                time_ms: 1000,
            },
            GpsSample {
                lng: 116.4000002,
                lat: 39.9000001,
                time_ms: 2000,
            },
        ];
        let mut buf = Vec::new();
        Value::GpsList(samples.clone()).encode(&mut buf);
        let mut pos = 0;
        match Value::decode(&buf, &mut pos).unwrap() {
            Value::GpsList(back) => {
                assert_eq!(back.len(), 2);
                assert!((back[0].lng - samples[0].lng).abs() < 1e-7);
                assert_eq!(back[1].time_ms, 2000);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn accessors_and_coercions() {
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Int(5).as_date(), Some(5));
        assert_eq!(Value::Float(1.5).as_int(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Value::decode(&[99], &mut 0), None);
        assert_eq!(Value::decode(&[], &mut 0), None);
        // Truncated float.
        assert_eq!(Value::decode(&[3, 1, 2], &mut 0), None);
        // Invalid UTF-8 string.
        let mut buf = vec![4];
        varint::write_bytes(&mut buf, &[0xff, 0xfe]);
        assert_eq!(Value::decode(&buf, &mut 0), None);
    }
}
