//! The binary row codec, with per-field compression.
//!
//! Wire format: for each field, one flag byte (`0` = raw, `1` =
//! compressed) followed by a length-prefixed payload. Compressed payloads
//! are [`just_compress::Codec`] containers wrapping the encoded value, so
//! the codec is self-describing and historical rows survive later
//! `compress=` changes.
//!
//! Because every field is length-prefixed, a reader can *skip* a field
//! for the cost of one varint — without decompressing or decoding it.
//! [`Row::decode_masked`] exploits this for projection/predicate
//! pushdown: the streaming query path first decodes only the
//! index-relevant fields, filters, and pays full decode (including GPS
//! decompression) only for surviving rows.

use crate::schema::{Field, Schema};
use crate::value::Value;
use crate::{Result, StorageError};
use just_compress::{varint, Codec};

/// One record: values aligned with a [`Schema`]'s fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The cell values, in field order.
    pub values: Vec<Value>,
}

impl Row {
    /// Wraps values as a row.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Cell accessor.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Serialises the row under `schema`, applying each field's codec.
    pub fn encode(&self, schema: &Schema) -> Result<Vec<u8>> {
        schema.check_row(&self.values)?;
        let mut out = Vec::with_capacity(64);
        for (field, value) in schema.fields().iter().zip(&self.values) {
            let mut payload = Vec::new();
            match (value, field.compress) {
                // Uncompressed st_series fields store raw fixed-width
                // samples — the whole point of `compress=gzip` is escaping
                // this raw cost (Fig 10b's JUSTnc line).
                (Value::GpsList(samples), Codec::None) => {
                    crate::value::encode_gps_raw(samples, &mut payload)
                }
                _ => value.encode(&mut payload),
            }
            if field.compress != Codec::None && !value.is_null() {
                let packed = field.compress.compress(&payload);
                out.push(1);
                varint::write_bytes(&mut out, &packed);
            } else {
                out.push(0);
                varint::write_bytes(&mut out, &payload);
            }
        }
        Ok(out)
    }

    /// Walks one encoded field. When `want` is false, the payload is
    /// skipped for the cost of the flag byte + length varint — no
    /// decompression, no value decode — and `Ok(None)` is returned.
    fn decode_field(
        field: &Field,
        buf: &[u8],
        pos: &mut usize,
        want: bool,
    ) -> Result<Option<Value>> {
        let flag = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::Corrupt(format!("row truncated at '{}'", field.name)))?;
        *pos += 1;
        let payload = varint::read_bytes(buf, pos)
            .ok_or_else(|| StorageError::Corrupt(format!("bad payload for '{}'", field.name)))?;
        if !want {
            return Ok(None);
        }
        let decoded_storage;
        let raw: &[u8] = match flag {
            0 => payload,
            1 => {
                decoded_storage = Codec::decompress(payload)?;
                &decoded_storage
            }
            other => {
                return Err(StorageError::Corrupt(format!(
                    "unknown field flag {other} for '{}'",
                    field.name
                )))
            }
        };
        let mut vpos = 0usize;
        let value = Value::decode(raw, &mut vpos)
            .ok_or_else(|| StorageError::Corrupt(format!("bad value for '{}'", field.name)))?;
        Ok(Some(value))
    }

    /// Deserialises a row written by [`Row::encode`].
    pub fn decode(schema: &Schema, buf: &[u8]) -> Result<Row> {
        let mut pos = 0usize;
        let mut values = Vec::with_capacity(schema.len());
        for field in schema.fields() {
            let value = Self::decode_field(field, buf, &mut pos, true)?.expect("wanted");
            values.push(value);
        }
        if pos != buf.len() {
            return Err(StorageError::Corrupt("trailing bytes after row".into()));
        }
        Ok(Row { values })
    }

    /// Partially deserialises a row: fields where `mask[i]` is true are
    /// decoded, the rest are skipped (flag byte + length varint only, no
    /// decompression) and surface as [`Value::Null`]. The result keeps
    /// full schema arity, so positional access stays valid.
    ///
    /// This is the projection-pushdown primitive: a query that only needs
    /// the id and geometry of a trajectory row never pays for gunzipping
    /// its GPS list.
    pub fn decode_masked(schema: &Schema, buf: &[u8], mask: &[bool]) -> Result<Row> {
        let mut pos = 0usize;
        let mut values = Vec::with_capacity(schema.len());
        for (i, field) in schema.fields().iter().enumerate() {
            let want = mask.get(i).copied().unwrap_or(false);
            match Self::decode_field(field, buf, &mut pos, want)? {
                Some(value) => values.push(value),
                None => values.push(Value::Null),
            }
        }
        if pos != buf.len() {
            return Err(StorageError::Corrupt("trailing bytes after row".into()));
        }
        Ok(Row { values })
    }

    /// Decodes the fields where `mask[i]` is true out of `buf` into this
    /// row, overwriting those slots. The second half of a two-phase
    /// decode: after [`Row::decode_masked`] + predicate check, fill in
    /// the remaining projected fields of surviving rows only.
    pub fn fill_masked(&mut self, schema: &Schema, buf: &[u8], mask: &[bool]) -> Result<()> {
        let mut pos = 0usize;
        for (i, field) in schema.fields().iter().enumerate() {
            let want = mask.get(i).copied().unwrap_or(false);
            if let Some(value) = Self::decode_field(field, buf, &mut pos, want)? {
                if let Some(slot) = self.values.get_mut(i) {
                    *slot = value;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, FieldType};
    use just_compress::gps::GpsSample;
    use just_geo::{Geometry, Point};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("fid", FieldType::Int).primary(),
            Field::new("name", FieldType::Str),
            Field::new("time", FieldType::Date),
            Field::new("geom", FieldType::Point),
            Field::new("gps", FieldType::StSeries).compressed(Codec::Gzip),
        ])
        .unwrap()
    }

    fn gps_walk(n: usize) -> Vec<GpsSample> {
        (0..n)
            .map(|i| GpsSample {
                lng: 116.4 + i as f64 * 1e-5,
                lat: 39.9 + i as f64 * 5e-6,
                time_ms: 1_600_000_000_000 + i as i64 * 1000,
            })
            .collect()
    }

    fn row(n_gps: usize) -> Row {
        Row::new(vec![
            Value::Int(7),
            Value::Str("courier-7".into()),
            Value::Date(1_600_000_000_000),
            Value::Geom(Geometry::Point(Point::new(116.4, 39.9))),
            Value::GpsList(gps_walk(n_gps)),
        ])
    }

    #[test]
    fn roundtrip_with_compression() {
        let s = schema();
        let r = row(500);
        let bytes = r.encode(&s).unwrap();
        let back = Row::decode(&s, &bytes).unwrap();
        assert_eq!(back.values[0], Value::Int(7));
        assert_eq!(back.values[1].as_str(), Some("courier-7"));
        assert_eq!(back.values[4].as_gps_list().unwrap().len(), 500);
    }

    #[test]
    fn compression_shrinks_big_gps_fields() {
        let s = schema();
        let compressed = row(1000).encode(&s).unwrap();
        // Same schema minus the codec.
        let mut fields = s.fields().to_vec();
        fields[4].compress = Codec::None;
        let s_nc = Schema::new(fields).unwrap();
        let raw = row(1000).encode(&s_nc).unwrap();
        assert!(
            compressed.len() < raw.len() / 2,
            "compressed {} vs raw {}",
            compressed.len(),
            raw.len()
        );
        // And the uncompressed-schema reader still decodes the compressed
        // row (self-describing containers).
        let back = Row::decode(&s_nc, &compressed).unwrap();
        assert_eq!(back.values[4].as_gps_list().unwrap().len(), 1000);
    }

    #[test]
    fn null_fields_skip_compression() {
        let s = schema();
        let r = Row::new(vec![
            Value::Int(1),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ]);
        let bytes = r.encode(&s).unwrap();
        let back = Row::decode(&s, &bytes).unwrap();
        assert!(back.values[4].is_null());
    }

    #[test]
    fn masked_decode_skips_unwanted_fields() {
        let s = schema();
        let bytes = row(200).encode(&s).unwrap();
        // Only fid + geom: the compressed GPS list is never touched.
        let mask = vec![true, false, false, true, false];
        let partial = Row::decode_masked(&s, &bytes, &mask).unwrap();
        assert_eq!(partial.values[0], Value::Int(7));
        assert!(partial.values[1].is_null());
        assert!(partial.values[4].is_null());
        assert!(!partial.values[3].is_null());
        // Fill the rest in a second phase and match a full decode.
        let mut filled = partial.clone();
        let rest = vec![false, true, true, false, true];
        filled.fill_masked(&s, &bytes, &rest).unwrap();
        assert_eq!(filled, Row::decode(&s, &bytes).unwrap());
        // Truncated input still errors through the skipping path.
        let mut short = bytes.clone();
        short.truncate(short.len() - 3);
        assert!(Row::decode_masked(&s, &short, &mask).is_err());
    }

    #[test]
    fn schema_mismatch_rejected_on_encode() {
        let s = schema();
        let bad = Row::new(vec![Value::Int(1)]);
        assert!(bad.encode(&s).is_err());
    }

    #[test]
    fn corrupt_bytes_rejected_on_decode() {
        let s = schema();
        let mut bytes = row(10).encode(&s).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(Row::decode(&s, &bytes).is_err());
        let mut bytes2 = row(10).encode(&s).unwrap();
        bytes2.push(0);
        assert!(Row::decode(&s, &bytes2).is_err());
        assert!(Row::decode(&s, &[]).is_err());
    }
}
