//! Table schemas: field names, types, primary keys, per-field compression.

use crate::value::Value;
use just_compress::Codec;
use just_geo::GeometryType;

/// Column types of JUST tables, mirroring the `CREATE TABLE` type names of
/// the paper's JustQL example (`integer`, `string`, `date`, `point`,
/// `st_series`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Timestamp (ms since epoch).
    Date,
    /// A point geometry.
    Point,
    /// A polyline geometry.
    LineString,
    /// A polygon geometry.
    Polygon,
    /// Any geometry.
    Geometry,
    /// A timestamped GPS point list (the paper's `st_series`).
    StSeries,
}

impl FieldType {
    /// Parses the JustQL type names.
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => FieldType::Bool,
            "int" | "integer" | "long" | "bigint" => FieldType::Int,
            "float" | "double" | "real" => FieldType::Float,
            "string" | "varchar" | "text" => FieldType::Str,
            "date" | "timestamp" | "datetime" => FieldType::Date,
            "point" => FieldType::Point,
            "linestring" => FieldType::LineString,
            "polygon" => FieldType::Polygon,
            "geometry" => FieldType::Geometry,
            "st_series" => FieldType::StSeries,
            _ => return None,
        })
    }

    /// Whether this is a geometry-bearing type.
    pub fn is_spatial(self) -> bool {
        matches!(
            self,
            FieldType::Point
                | FieldType::LineString
                | FieldType::Polygon
                | FieldType::Geometry
                | FieldType::StSeries
        )
    }

    /// Whether `v` inhabits this type (NULL inhabits all).
    pub fn accepts(self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => true,
            (FieldType::Bool, Value::Bool(_)) => true,
            (FieldType::Int, Value::Int(_)) => true,
            (FieldType::Float, Value::Float(_) | Value::Int(_)) => true,
            (FieldType::Str, Value::Str(_)) => true,
            (FieldType::Date, Value::Date(_) | Value::Int(_)) => true,
            (FieldType::Point, Value::Geom(g)) => g.geometry_type() == GeometryType::Point,
            (FieldType::LineString, Value::Geom(g)) => {
                g.geometry_type() == GeometryType::LineString
            }
            (FieldType::Polygon, Value::Geom(g)) => matches!(
                g.geometry_type(),
                GeometryType::Polygon | GeometryType::Rect
            ),
            (FieldType::Geometry, Value::Geom(_)) => true,
            (FieldType::StSeries, Value::GpsList(_)) => true,
            _ => false,
        }
    }

    /// The JustQL name of the type.
    pub fn name(self) -> &'static str {
        match self {
            FieldType::Bool => "boolean",
            FieldType::Int => "integer",
            FieldType::Float => "double",
            FieldType::Str => "string",
            FieldType::Date => "date",
            FieldType::Point => "point",
            FieldType::LineString => "linestring",
            FieldType::Polygon => "polygon",
            FieldType::Geometry => "geometry",
            FieldType::StSeries => "st_series",
        }
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: FieldType,
    /// Whether this column is (part of) the primary key / record id.
    pub primary_key: bool,
    /// Per-field compression, the paper's `compress=gzip|zip` option.
    pub compress: Codec,
    /// Spatial reference id (informational; 4326 everywhere).
    pub srid: u32,
}

impl Field {
    /// A plain field.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        Field {
            name: name.into(),
            ty,
            primary_key: false,
            compress: Codec::None,
            srid: 4326,
        }
    }

    /// Marks the field as primary key.
    pub fn primary(mut self) -> Self {
        self.primary_key = true;
        self
    }

    /// Sets the compression codec.
    pub fn compressed(mut self, codec: Codec) -> Self {
        self.compress = codec;
        self
    }
}

/// An ordered list of fields plus the designated roles the indexes need.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    fields: Vec<Field>,
    fid: usize,
    geom: Option<usize>,
    time: Option<usize>,
    time_end: Option<usize>,
}

impl Schema {
    /// Builds a schema, auto-detecting roles: the first `primary key`
    /// field is the record id (defaults to field 0), the first spatial
    /// field is the geometry, and the first/second `date` fields are the
    /// start/end times.
    pub fn new(fields: Vec<Field>) -> crate::Result<Self> {
        if fields.is_empty() {
            return Err(crate::StorageError::SchemaMismatch(
                "schema needs at least one field".into(),
            ));
        }
        let mut names = std::collections::HashSet::new();
        for f in &fields {
            if !names.insert(f.name.clone()) {
                return Err(crate::StorageError::SchemaMismatch(format!(
                    "duplicate field name '{}'",
                    f.name
                )));
            }
        }
        let fid = fields.iter().position(|f| f.primary_key).unwrap_or(0);
        let geom = fields.iter().position(|f| f.ty.is_spatial());
        let mut dates = fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.ty == FieldType::Date)
            .map(|(i, _)| i);
        let time = dates.next();
        let time_end = dates.next();
        Ok(Schema {
            fields,
            fid,
            geom,
            time,
            time_end,
        })
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the record-id field.
    pub fn fid_index(&self) -> usize {
        self.fid
    }

    /// Index of the geometry field, if any.
    pub fn geom_index(&self) -> Option<usize> {
        self.geom
    }

    /// Index of the (start) time field, if any.
    pub fn time_index(&self) -> Option<usize> {
        self.time
    }

    /// Index of the end-time field, if any (plugin tables with explicit
    /// `time_start`/`time_end` columns, like trajectory).
    pub fn time_end_index(&self) -> Option<usize> {
        self.time_end
    }

    /// Finds a field index by name (case-insensitive, like SQL).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Validates a row against the schema.
    pub fn check_row(&self, values: &[Value]) -> crate::Result<()> {
        if values.len() != self.fields.len() {
            return Err(crate::StorageError::SchemaMismatch(format!(
                "row has {} values, schema has {} fields",
                values.len(),
                self.fields.len()
            )));
        }
        for (f, v) in self.fields.iter().zip(values) {
            if !f.ty.accepts(v) {
                return Err(crate::StorageError::SchemaMismatch(format!(
                    "value {v:?} does not fit field '{}' of type {}",
                    f.name,
                    f.ty.name()
                )));
            }
            if f.primary_key && v.is_null() {
                return Err(crate::StorageError::SchemaMismatch(format!(
                    "primary key field '{}' is NULL",
                    f.name
                )));
            }
        }
        Ok(())
    }

    /// The predefined **trajectory plugin table** schema of Figure 6:
    /// MBR, start/end points, start/end times and the compressed GPS list.
    pub fn trajectory() -> Schema {
        Schema::new(vec![
            Field::new("oid", FieldType::Str).primary(),
            Field::new("mbr", FieldType::Polygon),
            Field::new("time_start", FieldType::Date),
            Field::new("time_end", FieldType::Date),
            Field::new("point_start", FieldType::Point),
            Field::new("point_end", FieldType::Point),
            Field::new("gps_list", FieldType::StSeries).compressed(Codec::Gzip),
        ])
        .expect("trajectory schema is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parsing() {
        assert_eq!(FieldType::parse("Integer"), Some(FieldType::Int));
        assert_eq!(FieldType::parse("ST_SERIES"), Some(FieldType::StSeries));
        assert_eq!(FieldType::parse("blob"), None);
    }

    #[test]
    fn role_detection() {
        let s = Schema::new(vec![
            Field::new("fid", FieldType::Int).primary(),
            Field::new("name", FieldType::Str),
            Field::new("time", FieldType::Date),
            Field::new("geom", FieldType::Point),
        ])
        .unwrap();
        assert_eq!(s.fid_index(), 0);
        assert_eq!(s.time_index(), Some(2));
        assert_eq!(s.geom_index(), Some(3));
        assert_eq!(s.time_end_index(), None);
        assert_eq!(s.index_of("GEOM"), Some(3));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn trajectory_plugin_schema() {
        let s = Schema::trajectory();
        assert_eq!(s.fid_index(), 0);
        assert_eq!(s.geom_index(), Some(1), "MBR is the indexed geometry");
        assert_eq!(s.time_index(), Some(2));
        assert_eq!(s.time_end_index(), Some(3));
        let gps = &s.fields()[s.index_of("gps_list").unwrap()];
        assert_eq!(gps.compress, Codec::Gzip);
    }

    #[test]
    fn row_validation() {
        let s = Schema::new(vec![
            Field::new("fid", FieldType::Int).primary(),
            Field::new("geom", FieldType::Point),
        ])
        .unwrap();
        let p = Value::Geom(just_geo::Geometry::Point(just_geo::Point::new(1.0, 2.0)));
        assert!(s.check_row(&[Value::Int(1), p.clone()]).is_ok());
        // Wrong arity.
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        // Wrong type.
        assert!(s.check_row(&[Value::Str("x".into()), p.clone()]).is_err());
        // NULL primary key.
        assert!(s.check_row(&[Value::Null, p]).is_err());
        // NULL is fine elsewhere.
        assert!(s.check_row(&[Value::Int(1), Value::Null]).is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(Schema::new(vec![
            Field::new("a", FieldType::Int),
            Field::new("a", FieldType::Str),
        ])
        .is_err());
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn float_accepts_int_coercion() {
        assert!(FieldType::Float.accepts(&Value::Int(3)));
        assert!(FieldType::Date.accepts(&Value::Int(1_000)));
        assert!(!FieldType::Int.accepts(&Value::Float(3.0)));
    }
}
