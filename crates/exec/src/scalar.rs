//! The scalar value-semantics kernel: SQL truthiness, numeric coercion,
//! comparison and the arithmetic / comparison / spatial binary operators
//! over [`Value`].
//!
//! This is the *single* definition of JustQL's dynamic-value semantics:
//! the row-at-a-time interpreter in `just-ql` and the vectorized VM in
//! this crate both call these kernels, so compiled and interpreted
//! execution agree on every NULL rule, coercion and error message by
//! construction (the compiled-vs-interpreted parity property test in
//! `just-ql` locks this in).

use crate::ExecError;
use just_geo::Geometry;
use just_storage::Value;
use std::cmp::Ordering;

/// Arithmetic operators (`+ - * / %`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// Comparison operators (`= != < <= > >=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl ArithOp {
    /// The operator's SQL spelling (used in program listings).
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

impl CmpOp {
    /// The operator's SQL spelling (used in program listings).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Whether `ord` satisfies the comparison.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// SQL truthiness: non-zero / non-empty / true. NULL is false.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Null => false,
        Value::Str(s) => !s.is_empty(),
        _ => true,
    }
}

/// Numeric coercion: ints, floats, dates, and numeric-looking strings
/// (CSV loading, filters).
pub fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Date(d) => Some(*d as f64),
        Value::Str(s) => s.trim().parse().ok(),
        _ => None,
    }
}

/// Total-ordering comparison with numeric coercion (predicates, ORDER BY,
/// MIN/MAX).
pub fn compare(l: &Value, r: &Value) -> Result<Ordering, ExecError> {
    match (l, r) {
        (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
        (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
        (Value::Null, Value::Null) => Ok(Ordering::Equal),
        (Value::Null, _) => Ok(Ordering::Less),
        (_, Value::Null) => Ok(Ordering::Greater),
        _ => {
            let (a, b) = (
                numeric(l).ok_or_else(|| ExecError(format!("cannot compare {l:?}")))?,
                numeric(r).ok_or_else(|| ExecError(format!("cannot compare {r:?}")))?,
            );
            Ok(a.partial_cmp(&b).unwrap_or(Ordering::Equal))
        }
    }
}

/// Applies an arithmetic operator. NULL propagates; integer arithmetic
/// stays integral (with wrapping overflow); everything else coerces to
/// float.
pub fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value, ExecError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return arith_int(op, *a, *b);
    }
    let (a, b) = (
        numeric(l).ok_or_else(|| ExecError(format!("non-numeric {l:?}")))?,
        numeric(r).ok_or_else(|| ExecError(format!("non-numeric {r:?}")))?,
    );
    Ok(Value::Float(match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => a / b,
        ArithOp::Mod => a % b,
    }))
}

/// The integer-specialized arithmetic kernel (the `arith.int` opcode's
/// fast path once both operands are verified `Int`).
pub fn arith_int(op: ArithOp, a: i64, b: i64) -> Result<Value, ExecError> {
    Ok(match op {
        ArithOp::Add => Value::Int(a.wrapping_add(b)),
        ArithOp::Sub => Value::Int(a.wrapping_sub(b)),
        ArithOp::Mul => Value::Int(a.wrapping_mul(b)),
        ArithOp::Div => {
            if b == 0 {
                return Err(ExecError("division by zero".into()));
            }
            Value::Int(a / b)
        }
        ArithOp::Mod => {
            if b == 0 {
                return Err(ExecError("division by zero".into()));
            }
            Value::Int(a % b)
        }
    })
}

/// Applies a comparison operator. Any NULL operand compares false.
pub fn cmp(op: CmpOp, l: &Value, r: &Value) -> Result<Value, ExecError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Bool(false));
    }
    Ok(Value::Bool(op.matches(compare(l, r)?)))
}

/// `geom WITHIN target`: containment of `l` in `r`'s bounding rectangle.
pub fn within(l: &Value, r: &Value) -> Result<Value, ExecError> {
    let (g, target) = match (l, r) {
        (Value::Geom(g), Value::Geom(t)) => (g, t),
        _ => return Err(ExecError("WITHIN needs two geometries".into())),
    };
    let rect = match target {
        Geometry::Rect(r) => *r,
        other => other.mbr(),
    };
    Ok(Value::Bool(g.within_rect(&rect)))
}

/// Arithmetic negation (`-expr`). NULL propagates.
pub fn neg(v: &Value) -> Result<Value, ExecError> {
    match v {
        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
        Value::Float(f) => Ok(Value::Float(-f)),
        Value::Null => Ok(Value::Null),
        other => Err(ExecError(format!("cannot negate {other:?}"))),
    }
}

/// Logical `NOT`. NULL propagates (three-valued logic's unknown).
pub fn logical_not(v: &Value) -> Result<Value, ExecError> {
    match v {
        Value::Null => Ok(Value::Null),
        other => Ok(Value::Bool(!truthy(other))),
    }
}

/// `expr BETWEEN lo AND hi` — both bound comparisons are evaluated
/// eagerly, exactly like the row interpreter (so a non-comparable upper
/// bound errors even when the lower bound already failed).
pub fn between(v: &Value, lo: &Value, hi: &Value) -> Result<Value, ExecError> {
    let ge = cmp(CmpOp::Ge, v, lo)?;
    let le = cmp(CmpOp::Le, v, hi)?;
    Ok(Value::Bool(truthy(&ge) && truthy(&le)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_semantics() {
        assert_eq!(
            arith(ArithOp::Add, &Value::Null, &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert_eq!(
            cmp(CmpOp::Eq, &Value::Null, &Value::Null).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(logical_not(&Value::Null).unwrap(), Value::Null);
        assert_eq!(neg(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn int_arith_stays_integral_and_guards_zero() {
        assert_eq!(
            arith(ArithOp::Mul, &Value::Int(52), &Value::Int(9)).unwrap(),
            Value::Int(468)
        );
        assert!(arith(ArithOp::Div, &Value::Int(1), &Value::Int(0)).is_err());
        assert_eq!(
            arith(ArithOp::Div, &Value::Float(1.0), &Value::Int(4)).unwrap(),
            Value::Float(0.25)
        );
    }

    #[test]
    fn string_numeric_coercion() {
        assert_eq!(
            cmp(CmpOp::Eq, &Value::Str("42".into()), &Value::Int(42)).unwrap(),
            Value::Bool(true)
        );
        assert!(cmp(CmpOp::Lt, &Value::Str("abc".into()), &Value::Int(1)).is_err());
    }

    #[test]
    fn between_is_eager() {
        // Upper bound is non-comparable: must error even though the lower
        // comparison already settles the answer.
        let bad = Value::Geom(Geometry::Point(just_geo::Point::new(0.0, 0.0)));
        assert!(between(&Value::Int(5), &Value::Int(9), &bad).is_err());
    }
}
