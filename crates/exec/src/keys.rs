//! Order-preserving ("memcmp-able") key normalization and the total
//! value order shared by every sort path.
//!
//! The interpreted sort used to compare boxed [`Value`]s through the
//! coercing [`scalar::compare`](crate::scalar::compare) kernel and
//! swallow its errors (`unwrap_or(Equal)`), which made the order of
//! incomparable values nondeterministic. This module defines the one
//! total order JustQL sorts by — used verbatim by the interpreted
//! comparator, the key-normalized sort, and the TOP-K heap:
//!
//! - **NULLs first**, then values grouped by a cross-type rank:
//!   booleans < numerics < strings < serialized blobs (geometries, GPS
//!   lists). Incomparable pairs no longer tie randomly; they order by
//!   rank.
//! - **Numerics** (`Int`, `Float`, `Date`) compare in one numeric space
//!   via an order-preserving `f64` bit transform — exactly the coercion
//!   [`scalar::compare`](crate::scalar::compare) applies — with
//!   `-0.0 == 0.0` and `NaN` sorting after `+inf`.
//! - **Strings** compare bytewise (UTF-8 lexicographic, as before).
//! - **Geometries / GPS lists** order by their serialized bytes:
//!   arbitrary but fixed.
//!
//! [`encode_key`] lowers a value into bytes whose plain `memcmp` order
//! equals [`total_compare`] — the hot comparator of the normalized sort
//! and the TOP-K heap is a byte compare, with no `Value` dispatch.
//! Multi-key encodings concatenate; each segment is prefix-free (fixed
//! width, or `0x00`-escaped with a `00 00` terminator), so the first
//! differing byte always falls inside the first differing key.
//! Descending keys complement every segment byte, which reverses the
//! byte order without breaking prefix-freeness.

use just_storage::Value;
use std::cmp::Ordering;

/// Rank bytes double as the encoded segment's leading tag.
const RANK_NULL: u8 = 0x00;
const RANK_BOOL: u8 = 0x01;
const RANK_NUM: u8 = 0x02;
const RANK_STR: u8 = 0x03;
const RANK_BYTES: u8 = 0x04;

/// The value's cross-type rank (NULLs first).
fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => RANK_NULL,
        Value::Bool(_) => RANK_BOOL,
        Value::Int(_) | Value::Float(_) | Value::Date(_) => RANK_NUM,
        Value::Str(_) => RANK_STR,
        Value::Geom(_) | Value::GpsList(_) => RANK_BYTES,
    }
}

/// Maps a numeric value onto `u64` such that unsigned integer order
/// equals numeric order: IEEE-754 bits with the sign group flipped.
/// `-0.0` canonicalizes to `+0.0` and every NaN to the one positive
/// quiet NaN (which lands above `+inf`, mirroring `f64::total_cmp`).
fn numeric_bits(v: &Value) -> Option<u64> {
    let f = match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        Value::Date(d) => *d as f64,
        _ => return None,
    };
    let f = if f.is_nan() {
        f64::NAN
    } else if f == 0.0 {
        0.0
    } else {
        f
    };
    let b = f.to_bits();
    Some(if b >> 63 == 1 { !b } else { b | (1 << 63) })
}

/// The total order every sort path shares. Never errors: pairs the
/// coercing [`scalar::compare`](crate::scalar::compare) would reject
/// order deterministically by cross-type rank instead.
pub fn total_compare(l: &Value, r: &Value) -> Ordering {
    let (rl, rr) = (rank(l), rank(r));
    if rl != rr {
        return rl.cmp(&rr);
    }
    match (l, r) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
        (Value::Str(a), Value::Str(b)) => a.as_bytes().cmp(b.as_bytes()),
        _ if rl == RANK_NUM => numeric_bits(l).cmp(&numeric_bits(r)),
        _ => {
            // Geometries / GPS lists: serialized-byte order. Rare enough
            // that the two encode allocations don't matter.
            let (mut a, mut b) = (Vec::new(), Vec::new());
            l.encode(&mut a);
            r.encode(&mut b);
            a.cmp(&b)
        }
    }
}

/// Appends the normalized encoding of `v` to `out`. For any two values,
/// comparing their encodings as byte strings equals
/// [`total_compare`] (reversed when `desc`); equal encodings imply
/// `total_compare == Equal` and vice versa.
pub fn encode_key(v: &Value, desc: bool, out: &mut Vec<u8>) {
    let start = out.len();
    out.push(rank(v));
    match v {
        Value::Null => {}
        Value::Bool(b) => out.push(u8::from(*b)),
        Value::Int(_) | Value::Float(_) | Value::Date(_) => {
            let bits = numeric_bits(v).expect("numeric rank");
            out.extend_from_slice(&bits.to_be_bytes());
        }
        Value::Str(s) => push_escaped(out, s.as_bytes()),
        Value::Geom(_) | Value::GpsList(_) => {
            let mut bytes = Vec::new();
            v.encode(&mut bytes);
            push_escaped(out, &bytes);
        }
    }
    if desc {
        for b in &mut out[start..] {
            *b = !*b;
        }
    }
}

/// Variable-length payloads stay prefix-free and order-preserving under
/// concatenation: every `0x00` content byte is escaped to `00 FF`, and
/// the segment ends with the `00 00` terminator (which no escaped
/// content can contain).
fn push_escaped(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        out.push(b);
        if b == 0x00 {
            out.push(0xFF);
        }
    }
    out.extend_from_slice(&[0x00, 0x00]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use just_geo::{Geometry, Point};

    fn enc(v: &Value, desc: bool) -> Vec<u8> {
        let mut out = Vec::new();
        encode_key(v, desc, &mut out);
        out
    }

    fn catalogue() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Int(-7),
            Value::Int(0),
            Value::Float(-0.0),
            Value::Float(0.5),
            Value::Int(1),
            Value::Float(1.0),
            Value::Date(1), // numerics share one space with Int/Float
            Value::Int(900),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NAN),
            Value::Str(String::new()),
            Value::Str("a".into()),
            Value::Str("a\0".into()),
            Value::Str("a\0b".into()),
            Value::Str("ab".into()),
            Value::Str("b".into()),
            Value::Geom(Geometry::Point(Point::new(1.0, 2.0))),
            Value::Geom(Geometry::Point(Point::new(2.0, 1.0))),
        ]
    }

    #[test]
    fn encoded_order_equals_total_compare() {
        let vals = catalogue();
        for a in &vals {
            for b in &vals {
                let ord = total_compare(a, b);
                assert_eq!(enc(a, false).cmp(&enc(b, false)), ord, "asc {a:?} vs {b:?}");
                assert_eq!(
                    enc(a, true).cmp(&enc(b, true)),
                    ord.reverse(),
                    "desc {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn nulls_first_then_cross_type_rank() {
        // The satellite's contract: NULL sorts before everything, and
        // incomparable pairs order deterministically by type rank.
        let ladder = [
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MAX),
            Value::Str("0".into()), // strings rank above ALL numerics
            Value::Geom(Geometry::Point(Point::new(0.0, 0.0))),
        ];
        for w in ladder.windows(2) {
            assert_eq!(total_compare(&w[0], &w[1]), Ordering::Less, "{w:?}");
        }
    }

    #[test]
    fn numeric_space_is_shared_and_total() {
        assert_eq!(
            total_compare(&Value::Int(5), &Value::Float(5.0)),
            Ordering::Equal
        );
        assert_eq!(
            total_compare(&Value::Float(-0.0), &Value::Float(0.0)),
            Ordering::Equal
        );
        assert_eq!(
            total_compare(&Value::Float(f64::NAN), &Value::Float(f64::INFINITY)),
            Ordering::Greater
        );
        assert_eq!(
            total_compare(&Value::Float(f64::NAN), &Value::Float(f64::NAN)),
            Ordering::Equal
        );
    }

    #[test]
    fn multi_key_concatenation_orders_segment_at_a_time() {
        // (k1 asc, k2 desc) over values chosen so a naive
        // length-prefixed string encoding would mis-order.
        let rows = [
            (Value::Str("a".into()), Value::Int(1)),
            (Value::Str("a".into()), Value::Int(9)),
            (Value::Str("a\0".into()), Value::Int(5)),
            (Value::Str("ab".into()), Value::Int(5)),
        ];
        let enc2 = |(k1, k2): &(Value, Value)| {
            let mut out = Vec::new();
            encode_key(k1, false, &mut out);
            encode_key(k2, true, &mut out);
            out
        };
        let mut got: Vec<usize> = (0..rows.len()).collect();
        got.sort_by(|&a, &b| enc2(&rows[a]).cmp(&enc2(&rows[b])));
        // "a" rows first (k2 descending within), then "a\0", then "ab".
        assert_eq!(got, vec![1, 0, 2, 3]);
    }
}
