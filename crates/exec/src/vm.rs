//! The vectorized interpreter: evaluates a [`Program`] over a batch of
//! rows, one *opcode* at a time (not one row at a time), under a stack
//! of selection vectors.
//!
//! Registers are vectors over the batch with two zero-copy forms — a
//! `Col` register is a view into the input rows and a `Scalar` register
//! broadcasts one constant — plus two *typed* forms: when every
//! base-selection lane of an `arith.int`/`cmp.int` operand proves to be
//! a non-NULL `Int`, the operand is gathered once into a flat `i64`
//! vector and the whole opcode runs as a tight integer loop (`Ints`),
//! with comparisons producing packed booleans (`Bools`). A typed
//! register is materialized back into boxed [`Value`] lanes only when a
//! generic opcode reads it, so int-heavy chains never touch the enum
//! representation at all. Ops materialize results only for rows in the
//! current selection; `MaskAnd`/`MaskOr` narrow the selection for the
//! span of a short-circuited operand, so rows the left-hand side already
//! decided are never evaluated — the vectorized equivalent of the row
//! interpreter's short-circuit rule, and the mechanism a filter chain
//! uses to evaluate later predicates only on surviving rows.

use crate::program::{Op, Program, RegId};
use crate::scalar::{self, ArithOp};
use crate::ExecError;
use just_storage::{Row, Value};

/// Shared NULL for unset lanes.
const NULL: Value = Value::Null;

enum Reg {
    /// Not yet written.
    Unset,
    /// A broadcast constant.
    Scalar(Value),
    /// A zero-copy view of input column `col`.
    Col(u16),
    /// A column already checked for the int fast path and rejected
    /// (reads like `Col`, but ops skip re-scanning it).
    ColMixed(u16),
    /// Materialized per-row values (lanes outside the selection that
    /// produced them hold NULL and are never read).
    Vals(Vec<Value>),
    /// Typed integer lanes: every base-selection lane held a non-NULL
    /// `Int` (unselected lanes hold 0 and are never read).
    Ints(Vec<i64>),
    /// Typed boolean lanes (comparison / logic results).
    Bools(Vec<bool>),
}

/// How an `arith.int` / `cmp.int` operand resolves for the typed path.
enum IntArg {
    /// A broadcast integer constant.
    Broadcast(i64),
    /// The register now holds typed `Ints` lanes.
    Lanes,
    /// Not integer-typed; the op takes the generic boxed path.
    No,
}

/// A borrowed view of one typed operand inside the tight loops.
#[derive(Clone, Copy)]
enum IntSrc<'a> {
    B(i64),
    S(&'a [i64]),
}

impl IntSrc<'_> {
    #[inline(always)]
    fn at(self, lane: usize) -> i64 {
        match self {
            IntSrc::B(x) => x,
            IntSrc::S(s) => s[lane],
        }
    }
}

/// One lane of integer arithmetic; mirrors [`scalar::arith_int`] exactly
/// (wrapping `+ - *`, zero-guarded `/ %`).
#[inline(always)]
fn arith_int_lane(op: ArithOp, a: i64, b: i64) -> Result<i64, ExecError> {
    Ok(match op {
        ArithOp::Add => a.wrapping_add(b),
        ArithOp::Sub => a.wrapping_sub(b),
        ArithOp::Mul => a.wrapping_mul(b),
        ArithOp::Div => {
            if b == 0 {
                return Err(ExecError("division by zero".into()));
            }
            a / b
        }
        ArithOp::Mod => {
            if b == 0 {
                return Err(ExecError("division by zero".into()));
            }
            a % b
        }
    })
}

/// A reusable evaluation context. Create one per operator (or thread)
/// and feed it batches; register and selection buffers are recycled
/// across batches through free-lists, so steady-state evaluation does
/// no allocation.
pub struct Vm {
    regs: Vec<Reg>,
    sel_stack: Vec<Vec<u32>>,
    /// Retired `Vals` buffers, reused by later ops and batches.
    pool: Vec<Vec<Value>>,
    /// Retired typed-int buffers.
    int_pool: Vec<Vec<i64>>,
    /// Retired typed-bool buffers.
    bool_pool: Vec<Vec<bool>>,
    /// Retired selection vectors.
    sel_pool: Vec<Vec<u32>>,
    batch_us: just_obs::Histogram,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

impl Vm {
    /// Creates an evaluation context.
    pub fn new() -> Self {
        Vm {
            regs: Vec::new(),
            sel_stack: Vec::new(),
            pool: Vec::new(),
            int_pool: Vec::new(),
            bool_pool: Vec::new(),
            sel_pool: Vec::new(),
            batch_us: just_obs::global().histogram("just_exec_batch_eval_us"),
        }
    }

    /// Evaluates `prog` over `rows` restricted to `base` (row indices
    /// into `rows`), appending to `out_sel` the indices — in `base`
    /// order — where the result is truthy. This is the filter form; the
    /// output is a selection vector ready to drive the next predicate.
    pub fn select(
        &mut self,
        prog: &Program,
        rows: &[Row],
        base: &[u32],
        out_sel: &mut Vec<u32>,
    ) -> Result<(), ExecError> {
        self.run(prog, rows, base)?;
        for &lane in base {
            if truthy_at(&self.regs, prog.out, rows, lane as usize) {
                out_sel.push(lane);
            }
        }
        Ok(())
    }

    /// Evaluates `prog` over `rows` restricted to `base`, appending one
    /// result value per selected row (in `base` order) to `out`.
    pub fn eval(
        &mut self,
        prog: &Program,
        rows: &[Row],
        base: &[u32],
        out: &mut Vec<Value>,
    ) -> Result<(), ExecError> {
        self.run(prog, rows, base)?;
        out.reserve(base.len());
        for &lane in base {
            out.push(value_owned(&self.regs, prog.out, rows, lane as usize));
        }
        Ok(())
    }

    /// Runs the program's ops over the base selection. On return the
    /// output register holds a value for every row in `base`.
    fn run(&mut self, prog: &Program, rows: &[Row], base: &[u32]) -> Result<(), ExecError> {
        let started = std::time::Instant::now();
        while let Some(r) = self.regs.pop() {
            self.retire(r);
        }
        self.regs.resize_with(prog.num_regs as usize, || Reg::Unset);
        // Stack slot 0 is the caller's base selection; masks push above.
        while let Some(v) = self.sel_stack.pop() {
            self.sel_pool.push(v);
        }
        let mut base_sel = self.sel_pool.pop().unwrap_or_default();
        base_sel.clear();
        base_sel.extend_from_slice(base);
        self.sel_stack.push(base_sel);

        let n = rows.len();
        for op in &prog.ops {
            match op {
                Op::Const { dst, idx } => {
                    self.regs[*dst as usize] = Reg::Scalar(prog.consts[*idx as usize].clone());
                }
                Op::Col { dst, col } => {
                    self.regs[*dst as usize] = Reg::Col(*col);
                }
                Op::Arith { op, dst, a, b } => {
                    self.materialize(*a, n);
                    self.materialize(*b, n);
                    self.binary_op(*dst, n, rows, |regs, rows, lane| {
                        scalar::arith(
                            *op,
                            reg_at(regs, *a, rows, lane),
                            reg_at(regs, *b, rows, lane),
                        )
                    })?;
                }
                Op::ArithInt { op, dst, a, b } => {
                    let ia = self.int_operand(*a, rows);
                    let ib = self.int_operand(*b, rows);
                    if !matches!(ia, IntArg::No) && !matches!(ib, IntArg::No) {
                        self.arith_int_typed(*op, *dst, (ia, *a), (ib, *b), n)?;
                    } else {
                        self.materialize(*a, n);
                        self.materialize(*b, n);
                        self.binary_op(*dst, n, rows, |regs, rows, lane| {
                            match (reg_at(regs, *a, rows, lane), reg_at(regs, *b, rows, lane)) {
                                (Value::Int(x), Value::Int(y)) => scalar::arith_int(*op, *x, *y),
                                (l, r) => scalar::arith(*op, l, r),
                            }
                        })?;
                    }
                }
                Op::Cmp { op, dst, a, b } => {
                    self.materialize(*a, n);
                    self.materialize(*b, n);
                    self.binary_op(*dst, n, rows, |regs, rows, lane| {
                        scalar::cmp(
                            *op,
                            reg_at(regs, *a, rows, lane),
                            reg_at(regs, *b, rows, lane),
                        )
                    })?;
                }
                Op::CmpInt { op, dst, a, b } => {
                    let ia = self.int_operand(*a, rows);
                    let ib = self.int_operand(*b, rows);
                    if !matches!(ia, IntArg::No) && !matches!(ib, IntArg::No) {
                        self.cmp_int_typed(*op, *dst, (ia, *a), (ib, *b), n);
                    } else {
                        self.materialize(*a, n);
                        self.materialize(*b, n);
                        self.binary_op(*dst, n, rows, |regs, rows, lane| {
                            match (reg_at(regs, *a, rows, lane), reg_at(regs, *b, rows, lane)) {
                                (Value::Int(x), Value::Int(y)) => {
                                    Ok(Value::Bool(op.matches(x.cmp(y))))
                                }
                                (l, r) => scalar::cmp(*op, l, r),
                            }
                        })?;
                    }
                }
                Op::Within { dst, a, b } => {
                    self.materialize(*a, n);
                    self.materialize(*b, n);
                    self.binary_op(*dst, n, rows, |regs, rows, lane| {
                        scalar::within(reg_at(regs, *a, rows, lane), reg_at(regs, *b, rows, lane))
                    })?;
                }
                Op::Neg { dst, a } => {
                    self.materialize(*a, n);
                    self.binary_op(*dst, n, rows, |regs, rows, lane| {
                        scalar::neg(reg_at(regs, *a, rows, lane))
                    })?;
                }
                Op::Not { dst, a } => {
                    self.materialize(*a, n);
                    self.binary_op(*dst, n, rows, |regs, rows, lane| {
                        scalar::logical_not(reg_at(regs, *a, rows, lane))
                    })?;
                }
                Op::Between { dst, v, lo, hi } => {
                    self.materialize(*v, n);
                    self.materialize(*lo, n);
                    self.materialize(*hi, n);
                    self.binary_op(*dst, n, rows, |regs, rows, lane| {
                        scalar::between(
                            reg_at(regs, *v, rows, lane),
                            reg_at(regs, *lo, rows, lane),
                            reg_at(regs, *hi, rows, lane),
                        )
                    })?;
                }
                Op::Call { dst, func, args } => {
                    for r in args.iter() {
                        self.materialize(*r, n);
                    }
                    let entry = &prog.funcs[*func as usize];
                    self.binary_op(*dst, n, rows, |regs, rows, lane| {
                        let vals: Vec<Value> = args
                            .iter()
                            .map(|r| reg_at(regs, *r, rows, lane).clone())
                            .collect();
                        (entry.f)(vals)
                    })?;
                }
                Op::MaskAnd { src } => {
                    let mut narrowed = self.sel_pool.pop().unwrap_or_default();
                    narrowed.clear();
                    let cur = self.sel_stack.last().expect("selection stack");
                    narrowed.reserve(cur.len());
                    for &lane in cur {
                        if truthy_at(&self.regs, *src, rows, lane as usize) {
                            narrowed.push(lane);
                        }
                    }
                    self.sel_stack.push(narrowed);
                }
                Op::MaskOr { src } => {
                    let mut narrowed = self.sel_pool.pop().unwrap_or_default();
                    narrowed.clear();
                    let cur = self.sel_stack.last().expect("selection stack");
                    narrowed.reserve(cur.len());
                    for &lane in cur {
                        if !truthy_at(&self.regs, *src, rows, lane as usize) {
                            narrowed.push(lane);
                        }
                    }
                    self.sel_stack.push(narrowed);
                }
                Op::MaskPop => {
                    if let Some(v) = self.sel_stack.pop() {
                        self.sel_pool.push(v);
                    }
                }
                Op::MergeAnd { dst, a, b } => {
                    self.merge_logic(*dst, *a, *b, n, rows, true);
                }
                Op::MergeOr { dst, a, b } => {
                    self.merge_logic(*dst, *a, *b, n, rows, false);
                }
            }
        }
        self.batch_us.record_duration(started.elapsed());
        Ok(())
    }

    /// Returns a retired register's buffer to the matching free-list.
    fn retire(&mut self, r: Reg) {
        match r {
            Reg::Vals(v) => self.pool.push(v),
            Reg::Ints(v) => self.int_pool.push(v),
            Reg::Bools(v) => self.bool_pool.push(v),
            _ => {}
        }
    }

    /// Writes `reg` into `dst`, recycling whatever was there.
    fn set_reg(&mut self, dst: RegId, reg: Reg) {
        let old = std::mem::replace(&mut self.regs[dst as usize], reg);
        self.retire(old);
    }

    /// Converts a typed register back into boxed `Value` lanes so a
    /// generic opcode can read it. Lanes in the base selection get real
    /// values; the rest stay NULL (never read, by the masking
    /// invariant).
    fn materialize(&mut self, r: RegId, n_rows: usize) {
        if !matches!(self.regs[r as usize], Reg::Ints(_) | Reg::Bools(_)) {
            return;
        }
        let mut vals = self.pool.pop().unwrap_or_default();
        vals.clear();
        vals.resize(n_rows, Value::Null);
        {
            let base = &self.sel_stack[0];
            match &self.regs[r as usize] {
                Reg::Ints(v) => {
                    for &lane in base {
                        vals[lane as usize] = Value::Int(v[lane as usize]);
                    }
                }
                Reg::Bools(v) => {
                    for &lane in base {
                        vals[lane as usize] = Value::Bool(v[lane as usize]);
                    }
                }
                _ => unreachable!(),
            }
        }
        self.set_reg(r, Reg::Vals(vals));
    }

    /// Resolves an `arith.int`/`cmp.int` operand for the typed path. A
    /// `Col` operand is scanned over the base selection: all-Int columns
    /// are gathered into flat `i64` lanes once (and cached in the
    /// register for every later op); anything else is marked mixed and
    /// handled by the generic path.
    fn int_operand(&mut self, r: RegId, rows: &[Row]) -> IntArg {
        let col = match &self.regs[r as usize] {
            Reg::Scalar(Value::Int(x)) => return IntArg::Broadcast(*x),
            Reg::Ints(_) => return IntArg::Lanes,
            Reg::Col(c) => *c,
            _ => return IntArg::No,
        };
        let mut out = self.int_pool.pop().unwrap_or_default();
        out.clear();
        out.resize(rows.len(), 0);
        let mut all_int = true;
        {
            let base = &self.sel_stack[0];
            for &lane in base {
                match rows[lane as usize].values.get(col as usize) {
                    Some(Value::Int(x)) => out[lane as usize] = *x,
                    _ => {
                        all_int = false;
                        break;
                    }
                }
            }
        }
        if all_int {
            self.set_reg(r, Reg::Ints(out));
            IntArg::Lanes
        } else {
            self.int_pool.push(out);
            self.set_reg(r, Reg::ColMixed(col));
            IntArg::No
        }
    }

    /// The typed integer arithmetic loop: both operands are flat `i64`
    /// lanes or broadcasts, the result is flat `i64` lanes. Semantics
    /// mirror [`scalar::arith_int`] per lane.
    fn arith_int_typed(
        &mut self,
        op: ArithOp,
        dst: RegId,
        a: (IntArg, RegId),
        b: (IntArg, RegId),
        n_rows: usize,
    ) -> Result<(), ExecError> {
        let mut out = self.int_pool.pop().unwrap_or_default();
        out.clear();
        out.resize(n_rows, 0);
        let result = {
            let src = |(arg, r): &(IntArg, RegId)| match arg {
                IntArg::Broadcast(x) => IntSrc::B(*x),
                _ => match &self.regs[*r as usize] {
                    Reg::Ints(v) => IntSrc::S(v),
                    _ => unreachable!("int operand must be typed"),
                },
            };
            let sa = src(&a);
            let sb = src(&b);
            let sel = self.sel_stack.last().expect("selection stack");
            if sel.len() == n_rows {
                (0..n_rows).try_for_each(|lane| {
                    out[lane] = arith_int_lane(op, sa.at(lane), sb.at(lane))?;
                    Ok(())
                })
            } else {
                sel.iter().try_for_each(|&lane| {
                    let lane = lane as usize;
                    out[lane] = arith_int_lane(op, sa.at(lane), sb.at(lane))?;
                    Ok(())
                })
            }
        };
        match result {
            Ok(()) => {
                self.set_reg(dst, Reg::Ints(out));
                Ok(())
            }
            Err(e) => {
                self.int_pool.push(out);
                Err(e)
            }
        }
    }

    /// The typed integer comparison loop; results are packed booleans.
    fn cmp_int_typed(
        &mut self,
        op: scalar::CmpOp,
        dst: RegId,
        a: (IntArg, RegId),
        b: (IntArg, RegId),
        n_rows: usize,
    ) {
        let mut out = self.bool_pool.pop().unwrap_or_default();
        out.clear();
        out.resize(n_rows, false);
        {
            let src = |(arg, r): &(IntArg, RegId)| match arg {
                IntArg::Broadcast(x) => IntSrc::B(*x),
                _ => match &self.regs[*r as usize] {
                    Reg::Ints(v) => IntSrc::S(v),
                    _ => unreachable!("int operand must be typed"),
                },
            };
            let sa = src(&a);
            let sb = src(&b);
            let sel = self.sel_stack.last().expect("selection stack");
            if sel.len() == n_rows {
                for (lane, slot) in out.iter_mut().enumerate() {
                    *slot = op.matches(sa.at(lane).cmp(&sb.at(lane)));
                }
            } else {
                for &lane in sel {
                    let lane = lane as usize;
                    out[lane] = op.matches(sa.at(lane).cmp(&sb.at(lane)));
                }
            }
        }
        self.set_reg(dst, Reg::Bools(out));
    }

    /// Short-circuit merge (`AND`/`OR` result assembly) with typed
    /// boolean output; reads operands through the truthiness fast path
    /// so `Bools` inputs never materialize.
    fn merge_logic(
        &mut self,
        dst: RegId,
        a: RegId,
        b: RegId,
        n_rows: usize,
        rows: &[Row],
        and: bool,
    ) {
        let mut out = self.bool_pool.pop().unwrap_or_default();
        out.clear();
        out.resize(n_rows, false);
        {
            let sel = self.sel_stack.last().expect("selection stack");
            let eval_lane = |lane: usize| {
                let l = truthy_at(&self.regs, a, rows, lane);
                if and {
                    l && truthy_at(&self.regs, b, rows, lane)
                } else {
                    l || truthy_at(&self.regs, b, rows, lane)
                }
            };
            if sel.len() == n_rows {
                for (lane, slot) in out.iter_mut().enumerate() {
                    *slot = eval_lane(lane);
                }
            } else {
                for &lane in sel {
                    out[lane as usize] = eval_lane(lane as usize);
                }
            }
        }
        self.set_reg(dst, Reg::Bools(out));
    }

    /// Materializes `dst` by applying `f` at every currently-selected
    /// lane (lanes outside the selection stay NULL and are never read by
    /// later ops, by the masking invariant).
    fn binary_op(
        &mut self,
        dst: RegId,
        n_rows: usize,
        rows: &[Row],
        f: impl Fn(&[Reg], &[Row], usize) -> Result<Value, ExecError>,
    ) -> Result<(), ExecError> {
        let mut out = self.pool.pop().unwrap_or_default();
        out.clear();
        let sel = self.sel_stack.last().expect("selection stack");
        if sel.len() == n_rows {
            // Selection vectors are sorted and unique, so a full-length
            // one is the identity: iterate directly with no indirection
            // and no NULL pre-fill (every lane gets written).
            out.reserve(n_rows);
            for lane in 0..n_rows {
                out.push(f(&self.regs, rows, lane)?);
            }
        } else {
            out.resize(n_rows, Value::Null);
            for &lane in sel {
                out[lane as usize] = f(&self.regs, rows, lane as usize)?;
            }
        }
        self.set_reg(dst, Reg::Vals(out));
        Ok(())
    }
}

/// Reads one lane of a register as a borrowed [`Value`]. Typed
/// registers never reach here: generic ops materialize their operands
/// first.
fn reg_at<'a>(regs: &'a [Reg], r: RegId, rows: &'a [Row], lane: usize) -> &'a Value {
    match &regs[r as usize] {
        Reg::Scalar(v) => v,
        Reg::Col(c) | Reg::ColMixed(c) => rows[lane].values.get(*c as usize).unwrap_or(&NULL),
        Reg::Vals(v) => &v[lane],
        Reg::Unset => &NULL,
        Reg::Ints(_) | Reg::Bools(_) => unreachable!("typed register read by generic op"),
    }
}

/// One lane's SQL truthiness, with fast paths for the typed registers.
fn truthy_at(regs: &[Reg], r: RegId, rows: &[Row], lane: usize) -> bool {
    match &regs[r as usize] {
        Reg::Bools(v) => v[lane],
        Reg::Ints(v) => v[lane] != 0,
        Reg::Scalar(v) => scalar::truthy(v),
        Reg::Col(c) | Reg::ColMixed(c) => {
            scalar::truthy(rows[lane].values.get(*c as usize).unwrap_or(&NULL))
        }
        Reg::Vals(v) => scalar::truthy(&v[lane]),
        Reg::Unset => false,
    }
}

/// One lane of a register as an owned [`Value`] (the `eval` output
/// path).
fn value_owned(regs: &[Reg], r: RegId, rows: &[Row], lane: usize) -> Value {
    match &regs[r as usize] {
        Reg::Scalar(v) => v.clone(),
        Reg::Col(c) | Reg::ColMixed(c) => {
            rows[lane].values.get(*c as usize).cloned().unwrap_or(NULL)
        }
        Reg::Vals(v) => v[lane].clone(),
        Reg::Ints(v) => Value::Int(v[lane]),
        Reg::Bools(v) => Value::Bool(v[lane]),
        Reg::Unset => NULL,
    }
}

/// The identity selection `0..n` (helper for callers feeding whole
/// batches).
pub fn full_selection(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}
