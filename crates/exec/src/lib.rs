//! # just-exec — compiled, vectorized expression execution for JustQL
//!
//! JustQL historically interpreted the `Expr` AST once per row:
//! every row re-resolved column names by linear search and re-walked the
//! tree. This crate is the compile-once replacement:
//!
//! 1. **Compile** (`just-ql`'s `compile` module lowers into
//!    [`program::ProgramBuilder`]): an expression becomes a flat
//!    register-based bytecode [`program::Program`] exactly once per
//!    query — columns resolved to indices against the input schema,
//!    literals interned in a constant pool, constant subtrees folded,
//!    arithmetic/comparison opcodes specialized to `*.int` forms when
//!    both operands are statically integer.
//! 2. **Execute** ([`vm::Vm`]): programs run over the batch-at-a-time
//!    pipeline one *opcode* at a time under selection vectors — a filter
//!    produces a selection, later predicates and projections evaluate
//!    only the surviving rows, and `AND`/`OR` short-circuiting is
//!    expressed as selection masks so skipped operands are never
//!    evaluated (matching interpreted semantics, including which rows
//!    can raise errors).
//! 3. **Aggregate** ([`agg::HashAggregator`]): GROUP BY folds batches
//!    into hash-indexed per-group accumulators with no per-row key
//!    allocation.
//! 4. **Join / order** ([`join::JoinHash`], [`keys`]): equi-joins build
//!    and probe a hash table over order-preserving key encodings, and
//!    sorts / TOP-K heaps compare the same memcmp-able bytes instead of
//!    dispatching on boxed `Value`s.
//!
//! The [`scalar`] module is the single definition of JustQL's dynamic
//! value semantics (truthiness, coercion, NULL rules, error text); the
//! row interpreter in `just-ql` delegates to it, so compiled and
//! interpreted execution agree by construction.
//!
//! Observability: `just_exec_programs_compiled` / `just_exec_fallbacks`
//! counters and the `just_exec_batch_eval_us` histogram (via `just-obs`).

pub mod agg;
pub mod join;
pub mod keys;
pub mod program;
pub mod scalar;
pub mod vm;

pub use agg::{AggSpec, HashAggregator};
pub use join::{keys_hashable, JoinHash};
pub use keys::{encode_key, total_compare};
pub use program::{FuncEntry, Op, Program, ProgramBuilder, RegId};
pub use scalar::{ArithOp, CmpOp};
pub use vm::{full_selection, Vm};

/// An execution error (message-only, mapped into `just-ql`'s error type
/// at the crate boundary). Error text matches the interpreter verbatim —
/// the parity property test depends on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(pub String);

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ExecError {}
