//! The vectorized hash aggregator: a hash-keyed group index over the
//! encoded group key plus per-group accumulator slots.
//!
//! The interpreted path in `just-ql` clones a `Vec<Value>` key per input
//! row and appends every member row to its group before aggregating at
//! the end. Here the key is encoded once into a reusable scratch buffer,
//! looked up by `&[u8]` (no allocation on the hot path — the key bytes
//! are only boxed when a *new* group appears), and each aggregate folds
//! the row into a fixed-size accumulator immediately, so memory is
//! O(groups), not O(rows).
//!
//! Accumulator semantics mirror `eval_aggregate` in `just-ql` exactly:
//! `count(*)` counts members, `count(x)` counts non-NULL, `sum` stays
//! integral while every non-NULL input is `Int` (and otherwise coerces
//! via `as_float`, erroring on the first non-numeric value with the same
//! message the interpreter produces), `avg` always coerces, `min`/`max`
//! use the shared [`scalar::compare`] ordering, and empty inputs yield
//! NULL (or 0 for counts). The one documented divergence: integer `sum`
//! accumulates with wrapping arithmetic, where the interpreter's
//! `Iterator::sum` would panic on overflow in debug builds.

use crate::scalar;
use crate::ExecError;
use just_storage::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Which aggregate an accumulator slot computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggSpec {
    /// `count(*)`: member-row count.
    CountStar,
    /// `count(x)`: non-NULL count.
    Count,
    /// `sum(x)`.
    Sum,
    /// `avg(x)`.
    Avg,
    /// `min(x)`.
    Min,
    /// `max(x)`.
    Max,
}

impl AggSpec {
    /// Maps an aggregate function name (plus whether its argument is
    /// `*`) to a spec. Returns `None` for unknown aggregates or
    /// unsupported `func(*)` forms — callers fall back to the
    /// interpreted path so those keep their interpreted error text.
    pub fn resolve(name: &str, star: bool) -> Option<AggSpec> {
        match (name, star) {
            ("count", true) => Some(AggSpec::CountStar),
            ("count", false) => Some(AggSpec::Count),
            ("sum", false) => Some(AggSpec::Sum),
            ("avg", false) => Some(AggSpec::Avg),
            ("min", false) => Some(AggSpec::Min),
            ("max", false) => Some(AggSpec::Max),
            _ => None,
        }
    }
}

enum Acc {
    Count(u64),
    Sum {
        int: i64,
        float: f64,
        all_int: bool,
        n: u64,
    },
    Avg {
        sum: f64,
        n: u64,
    },
    Best {
        best: Option<Value>,
        min: bool,
    },
}

impl Acc {
    fn new(spec: AggSpec) -> Acc {
        match spec {
            AggSpec::CountStar | AggSpec::Count => Acc::Count(0),
            AggSpec::Sum => Acc::Sum {
                int: 0,
                float: 0.0,
                all_int: true,
                n: 0,
            },
            AggSpec::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggSpec::Min => Acc::Best {
                best: None,
                min: true,
            },
            AggSpec::Max => Acc::Best {
                best: None,
                min: false,
            },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<(), ExecError> {
        match self {
            Acc::Count(c) => {
                // `count(*)` passes no argument; `count(x)` skips NULLs.
                if v.is_none_or(|v| !v.is_null()) {
                    *c += 1;
                }
            }
            Acc::Sum {
                int,
                float,
                all_int,
                n,
            } => {
                let v = v.expect("sum takes an argument");
                if v.is_null() {
                    return Ok(());
                }
                match v {
                    Value::Int(i) => {
                        *int = int.wrapping_add(*i);
                        *float += *i as f64;
                    }
                    other => {
                        *all_int = false;
                        *float += other
                            .as_float()
                            .ok_or_else(|| ExecError(format!("sum over {other:?}")))?;
                    }
                }
                *n += 1;
            }
            Acc::Avg { sum, n } => {
                let v = v.expect("avg takes an argument");
                if v.is_null() {
                    return Ok(());
                }
                *sum += v
                    .as_float()
                    .ok_or_else(|| ExecError(format!("avg over {v:?}")))?;
                *n += 1;
            }
            Acc::Best { best, min } => {
                let v = v.expect("min/max take an argument");
                if v.is_null() {
                    return Ok(());
                }
                let take = match best {
                    None => true,
                    Some(b) => {
                        let ord = scalar::compare(v, b)?;
                        if *min {
                            ord == Ordering::Less
                        } else {
                            ord == Ordering::Greater
                        }
                    }
                };
                if take {
                    *best = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finalize(self) -> Value {
        match self {
            Acc::Count(c) => Value::Int(c as i64),
            Acc::Sum {
                int,
                float,
                all_int,
                n,
            } => {
                if n == 0 {
                    Value::Null
                } else if all_int {
                    Value::Int(int)
                } else {
                    Value::Float(float)
                }
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::Best { best, .. } => best.unwrap_or(Value::Null),
        }
    }
}

struct Group {
    keys: Vec<Value>,
    accs: Vec<Acc>,
}

/// A streaming GROUP BY evaluator: feed it batches of evaluated key and
/// argument columns, then [`finish`](HashAggregator::finish) to get one
/// output row per group in first-appearance order.
pub struct HashAggregator {
    specs: Vec<AggSpec>,
    index: HashMap<Box<[u8]>, u32>,
    groups: Vec<Group>,
    scratch: Vec<u8>,
}

impl HashAggregator {
    /// Creates an aggregator computing one slot per spec.
    pub fn new(specs: Vec<AggSpec>) -> Self {
        HashAggregator {
            specs,
            index: HashMap::new(),
            groups: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of groups discovered so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Folds `n_rows` rows into the table. `keys[k][r]` is group-key
    /// column `k` at row `r`; `args[s]` is the evaluated argument column
    /// for slot `s` (`None` for `count(*)`). All supplied columns must
    /// have `n_rows` entries.
    pub fn push(
        &mut self,
        n_rows: usize,
        keys: &[Vec<Value>],
        args: &[Option<Vec<Value>>],
    ) -> Result<(), ExecError> {
        debug_assert_eq!(args.len(), self.specs.len());
        for r in 0..n_rows {
            self.scratch.clear();
            for key in keys {
                key[r].encode(&mut self.scratch);
            }
            let gid = match self.index.get(self.scratch.as_slice()) {
                Some(&gid) => gid,
                None => {
                    let gid = self.groups.len() as u32;
                    self.index.insert(self.scratch.as_slice().into(), gid);
                    self.groups.push(Group {
                        keys: keys.iter().map(|k| k[r].clone()).collect(),
                        accs: self.specs.iter().map(|&s| Acc::new(s)).collect(),
                    });
                    gid
                }
            };
            let group = &mut self.groups[gid as usize];
            for (acc, arg) in group.accs.iter_mut().zip(args) {
                acc.update(arg.as_ref().map(|col| &col[r]))?;
            }
        }
        Ok(())
    }

    /// Finalizes every accumulator, returning `(key values, aggregate
    /// values)` per group in first-appearance order. When
    /// `ensure_global_row` is set and no rows arrived, emits the single
    /// empty-input group a global aggregate (`SELECT count(*) ...` with
    /// no GROUP BY) must produce.
    pub fn finish(mut self, ensure_global_row: bool) -> Vec<(Vec<Value>, Vec<Value>)> {
        if self.groups.is_empty() && ensure_global_row {
            self.groups.push(Group {
                keys: Vec::new(),
                accs: self.specs.iter().map(|&s| Acc::new(s)).collect(),
            });
        }
        self.groups
            .into_iter()
            .map(|g| (g.keys, g.accs.into_iter().map(Acc::finalize).collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn groups_in_first_appearance_order() {
        let mut agg = HashAggregator::new(vec![AggSpec::CountStar, AggSpec::Sum]);
        let keys = vec![ints(&[2, 1, 2, 1, 2])];
        let vals = ints(&[10, 20, 30, 40, 50]);
        agg.push(5, &keys, &[None, Some(vals)]).unwrap();
        let out = agg.finish(false);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, vec![Value::Int(2)]);
        assert_eq!(out[0].1, vec![Value::Int(3), Value::Int(90)]);
        assert_eq!(out[1].0, vec![Value::Int(1)]);
        assert_eq!(out[1].1, vec![Value::Int(2), Value::Int(60)]);
    }

    #[test]
    fn sum_stays_integral_until_a_float_appears() {
        let mut agg = HashAggregator::new(vec![AggSpec::Sum]);
        agg.push(2, &[], &[Some(ints(&[1, 2]))]).unwrap();
        assert_eq!(agg.finish(false)[0].1, vec![Value::Int(3)]);

        let mut agg = HashAggregator::new(vec![AggSpec::Sum]);
        agg.push(2, &[], &[Some(vec![Value::Int(1), Value::Float(0.5)])])
            .unwrap();
        assert_eq!(agg.finish(false)[0].1, vec![Value::Float(1.5)]);
    }

    #[test]
    fn null_handling_and_empty_input() {
        let mut agg = HashAggregator::new(vec![
            AggSpec::Count,
            AggSpec::CountStar,
            AggSpec::Sum,
            AggSpec::Min,
        ]);
        let col = vec![Value::Null, Value::Int(7), Value::Null];
        agg.push(
            3,
            &[],
            &[Some(col.clone()), None, Some(col.clone()), Some(col)],
        )
        .unwrap();
        let out = agg.finish(false);
        assert_eq!(
            out[0].1,
            vec![Value::Int(1), Value::Int(3), Value::Int(7), Value::Int(7)]
        );

        // Zero input rows, global aggregate: one row, counts 0, sum NULL.
        let agg = HashAggregator::new(vec![AggSpec::CountStar, AggSpec::Sum]);
        let out = agg.finish(true);
        assert_eq!(out[0].1, vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn sum_type_error_matches_interpreter_text() {
        let mut agg = HashAggregator::new(vec![AggSpec::Sum]);
        let err = agg
            .push(1, &[], &[Some(vec![Value::Str("x".into())])])
            .unwrap_err();
        assert!(err.0.contains("sum over"), "{}", err.0);
    }
}
