//! Build/probe core of the vectorized hash join.
//!
//! The QL executor evaluates each side's equi-key expressions
//! column-at-a-time (compiled to bytecode when possible), then builds a
//! [`JoinHash`] over the smaller side: one [`keys::encode_key`] byte
//! string per row, deduplicated into buckets of row indices — the same
//! `HashMap<Box<[u8]>, u32>` + scratch-buffer shape as
//! [`HashAggregator`](crate::HashAggregator). Probing re-encodes the
//! other side's keys into the shared scratch and looks buckets up by
//! slice, so steady state allocates nothing per row.
//!
//! Equality contract: for rows that pass [`keys_hashable`], encoded-byte
//! equality is exactly the truth of the interpreted `l = r` conjunct
//! (numerics compare in one coerced `f64` space, strings bytewise,
//! booleans as booleans). Rows with a NULL key never match in SQL, so
//! they are skipped at build and probe. Everything outside the contract
//! — mixed type classes in one column (string↔number coercion is not
//! transitive), geometries, NaN floats, or a class mismatch across
//! sides (interpreted compare may coerce or error) — makes
//! [`keys_hashable`] return false and the executor falls back to the
//! nested loop, preserving interpreted semantics including errors.

use crate::keys;
use just_storage::Value;
use std::collections::HashMap;

/// Hash table over encoded key bytes, mapping each distinct key to the
/// build-side row indices carrying it (in input order).
pub struct JoinHash {
    index: HashMap<Box<[u8]>, u32>,
    buckets: Vec<Vec<u32>>,
    scratch: Vec<u8>,
    rows_built: u64,
}

impl JoinHash {
    /// Builds the table from `n_rows` rows whose key columns are
    /// `key_cols` (one `Vec<Value>` of length `n_rows` per key). Rows
    /// with any NULL key are excluded — they can never join.
    pub fn build(n_rows: usize, key_cols: &[Vec<Value>]) -> JoinHash {
        let mut t = JoinHash {
            index: HashMap::new(),
            buckets: Vec::new(),
            scratch: Vec::new(),
            rows_built: 0,
        };
        'rows: for r in 0..n_rows {
            t.scratch.clear();
            for col in key_cols {
                let v = &col[r];
                if matches!(v, Value::Null) {
                    continue 'rows;
                }
                keys::encode_key(v, false, &mut t.scratch);
            }
            match t.index.get(t.scratch.as_slice()) {
                Some(&b) => t.buckets[b as usize].push(r as u32),
                None => {
                    let b = t.buckets.len() as u32;
                    t.index.insert(t.scratch.as_slice().into(), b);
                    t.buckets.push(vec![r as u32]);
                }
            }
            t.rows_built += 1;
        }
        t
    }

    /// Looks up the bucket matching probe row `r` of `key_cols`.
    /// Returns `None` for NULL keys or keys absent from the build side.
    pub fn probe(&mut self, key_cols: &[Vec<Value>], r: usize) -> Option<&[u32]> {
        self.scratch.clear();
        for col in key_cols {
            let v = &col[r];
            if matches!(v, Value::Null) {
                return None;
            }
            keys::encode_key(v, false, &mut self.scratch);
        }
        let b = *self.index.get(self.scratch.as_slice())?;
        Some(&self.buckets[b as usize])
    }

    /// Build-side rows actually inserted (non-NULL keys only).
    pub fn rows_built(&self) -> u64 {
        self.rows_built
    }

    /// Distinct keys in the table.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }
}

/// Type class of a hash-joinable key column. NULLs are transparent
/// (they never match and are skipped), so a column's class is the class
/// of its non-NULL values — `None` below means all-NULL.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum KeyClass {
    Bool,
    Num,
    Str,
}

fn class_of(col: &[Value]) -> Option<Option<KeyClass>> {
    let mut class = None;
    for v in col {
        let c = match v {
            Value::Null => continue,
            Value::Bool(_) => KeyClass::Bool,
            Value::Int(_) | Value::Date(_) => KeyClass::Num,
            Value::Float(f) if !f.is_nan() => KeyClass::Num,
            Value::Str(_) => KeyClass::Str,
            // NaN equals everything under the interpreted comparator's
            // `partial_cmp().unwrap_or(Equal)` — not hashable. Geoms and
            // GPS lists aren't comparable at all.
            _ => return None,
        };
        match class {
            None => class = Some(c),
            Some(p) if p == c => {}
            _ => return None,
        }
    }
    Some(class)
}

/// Whether encoded-byte equality reproduces the interpreted equi-key
/// semantics for these key columns (`left[i]` joins against
/// `right[i]`). False demands the nested-loop fallback: mixed classes
/// within a column, a class mismatch across sides (the interpreted
/// comparator may coerce numeric-looking strings, or error), NaN, or
/// non-scalar values.
pub fn keys_hashable(left: &[Vec<Value>], right: &[Vec<Value>]) -> bool {
    debug_assert_eq!(left.len(), right.len());
    left.iter().zip(right).all(|(l, r)| {
        match (class_of(l), class_of(r)) {
            // A side that is all-NULL in some key matches nothing; any
            // class on the other side is fine.
            (Some(a), Some(b)) => a.is_none() || b.is_none() || a == b,
            _ => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn build_probe_with_duplicates_and_nulls() {
        let mut build_keys = ints(&[10, 20, 10, 30]);
        build_keys.push(Value::Null); // row 4: excluded
        let table_keys = vec![build_keys];
        let mut t = JoinHash::build(5, &table_keys);
        assert_eq!(t.rows_built(), 4);
        assert_eq!(t.distinct_keys(), 3);

        let probe_keys = vec![vec![
            Value::Int(10),
            Value::Float(20.0), // numeric coercion: matches Int(20)
            Value::Null,
            Value::Int(99),
        ]];
        assert_eq!(t.probe(&probe_keys, 0), Some(&[0u32, 2][..]));
        assert_eq!(t.probe(&probe_keys, 1), Some(&[1u32][..]));
        assert_eq!(t.probe(&probe_keys, 2), None);
        assert_eq!(t.probe(&probe_keys, 3), None);
    }

    #[test]
    fn multi_key_rows_match_componentwise() {
        let keys_a = vec![ints(&[1, 1, 2]), ints(&[7, 8, 7])];
        let mut t = JoinHash::build(3, &keys_a);
        let probe = vec![ints(&[1, 2]), ints(&[7, 8])];
        assert_eq!(t.probe(&probe, 0), Some(&[0u32][..]));
        assert_eq!(t.probe(&probe, 1), None); // (2,8) never built
    }

    #[test]
    fn hashability_gate() {
        let num = ints(&[1, 2]);
        let num_with_null = vec![Value::Null, Value::Int(2)];
        let strs = vec![Value::Str("1".into()), Value::Str("2".into())];
        let bools = vec![Value::Bool(true), Value::Bool(false)];
        let mixed = vec![Value::Int(1), Value::Str("1".into())];
        let nan = vec![Value::Float(f64::NAN)];
        let all_null = vec![Value::Null, Value::Null];

        use std::slice::from_ref;
        assert!(keys_hashable(from_ref(&num), from_ref(&num_with_null)));
        assert!(keys_hashable(from_ref(&strs), from_ref(&strs)));
        assert!(keys_hashable(from_ref(&bools), from_ref(&bools)));
        // All-NULL side joins nothing regardless of the other class.
        assert!(keys_hashable(from_ref(&all_null), from_ref(&strs)));
        // "42" = 42 coerces under the interpreted comparator; bool vs
        // num errors; NaN ties with everything; mixed classes are
        // untransitive. All must fall back.
        assert!(!keys_hashable(from_ref(&num), from_ref(&strs)));
        assert!(!keys_hashable(from_ref(&bools), from_ref(&num)));
        assert!(!keys_hashable(from_ref(&nan), from_ref(&num)));
        assert!(!keys_hashable(from_ref(&mixed), from_ref(&num)));
    }
}
