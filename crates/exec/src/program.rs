//! The register bytecode IR and its builder.
//!
//! A [`Program`] is the compiled form of one scalar expression: a flat
//! sequence of [`Op`]s over virtual registers, a constant pool, and a
//! table of scalar-function entry points. Programs are built exactly
//! once per query (per operator) by the front end's lowering pass —
//! column names are resolved to input indices there, literals are
//! interned (deduplicated) into the constant pool, and arithmetic /
//! comparison opcodes are emitted in their integer-specialized form when
//! the operand types are statically known.
//!
//! `AND` / `OR` compile to *selection masks* rather than eager operand
//! evaluation: the right-hand side's ops run under a narrowed selection
//! containing only the rows the left-hand side did not already decide,
//! which preserves the row interpreter's short-circuit semantics (no
//! spurious errors or side effects from rows that never needed the
//! right-hand side) while staying fully vectorized.

use crate::scalar::{ArithOp, CmpOp};
use crate::ExecError;
use just_storage::Value;
use std::sync::Arc;

/// A virtual register index.
pub type RegId = u16;

/// One bytecode instruction. `dst` registers are written for every row
/// in the current selection; operand registers are only read at selected
/// rows.
#[derive(Debug, Clone)]
pub enum Op {
    /// Broadcast constant-pool entry `idx` into `dst`.
    Const {
        /// Destination register.
        dst: RegId,
        /// Constant-pool index.
        idx: u16,
    },
    /// Bind `dst` to input column `col` (zero-copy view).
    Col {
        /// Destination register.
        dst: RegId,
        /// Input column index.
        col: u16,
    },
    /// Generic arithmetic: `dst = a <op> b` with full coercion rules.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Destination register.
        dst: RegId,
        /// Left operand register.
        a: RegId,
        /// Right operand register.
        b: RegId,
    },
    /// Integer-specialized arithmetic: emitted when both operands are
    /// statically `Int`; falls back to the generic kernel on rows where
    /// the static claim does not hold (views carry no schema types).
    ArithInt {
        /// Operator.
        op: ArithOp,
        /// Destination register.
        dst: RegId,
        /// Left operand register.
        a: RegId,
        /// Right operand register.
        b: RegId,
    },
    /// Generic comparison: `dst = Bool(a <op> b)`; NULL compares false.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Destination register.
        dst: RegId,
        /// Left operand register.
        a: RegId,
        /// Right operand register.
        b: RegId,
    },
    /// Integer-specialized comparison (same fallback rule as
    /// [`Op::ArithInt`]).
    CmpInt {
        /// Operator.
        op: CmpOp,
        /// Destination register.
        dst: RegId,
        /// Left operand register.
        a: RegId,
        /// Right operand register.
        b: RegId,
    },
    /// Spatial containment: `dst = Bool(a WITHIN mbr(b))`.
    Within {
        /// Destination register.
        dst: RegId,
        /// Geometry operand register.
        a: RegId,
        /// Target geometry register.
        b: RegId,
    },
    /// Arithmetic negation.
    Neg {
        /// Destination register.
        dst: RegId,
        /// Operand register.
        a: RegId,
    },
    /// Logical NOT (NULL propagates).
    Not {
        /// Destination register.
        dst: RegId,
        /// Operand register.
        a: RegId,
    },
    /// `dst = Bool(lo <= v <= hi)`, both bounds compared eagerly.
    Between {
        /// Destination register.
        dst: RegId,
        /// Tested-value register.
        v: RegId,
        /// Lower-bound register.
        lo: RegId,
        /// Upper-bound register.
        hi: RegId,
    },
    /// Scalar function call, one invocation per selected row.
    Call {
        /// Destination register.
        dst: RegId,
        /// Function-table index.
        func: u16,
        /// Argument registers, in order.
        args: Vec<RegId>,
    },
    /// Push a narrowed selection: rows where `src` is truthy (the lanes
    /// an `AND`'s right-hand side still has to decide).
    MaskAnd {
        /// Condition register.
        src: RegId,
    },
    /// Push a narrowed selection: rows where `src` is *falsy* (the lanes
    /// an `OR`'s right-hand side still has to decide).
    MaskOr {
        /// Condition register.
        src: RegId,
    },
    /// Pop the innermost selection mask.
    MaskPop,
    /// `dst = Bool(truthy(a) && truthy(b))`; `b` is only read on rows
    /// where `a` was truthy (elsewhere its lanes were never computed).
    MergeAnd {
        /// Destination register.
        dst: RegId,
        /// Left (mask source) register.
        a: RegId,
        /// Right (masked) register.
        b: RegId,
    },
    /// `dst = Bool(truthy(a) || truthy(b))`; `b` is only read on rows
    /// where `a` was falsy.
    MergeOr {
        /// Destination register.
        dst: RegId,
        /// Left (mask source) register.
        a: RegId,
        /// Right (masked) register.
        b: RegId,
    },
}

/// A scalar function bound into a program's function table at compile
/// time (the front end supplies the actual callable — this crate has no
/// function registry of its own).
#[derive(Clone)]
pub struct FuncEntry {
    /// Lower-cased function name (for listings).
    pub name: String,
    /// The callable.
    pub f: Arc<dyn Fn(Vec<Value>) -> Result<Value, ExecError> + Send + Sync>,
}

impl std::fmt::Debug for FuncEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FuncEntry({})", self.name)
    }
}

/// A compiled expression: flat ops, constant pool, function table.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) ops: Vec<Op>,
    pub(crate) consts: Vec<Value>,
    pub(crate) funcs: Vec<FuncEntry>,
    pub(crate) num_regs: u16,
    pub(crate) out: RegId,
    pub(crate) col_names: Vec<String>,
}

impl Program {
    /// Number of virtual registers the VM must provision.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// The register holding the expression result.
    pub fn out_reg(&self) -> RegId {
        self.out
    }

    /// Number of opcodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no opcodes (never true for programs built
    /// through [`ProgramBuilder`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Renders the program one line per opcode (the `EXPLAIN` listing).
    pub fn listing(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.ops.len() + 1);
        let col = |c: u16| -> String {
            self.col_names
                .get(c as usize)
                .map(|n| format!("${c} ({n})"))
                .unwrap_or_else(|| format!("${c}"))
        };
        for (i, op) in self.ops.iter().enumerate() {
            let line = match op {
                Op::Const { dst, idx } => {
                    format!("r{dst} = const {:?}", self.consts[*idx as usize])
                }
                Op::Col { dst, col: c } => format!("r{dst} = col {}", col(*c)),
                Op::Arith { op, dst, a, b } => {
                    format!("r{dst} = arith r{a} {} r{b}", op.symbol())
                }
                Op::ArithInt { op, dst, a, b } => {
                    format!("r{dst} = arith.int r{a} {} r{b}", op.symbol())
                }
                Op::Cmp { op, dst, a, b } => format!("r{dst} = cmp r{a} {} r{b}", op.symbol()),
                Op::CmpInt { op, dst, a, b } => {
                    format!("r{dst} = cmp.int r{a} {} r{b}", op.symbol())
                }
                Op::Within { dst, a, b } => format!("r{dst} = within r{a}, r{b}"),
                Op::Neg { dst, a } => format!("r{dst} = neg r{a}"),
                Op::Not { dst, a } => format!("r{dst} = not r{a}"),
                Op::Between { dst, v, lo, hi } => {
                    format!("r{dst} = between r{v}, r{lo}, r{hi}")
                }
                Op::Call { dst, func, args } => {
                    let args: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
                    format!(
                        "r{dst} = call {}({})",
                        self.funcs[*func as usize].name,
                        args.join(", ")
                    )
                }
                Op::MaskAnd { src } => format!("mask.and r{src}"),
                Op::MaskOr { src } => format!("mask.or r{src}"),
                Op::MaskPop => "mask.pop".to_string(),
                Op::MergeAnd { dst, a, b } => format!("r{dst} = and r{a}, r{b}"),
                Op::MergeOr { dst, a, b } => format!("r{dst} = or r{a}, r{b}"),
            };
            out.push(format!("{i:02}: {line}"));
        }
        out.push(format!("ret r{}", self.out));
        out
    }
}

/// Incrementally builds a [`Program`]. The front end's lowering pass
/// drives this: every emit helper allocates a fresh destination register
/// (SSA-style) and returns it.
pub struct ProgramBuilder {
    ops: Vec<Op>,
    consts: Vec<Value>,
    /// Register each pool constant was loaded into, parallel to
    /// `consts`: a `Const` op writes a broadcast scalar independent of
    /// any selection mask, so repeated interns reuse the register.
    const_regs: Vec<RegId>,
    funcs: Vec<FuncEntry>,
    next_reg: u16,
    col_names: Vec<String>,
}

impl ProgramBuilder {
    /// Starts a program over inputs with the given column names (used
    /// for listings only; resolution happens in the front end).
    pub fn new(col_names: Vec<String>) -> Self {
        ProgramBuilder {
            ops: Vec::new(),
            consts: Vec::new(),
            const_regs: Vec::new(),
            funcs: Vec::new(),
            next_reg: 0,
            col_names,
        }
    }

    fn fresh(&mut self) -> Result<RegId, ExecError> {
        if self.next_reg == u16::MAX {
            return Err(ExecError("expression too large to compile".into()));
        }
        let r = self.next_reg;
        self.next_reg += 1;
        Ok(r)
    }

    /// Interns `v` into the constant pool (deduplicated) and emits a
    /// broadcast.
    pub fn constant(&mut self, v: Value) -> Result<RegId, ExecError> {
        if let Some(i) = self.consts.iter().position(|c| *c == v) {
            return Ok(self.const_regs[i]);
        }
        let idx = self.consts.len();
        if idx > u16::MAX as usize {
            return Err(ExecError("constant pool overflow".into()));
        }
        self.consts.push(v);
        let dst = self.fresh()?;
        self.const_regs.push(dst);
        self.ops.push(Op::Const {
            dst,
            idx: idx as u16,
        });
        Ok(dst)
    }

    /// Emits a column binding.
    pub fn col(&mut self, col: usize) -> Result<RegId, ExecError> {
        if col > u16::MAX as usize {
            return Err(ExecError("column index overflow".into()));
        }
        let dst = self.fresh()?;
        self.ops.push(Op::Col {
            dst,
            col: col as u16,
        });
        Ok(dst)
    }

    /// Emits arithmetic; `int_specialized` picks the `arith.int` opcode.
    pub fn arith(
        &mut self,
        op: ArithOp,
        a: RegId,
        b: RegId,
        int_specialized: bool,
    ) -> Result<RegId, ExecError> {
        let dst = self.fresh()?;
        self.ops.push(if int_specialized {
            Op::ArithInt { op, dst, a, b }
        } else {
            Op::Arith { op, dst, a, b }
        });
        Ok(dst)
    }

    /// Emits a comparison; `int_specialized` picks the `cmp.int` opcode.
    pub fn cmp(
        &mut self,
        op: CmpOp,
        a: RegId,
        b: RegId,
        int_specialized: bool,
    ) -> Result<RegId, ExecError> {
        let dst = self.fresh()?;
        self.ops.push(if int_specialized {
            Op::CmpInt { op, dst, a, b }
        } else {
            Op::Cmp { op, dst, a, b }
        });
        Ok(dst)
    }

    /// Emits spatial containment.
    pub fn within(&mut self, a: RegId, b: RegId) -> Result<RegId, ExecError> {
        let dst = self.fresh()?;
        self.ops.push(Op::Within { dst, a, b });
        Ok(dst)
    }

    /// Emits arithmetic negation.
    pub fn neg(&mut self, a: RegId) -> Result<RegId, ExecError> {
        let dst = self.fresh()?;
        self.ops.push(Op::Neg { dst, a });
        Ok(dst)
    }

    /// Emits logical NOT.
    pub fn not(&mut self, a: RegId) -> Result<RegId, ExecError> {
        let dst = self.fresh()?;
        self.ops.push(Op::Not { dst, a });
        Ok(dst)
    }

    /// Emits an eager BETWEEN.
    pub fn between(&mut self, v: RegId, lo: RegId, hi: RegId) -> Result<RegId, ExecError> {
        let dst = self.fresh()?;
        self.ops.push(Op::Between { dst, v, lo, hi });
        Ok(dst)
    }

    /// Emits a scalar function call over already-lowered arguments.
    pub fn call(&mut self, entry: FuncEntry, args: Vec<RegId>) -> Result<RegId, ExecError> {
        if self.funcs.len() >= u16::MAX as usize {
            return Err(ExecError("function table overflow".into()));
        }
        let func = self.funcs.len() as u16;
        self.funcs.push(entry);
        let dst = self.fresh()?;
        self.ops.push(Op::Call { dst, func, args });
        Ok(dst)
    }

    /// Pushes the `AND` selection mask: until the matching
    /// [`ProgramBuilder::mask_pop`], emitted ops only run on rows where
    /// `src` is truthy.
    pub fn mask_and(&mut self, src: RegId) {
        self.ops.push(Op::MaskAnd { src });
    }

    /// Pushes the `OR` selection mask (rows where `src` is falsy).
    pub fn mask_or(&mut self, src: RegId) {
        self.ops.push(Op::MaskOr { src });
    }

    /// Pops the innermost selection mask.
    pub fn mask_pop(&mut self) {
        self.ops.push(Op::MaskPop);
    }

    /// Emits the `AND` merge over a mask source and its masked operand.
    pub fn merge_and(&mut self, a: RegId, b: RegId) -> Result<RegId, ExecError> {
        let dst = self.fresh()?;
        self.ops.push(Op::MergeAnd { dst, a, b });
        Ok(dst)
    }

    /// Emits the `OR` merge.
    pub fn merge_or(&mut self, a: RegId, b: RegId) -> Result<RegId, ExecError> {
        let dst = self.fresh()?;
        self.ops.push(Op::MergeOr { dst, a, b });
        Ok(dst)
    }

    /// Lowers a short-circuiting `lhs AND rhs`: the right-hand side (built
    /// by `rhs`) only executes on rows where `lhs` was truthy.
    pub fn and(
        &mut self,
        lhs: RegId,
        rhs: impl FnOnce(&mut Self) -> Result<RegId, ExecError>,
    ) -> Result<RegId, ExecError> {
        self.mask_and(lhs);
        let r = rhs(self)?;
        self.mask_pop();
        self.merge_and(lhs, r)
    }

    /// Lowers a short-circuiting `lhs OR rhs` (right-hand side only runs
    /// on rows where `lhs` was falsy).
    pub fn or(
        &mut self,
        lhs: RegId,
        rhs: impl FnOnce(&mut Self) -> Result<RegId, ExecError>,
    ) -> Result<RegId, ExecError> {
        self.mask_or(lhs);
        let r = rhs(self)?;
        self.mask_pop();
        self.merge_or(lhs, r)
    }

    /// Seals the program with `out` as the result register, counting one
    /// compiled program in the `just_exec_programs_compiled` metric.
    pub fn finish(self, out: RegId) -> Program {
        just_obs::global()
            .counter("just_exec_programs_compiled")
            .inc();
        Program {
            ops: self.ops,
            consts: self.consts,
            funcs: self.funcs,
            num_regs: self.next_reg,
            out,
            col_names: self.col_names,
        }
    }
}
