//! The tiny JSON subset used by `USERDATA { ... }` and `CONFIG { ... }`
//! hints: string-keyed objects with string/number values (exactly what
//! the paper's examples use), parsed from the SQL token stream.

use std::collections::BTreeMap;

/// A parsed hint object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Json {
    /// Key-value pairs (values kept as strings; callers parse further).
    pub entries: BTreeMap<String, String>,
}

impl Json {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches a value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|s| s.as_str())
    }

    /// Inserts a pair (for tests/builders).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.entries.insert(key.into(), value.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_access() {
        let mut j = Json::new();
        j.set("geomesa.indices.enabled", "z3");
        assert_eq!(j.get("geomesa.indices.enabled"), Some("z3"));
        assert_eq!(j.get("missing"), None);
    }
}
