//! JSON support for the SQL layer and the wire protocol.
//!
//! Two levels live here:
//!
//! * [`Json`] — the tiny flat subset used by `USERDATA { ... }` and
//!   `CONFIG { ... }` hints: string-keyed objects with string/number
//!   values (exactly what the paper's examples use), parsed from the SQL
//!   token stream.
//! * [`JsonValue`] — a full JSON document model (null/bool/int/float/
//!   string/array/object) with a hand-rolled parser and writer. The
//!   `just-server` wire protocol frames requests and responses as
//!   `JsonValue` documents, and [`crate::wire`] encodes query results
//!   through it.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed hint object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Json {
    /// Key-value pairs (values kept as strings; callers parse further).
    pub entries: BTreeMap<String, String>,
}

impl Json {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches a value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|s| s.as_str())
    }

    /// Inserts a pair (for tests/builders).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.entries.insert(key.into(), value.into());
    }
}

/// A full JSON value: the document model of the wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept exact as `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (sorted keys, so rendering is deterministic).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(BTreeMap::new())
    }

    /// Builder-style insert; panics if `self` is not an object.
    pub fn with(mut self, key: &str, value: JsonValue) -> JsonValue {
        match &mut self {
            JsonValue::Object(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("with() on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters"));
        }
        Ok(value)
    }

    /// Renders as compact JSON. Non-finite floats render as `null` (JSON
    /// has no NaN/Infinity); the wire protocol avoids this by encoding
    /// SQL floats as tagged strings (see [`crate::wire`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Float(f) if f.is_finite() => {
                let s = f.to_string();
                out.push_str(&s);
                // Keep the float/int distinction through a round-trip.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            JsonValue::Float(_) => out.push_str("null"),
            JsonValue::Str(s) => write_json_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

/// Nesting cap for the recursive-descent parser. The wire protocol
/// parses frames from unauthenticated peers, so recursion depth must be
/// bounded: without this, a payload of millions of `[`s overflows the
/// thread stack (process abort) instead of returning an error.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::at(
            *pos,
            format!("nesting deeper than {MAX_DEPTH} levels"),
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::at(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(map));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(JsonError::at(start, "expected a value"));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(JsonValue::Int(i));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| JsonError::at(start, format!("bad number '{text}'")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| JsonError::at(*pos, "invalid UTF-8"));
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| JsonError::at(*pos, "unterminated escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let first = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a \uXXXX pair must follow.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let second = parse_hex4(bytes, pos)?;
                                let combined = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + second.checked_sub(0xDC00).ok_or_else(|| {
                                        JsonError::at(*pos, "invalid low surrogate")
                                    })?;
                                char::from_u32(combined)
                                    .ok_or_else(|| JsonError::at(*pos, "invalid surrogate pair"))?
                            } else {
                                return Err(JsonError::at(*pos, "lone high surrogate"));
                            }
                        } else {
                            char::from_u32(first)
                                .ok_or_else(|| JsonError::at(*pos, "invalid \\u escape"))?
                        };
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => {
                        return Err(JsonError::at(
                            *pos,
                            format!("bad escape '\\{}'", *other as char),
                        ))
                    }
                }
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
    let text = std::str::from_utf8(hex).map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
    let v = u32::from_str_radix(text, 16).map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
    *pos += 4;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_access() {
        let mut j = Json::new();
        j.set("geomesa.indices.enabled", "z3");
        assert_eq!(j.get("geomesa.indices.enabled"), Some("z3"));
        assert_eq!(j.get("missing"), None);
    }

    fn roundtrip(text: &str) -> JsonValue {
        let v = JsonValue::parse(text).unwrap();
        let rendered = v.render();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), v, "{text}");
        v
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(roundtrip("null"), JsonValue::Null);
        assert_eq!(roundtrip("true"), JsonValue::Bool(true));
        assert_eq!(roundtrip("-42"), JsonValue::Int(-42));
        assert_eq!(roundtrip("9223372036854775807"), JsonValue::Int(i64::MAX));
        assert_eq!(roundtrip("1.5"), JsonValue::Float(1.5));
        assert_eq!(roundtrip("1e3"), JsonValue::Float(1000.0));
        assert_eq!(roundtrip("\"héllo\\n\\\"w\\\"\""), {
            JsonValue::Str("héllo\n\"w\"".into())
        });
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            JsonValue::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("é😀".into())
        );
        assert!(JsonValue::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = roundtrip(r#"{"a":[1,2.5,"x",null,true],"b":{"c":[]}}"#);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(
            v.get("b").unwrap().get("c"),
            Some(&JsonValue::Array(vec![]))
        );
    }

    #[test]
    fn floats_keep_their_type_through_roundtrip() {
        let v = JsonValue::Float(3.0);
        assert_eq!(v.render(), "3.0");
        assert_eq!(JsonValue::parse("3.0").unwrap(), JsonValue::Float(3.0));
        assert_eq!(JsonValue::parse("3").unwrap(), JsonValue::Int(3));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1.2.3", "\"abc", "[1] x", "nan", "-",
            "{1:2}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // Just under the cap parses fine.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(JsonValue::parse(&ok).is_ok());
        // A hostile million-bracket payload must return an error, not
        // blow the stack.
        for open in ["[", "{\"k\":"] {
            let hostile = open.repeat(1_000_000);
            let err = JsonValue::parse(&hostile).unwrap_err();
            assert!(err.message.contains("nesting"), "{}", err.message);
        }
    }

    #[test]
    fn builder_and_accessors() {
        let v = JsonValue::object()
            .with("op", JsonValue::Str("execute".into()))
            .with("n", JsonValue::Int(3));
        assert_eq!(v.get("op").unwrap().as_str(), Some("execute"));
        assert_eq!(v.get("n").unwrap().as_int(), Some(3));
        assert_eq!(v.get("missing"), None);
    }
}
