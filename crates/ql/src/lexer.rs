//! The JustQL lexer.

use crate::error::QlError;
use crate::Result;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operator.
    Punct(&'static str),
}

impl Token {
    /// The token rendered for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier '{s}'"),
            Token::Int(v) => format!("integer {v}"),
            Token::Float(v) => format!("float {v}"),
            Token::Str(s) => format!("string '{s}'"),
            Token::Punct(p) => format!("'{p}'"),
        }
    }

    /// Whether this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

const PUNCTS: &[&str] = &[
    "<=", ">=", "!=", "<>", "::", "(", ")", ",", ";", "*", "=", "<", ">", "+", "-", "/", "%", ".",
    "{", "}", ":",
];

/// Tokenizes a JustQL statement.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // String literal.
        if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                match bytes.get(i) {
                    None => return Err(QlError::Lex("unterminated string".into())),
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(&b) => {
                        s.push(b as char);
                        i += 1;
                    }
                }
            }
            tokens.push(Token::Str(s));
            continue;
        }
        // Number.
        if c.is_ascii_digit()
            || (c == '.'
                && bytes
                    .get(i + 1)
                    .map(|b| b.is_ascii_digit())
                    .unwrap_or(false))
        {
            let start = i;
            let mut saw_dot = false;
            let mut saw_exp = false;
            while i < bytes.len() {
                let b = bytes[i] as char;
                if b.is_ascii_digit() {
                    i += 1;
                } else if b == '.' && !saw_dot && !saw_exp {
                    saw_dot = true;
                    i += 1;
                } else if (b == 'e' || b == 'E') && !saw_exp && i > start {
                    saw_exp = true;
                    i += 1;
                    if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                        i += 1;
                    }
                } else {
                    break;
                }
            }
            let text = &input[start..i];
            if saw_dot || saw_exp {
                let v: f64 = text
                    .parse()
                    .map_err(|_| QlError::Lex(format!("bad number '{text}'")))?;
                tokens.push(Token::Float(v));
            } else {
                let v: i64 = text
                    .parse()
                    .map_err(|_| QlError::Lex(format!("bad number '{text}'")))?;
                tokens.push(Token::Int(v));
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token::Ident(input[start..i].to_string()));
            continue;
        }
        // Punctuation (longest match first).
        for p in PUNCTS {
            if input[i..].starts_with(p) {
                tokens.push(Token::Punct(p));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(QlError::Lex(format!("unexpected character '{c}'")));
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let t = tokenize("SELECT fid, geom FROM t WHERE fid = 52*9").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert!(t[0].is_kw("select"));
        assert_eq!(t[2], Token::Punct(","));
        assert_eq!(t[8], Token::Punct("="));
        assert_eq!(t[9], Token::Int(52));
        assert_eq!(t[10], Token::Punct("*"));
    }

    #[test]
    fn numbers_and_strings() {
        let t = tokenize("1 2.5 1e3 2.5E-2 'it''s' ''").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Float(0.025),
                Token::Str("it's".into()),
                Token::Str(String::new()),
            ]
        );
    }

    #[test]
    fn multi_char_punct() {
        let t = tokenize("a <= b >= c != d <> e :: f").unwrap();
        assert!(t.contains(&Token::Punct("<=")));
        assert!(t.contains(&Token::Punct(">=")));
        assert!(t.contains(&Token::Punct("!=")));
        assert!(t.contains(&Token::Punct("<>")));
        assert!(t.contains(&Token::Punct("::")));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn json_hint_tokens() {
        let t = tokenize("{'a': 'z3'}").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Punct("{"),
                Token::Str("a".into()),
                Token::Punct(":"),
                Token::Str("z3".into()),
                Token::Punct("}"),
            ]
        );
    }
}
