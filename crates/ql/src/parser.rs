//! The JustQL recursive-descent parser (the repository's ANTLR).

use crate::ast::*;
use crate::error::QlError;
use crate::json::Json;
use crate::lexer::{tokenize, Token};
use crate::Result;
use just_storage::Value;

/// Parses a standalone expression (used for `LOAD ... CONFIG` mappings
/// and `FILTER` strings).
pub fn parse_expr(text: &str) -> Result<Expr> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(e)
}

/// Parses one JustQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_punct(";").ok();
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> QlError {
        let at = self
            .tokens
            .get(self.pos)
            .map(|t| t.describe())
            .unwrap_or_else(|| "end of input".to_string());
        QlError::Parse(format!("{msg} (at {at})"))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn peek_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Token::Punct(x)) if *x == p)
    }

    fn eat_punct(&mut self, p: &str) -> Result<()> {
        if self.peek_punct(p) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{p}'")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Str(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected string literal"))
            }
        }
    }

    fn region_index(&mut self) -> Result<usize> {
        match self.advance() {
            Some(Token::Int(v)) if v >= 0 => Ok(v as usize),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected region index"))
            }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("create") {
            return self.create();
        }
        if self.eat_kw("drop") {
            let view = if self.eat_kw("view") {
                true
            } else {
                self.expect_kw("table")?;
                false
            };
            let name = self.ident()?;
            return Ok(Statement::Drop { view, name });
        }
        if self.eat_kw("show") {
            let target = if self.eat_kw("views") {
                ShowTarget::Views
            } else if self.eat_kw("tables") {
                ShowTarget::Tables
            } else if self.eat_kw("metrics") {
                ShowTarget::Metrics
            } else if self.eat_kw("queries") {
                ShowTarget::Queries
            } else if self.eat_kw("regions") {
                ShowTarget::Regions
            } else if self.eat_kw("events") {
                let limit = if self.eat_kw("limit") {
                    match self.advance() {
                        Some(Token::Int(v)) if v >= 0 => Some(v as usize),
                        _ => return Err(self.err("expected LIMIT count")),
                    }
                } else {
                    None
                };
                ShowTarget::Events { limit }
            } else {
                return Err(self.err("expected TABLES, VIEWS, METRICS, QUERIES, REGIONS or EVENTS"));
            };
            return Ok(Statement::Show { target });
        }
        if self.eat_kw("kill") {
            self.expect_kw("query")?;
            let id = match self.advance() {
                Some(Token::Int(v)) if v >= 0 => v as u64,
                _ => return Err(self.err("expected query id")),
            };
            return Ok(Statement::KillQuery { id });
        }
        if self.eat_kw("split") {
            self.expect_kw("region")?;
            let table = self.ident()?;
            let region = self.region_index()?;
            return Ok(Statement::SplitRegion { table, region });
        }
        if self.eat_kw("merge") {
            self.expect_kw("regions")?;
            let table = self.ident()?;
            let first = self.region_index()?;
            let second = self.region_index()?;
            if second != first + 1 {
                return Err(self.err("MERGE REGIONS takes two adjacent region indices"));
            }
            return Ok(Statement::MergeRegions {
                table,
                first,
                second,
            });
        }
        if self.eat_kw("desc") || self.eat_kw("describe") {
            // Optional TABLE/VIEW keyword.
            let _ = self.eat_kw("table") || self.eat_kw("view");
            let name = self.ident()?;
            return Ok(Statement::Desc { name });
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            let table = self.ident()?;
            self.expect_kw("values")?;
            let mut rows = Vec::new();
            loop {
                self.eat_punct("(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.peek_punct(",") {
                        break;
                    }
                    self.eat_punct(",")?;
                }
                self.eat_punct(")")?;
                rows.push(row);
                if !self.peek_punct(",") {
                    break;
                }
                self.eat_punct(",")?;
            }
            return Ok(Statement::Insert { table, rows });
        }
        if self.eat_kw("load") {
            // LOAD csv:'path' TO [geomesa:]table CONFIG {...} [FILTER '...']
            let scheme = self.ident()?;
            self.eat_punct(":")?;
            let path = match self.advance() {
                Some(Token::Str(s)) => s,
                Some(Token::Ident(s)) => s,
                _ => return Err(self.err("expected source path")),
            };
            self.expect_kw("to")?;
            let mut table = self.ident()?;
            if self.peek_punct(":") {
                // `geomesa:tableName` — drop the scheme.
                self.eat_punct(":")?;
                table = self.ident()?;
            }
            self.expect_kw("config")?;
            let config = self.json()?;
            let filter = if self.eat_kw("filter") {
                Some(self.string()?)
            } else {
                None
            };
            return Ok(Statement::Load {
                source: format!("{scheme}:{path}"),
                table,
                config,
                filter,
            });
        }
        if self.eat_kw("store") {
            self.expect_kw("view")?;
            let view = self.ident()?;
            self.expect_kw("to")?;
            self.expect_kw("table")?;
            let table = self.ident()?;
            return Ok(Statement::StoreView { view, table });
        }
        if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            if !self.peek_kw("select") {
                return Err(self.err("expected SELECT after EXPLAIN"));
            }
            let q = self.select()?;
            return Ok(Statement::Explain {
                analyze,
                query: Box::new(q),
            });
        }
        if self.peek_kw("select") {
            let q = self.select()?;
            return Ok(Statement::Query(Box::new(q)));
        }
        Err(self.err("expected a statement"))
    }

    fn create(&mut self) -> Result<Statement> {
        if self.eat_kw("view") {
            let name = self.ident()?;
            self.expect_kw("as")?;
            let query = self.select()?;
            return Ok(Statement::CreateView {
                name,
                query: Box::new(query),
            });
        }
        self.expect_kw("table")?;
        let name = self.ident()?;
        if self.eat_kw("as") {
            let plugin = self.ident()?;
            let userdata = self.opt_userdata()?;
            return Ok(Statement::CreatePluginTable {
                name,
                plugin,
                userdata,
            });
        }
        self.eat_punct("(")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let type_name = self.ident()?;
            let mut options = Vec::new();
            while self.peek_punct(":") {
                self.eat_punct(":")?;
                let mut opt = self.ident()?;
                // `primary key` is two idents; `srid=4326` is ident=value.
                if opt.eq_ignore_ascii_case("primary") && self.eat_kw("key") {
                    opt = "primary key".to_string();
                } else if self.peek_punct("=") {
                    self.eat_punct("=")?;
                    let value = match self.advance() {
                        Some(Token::Ident(s)) => s,
                        Some(Token::Int(v)) => v.to_string(),
                        Some(Token::Str(s)) => s,
                        _ => return Err(self.err("expected option value")),
                    };
                    opt = format!("{opt}={value}");
                }
                options.push(opt);
            }
            columns.push(ColumnDef {
                name: col_name,
                type_name,
                options,
            });
            if !self.peek_punct(",") {
                break;
            }
            self.eat_punct(",")?;
        }
        self.eat_punct(")")?;
        let userdata = self.opt_userdata()?;
        Ok(Statement::CreateTable {
            name,
            columns,
            userdata,
        })
    }

    fn opt_userdata(&mut self) -> Result<Option<Json>> {
        if self.eat_kw("userdata") {
            Ok(Some(self.json()?))
        } else {
            Ok(None)
        }
    }

    fn json(&mut self) -> Result<Json> {
        self.eat_punct("{")?;
        let mut json = Json::new();
        if !self.peek_punct("}") {
            loop {
                let key = self.string()?;
                self.eat_punct(":")?;
                let value = match self.advance() {
                    Some(Token::Str(s)) => s,
                    Some(Token::Int(v)) => v.to_string(),
                    Some(Token::Float(v)) => v.to_string(),
                    Some(Token::Ident(s)) => s,
                    _ => return Err(self.err("expected hint value")),
                };
                json.set(key, value);
                if !self.peek_punct(",") {
                    break;
                }
                self.eat_punct(",")?;
            }
        }
        self.eat_punct("}")?;
        Ok(json)
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw("as") {
                Some(self.ident()?)
            } else if let Some(Token::Ident(s)) = self.peek() {
                // Bare alias, unless it's a clause keyword.
                let lowered = s.to_ascii_lowercase();
                const CLAUSES: &[&str] = &[
                    "from", "where", "group", "order", "limit", "join", "on", "as",
                ];
                if CLAUSES.contains(&lowered.as_str()) {
                    None
                } else {
                    Some(self.ident()?)
                }
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.peek_punct(",") {
                break;
            }
            self.eat_punct(",")?;
        }
        let from = if self.eat_kw("from") {
            Some(self.parse_from_item()?)
        } else {
            None
        };
        let join = if self.eat_kw("join") {
            let right = self.parse_from_item()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            Some((right, on))
        } else {
            None
        };
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.peek_punct(",") {
                    break;
                }
                self.eat_punct(",")?;
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((e, asc));
                if !self.peek_punct(",") {
                    break;
                }
                self.eat_punct(",")?;
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.advance() {
                Some(Token::Int(v)) if v >= 0 => Some(v as usize),
                _ => return Err(self.err("expected LIMIT count")),
            }
        } else {
            None
        };
        Ok(Select {
            items,
            from,
            join,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        if self.peek_punct("(") {
            self.eat_punct("(")?;
            let query = self.select()?;
            self.eat_punct(")")?;
            let alias = self.opt_alias()?;
            return Ok(FromItem::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = self.opt_alias()?;
        Ok(FromItem::Table { name, alias })
    }

    fn opt_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        if let Some(Token::Ident(s)) = self.peek() {
            let lowered = s.to_ascii_lowercase();
            const CLAUSES: &[&str] = &[
                "where", "group", "order", "limit", "join", "on", "select", "from",
            ];
            if !CLAUSES.contains(&lowered.as_str()) {
                return Ok(Some(self.ident()?));
            }
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let e = self.not_expr()?;
            return Ok(Expr::Unary {
                not: true,
                expr: Box::new(e),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // BETWEEN ... AND ...
        if self.eat_kw("between") {
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
            });
        }
        // geom WITHIN mbr
        if self.eat_kw("within") {
            let rhs = self.additive()?;
            return Ok(Expr::Binary {
                op: BinOp::Within,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        // geom IN st_KNN(...)
        if self.eat_kw("in") {
            let func = self.additive()?;
            if !matches!(func, Expr::Func { .. }) {
                return Err(self.err("IN requires a generator function like st_KNN"));
            }
            return Ok(Expr::InFunc {
                expr: Box::new(lhs),
                func: Box::new(func),
            });
        }
        let op = match self.peek() {
            Some(Token::Punct("=")) => Some(BinOp::Eq),
            Some(Token::Punct("!=")) | Some(Token::Punct("<>")) => Some(BinOp::Ne),
            Some(Token::Punct("<")) => Some(BinOp::Lt),
            Some(Token::Punct("<=")) => Some(BinOp::Le),
            Some(Token::Punct(">")) => Some(BinOp::Gt),
            Some(Token::Punct(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.additive()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct("+")) => BinOp::Add,
                Some(Token::Punct("-")) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct("*")) => BinOp::Mul,
                Some(Token::Punct("/")) => BinOp::Div,
                Some(Token::Punct("%")) => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.peek_punct("-") {
            self.advance();
            let e = self.unary()?;
            return Ok(Expr::Unary {
                not: false,
                expr: Box::new(e),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Token::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Token::Float(v)) => Ok(Expr::Literal(Value::Float(v))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Punct("*")) => Ok(Expr::Star),
            Some(Token::Punct("(")) => {
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                let lowered = name.to_ascii_lowercase();
                match lowered.as_str() {
                    "true" => return Ok(Expr::Literal(Value::Bool(true))),
                    "false" => return Ok(Expr::Literal(Value::Bool(false))),
                    "null" => return Ok(Expr::Literal(Value::Null)),
                    // Clause keywords can never be bare column references;
                    // catching them here turns `SELECT FROM` into a clean
                    // syntax error instead of a bogus column.
                    "select" | "from" | "where" | "group" | "order" | "limit" | "join" | "on"
                    | "by" | "values" | "insert" | "create" | "drop" | "between" | "within"
                    | "and" | "or" | "not" => {
                        self.pos -= 1;
                        return Err(self.err("expected expression"));
                    }
                    _ => {}
                }
                if self.peek_punct("(") {
                    self.eat_punct("(")?;
                    let mut args = Vec::new();
                    if !self.peek_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.peek_punct(",") {
                                break;
                            }
                            self.eat_punct(",")?;
                        }
                    }
                    self.eat_punct(")")?;
                    return Ok(Expr::Func {
                        name: lowered,
                        args,
                    });
                }
                if self.peek_punct(".") {
                    self.eat_punct(".")?;
                    if self.peek_punct("*") {
                        self.advance();
                        return Ok(Expr::Star);
                    }
                    let col = self.ident()?;
                    return Ok(Expr::Column(format!("{name}.{col}")));
                }
                Ok(Expr::Column(name))
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(QlError::Parse(format!(
                    "expected expression, found {}",
                    other
                        .map(|t| t.describe())
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table_paper_example() {
        let sql = "CREATE TABLE t (
            fid integer:primary key,
            name string,
            time date,
            geom point:srid=4326,
            gpsList st_series:compress=gzip
        ) USERDATA {'geomesa.indices.enabled':'z3'}";
        match parse(sql).unwrap() {
            Statement::CreateTable {
                name,
                columns,
                userdata,
            } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 5);
                assert_eq!(columns[0].options, vec!["primary key"]);
                assert_eq!(columns[3].options, vec!["srid=4326"]);
                assert_eq!(columns[4].options, vec!["compress=gzip"]);
                assert_eq!(userdata.unwrap().get("geomesa.indices.enabled"), Some("z3"));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parse_plugin_table() {
        match parse("CREATE TABLE tr AS trajectory").unwrap() {
            Statement::CreatePluginTable { name, plugin, .. } => {
                assert_eq!(name, "tr");
                assert_eq!(plugin, "trajectory");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_paper_select() {
        let sql = "SELECT name, geom FROM (SELECT * FROM t1) t \
                   WHERE fid=52*9 AND geom WITHIN st_makeMBR(1, 2, 3, 4) \
                   ORDER BY time";
        match parse(sql).unwrap() {
            Statement::Query(q) => {
                assert_eq!(q.items.len(), 2);
                assert!(matches!(q.from, Some(FromItem::Subquery { .. })));
                assert!(q.where_clause.is_some());
                assert_eq!(q.order_by.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_st_range_query() {
        let sql = "SELECT fid FROM t WHERE geom WITHIN st_makeMBR(1,2,3,4) \
                   AND time BETWEEN 100 AND 200";
        match parse(sql).unwrap() {
            Statement::Query(q) => {
                let w = q.where_clause.unwrap();
                match w {
                    Expr::Binary {
                        op: BinOp::And,
                        lhs,
                        rhs,
                    } => {
                        assert!(matches!(
                            *lhs,
                            Expr::Binary {
                                op: BinOp::Within,
                                ..
                            }
                        ));
                        assert!(matches!(*rhs, Expr::Between { .. }));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_knn_query() {
        let sql = "SELECT fid FROM t WHERE geom IN st_KNN(st_makePoint(116.4, 39.9), 50)";
        match parse(sql).unwrap() {
            Statement::Query(q) => {
                assert!(matches!(q.where_clause, Some(Expr::InFunc { .. })));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_insert_multi_row() {
        let sql = "INSERT INTO t VALUES (1, 'a', st_makePoint(1,2)), (2, 'b', null)";
        match parse(sql).unwrap() {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 3);
                assert_eq!(rows[1][2], Expr::Literal(Value::Null));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_group_order_limit() {
        let sql = "SELECT name, count(*) AS n FROM t GROUP BY name \
                   ORDER BY n DESC, name LIMIT 10";
        match parse(sql).unwrap() {
            Statement::Query(q) => {
                assert_eq!(q.group_by.len(), 1);
                assert_eq!(q.order_by.len(), 2);
                assert!(!q.order_by[0].1, "first key is DESC");
                assert!(q.order_by[1].1);
                assert_eq!(q.limit, Some(10));
                assert_eq!(q.items[1].alias.as_deref(), Some("n"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_join() {
        let sql = "SELECT a.x, b.y FROM ta a JOIN tb b ON a.k = b.k";
        match parse(sql).unwrap() {
            Statement::Query(q) => {
                assert!(q.join.is_some());
                let (item, on) = q.join.unwrap();
                assert!(
                    matches!(item, FromItem::Table { ref alias, .. } if alias.as_deref() == Some("b"))
                );
                assert!(matches!(on, Expr::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_load() {
        let sql = "LOAD csv:'/data/orders.csv' TO geomesa:orders CONFIG {
            'fid': 'to_int(id)',
            'geom': 'lng_lat_to_point(lng, lat)'
        } FILTER 'city = ''beijing'''";
        match parse(sql).unwrap() {
            Statement::Load {
                source,
                table,
                config,
                filter,
            } => {
                assert_eq!(source, "csv:/data/orders.csv");
                assert_eq!(table, "orders");
                assert_eq!(config.get("fid"), Some("to_int(id)"));
                assert_eq!(filter.as_deref(), Some("city = 'beijing'"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_misc_statements() {
        assert!(matches!(
            parse("SHOW TABLES").unwrap(),
            Statement::Show {
                target: ShowTarget::Tables
            }
        ));
        assert!(matches!(
            parse("SHOW VIEWS").unwrap(),
            Statement::Show {
                target: ShowTarget::Views
            }
        ));
        assert!(matches!(
            parse("DROP VIEW v").unwrap(),
            Statement::Drop { view: true, .. }
        ));
        assert!(matches!(
            parse("DESC TABLE t").unwrap(),
            Statement::Desc { .. }
        ));
        assert!(matches!(
            parse("STORE VIEW v TO TABLE t").unwrap(),
            Statement::StoreView { .. }
        ));
        assert!(matches!(
            parse("CREATE VIEW v AS SELECT 1").unwrap(),
            Statement::CreateView { .. }
        ));
    }

    #[test]
    fn parse_observability_statements() {
        assert!(matches!(
            parse("SHOW METRICS").unwrap(),
            Statement::Show {
                target: ShowTarget::Metrics
            }
        ));
        assert!(matches!(
            parse("show queries;").unwrap(),
            Statement::Show {
                target: ShowTarget::Queries
            }
        ));
        assert!(matches!(
            parse("SHOW REGIONS").unwrap(),
            Statement::Show {
                target: ShowTarget::Regions
            }
        ));
        assert!(matches!(
            parse("SHOW EVENTS").unwrap(),
            Statement::Show {
                target: ShowTarget::Events { limit: None }
            }
        ));
        assert!(matches!(
            parse("SHOW EVENTS LIMIT 25").unwrap(),
            Statement::Show {
                target: ShowTarget::Events { limit: Some(25) }
            }
        ));
        assert!(matches!(
            parse("KILL QUERY 42").unwrap(),
            Statement::KillQuery { id: 42 }
        ));
        assert!(parse("SHOW NONSENSE").is_err());
        assert!(parse("SHOW EVENTS LIMIT").is_err());
        assert!(parse("KILL QUERY").is_err());
        assert!(parse("KILL 7").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("CREATE TABLE").is_err());
        assert!(parse("SELECT 1 extra garbage, ,").is_err());
        assert!(parse("INSERT INTO t VALUES 1, 2").is_err());
        assert!(parse("SELECT a WHERE geom IN 5").is_err());
    }

    #[test]
    fn operator_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        match parse("SELECT 1 + 2 * 3").unwrap() {
            Statement::Query(q) => match &q.items[0].expr {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
