//! Expression evaluation and the built-in function registry (the paper's
//! "plenty of out-of-the-box spatio-temporal analysis functions").
//!
//! Value semantics (truthiness, coercion, NULL rules, operator kernels)
//! live in `just_exec::scalar` — the single definition shared with the
//! compiled vectorized path — and this module delegates to them, so the
//! row interpreter here and the VM in `just-exec` cannot drift apart.

use crate::ast::{BinOp, Expr};
use crate::error::QlError;
use crate::Result;
use just_analysis::{
    noise_filter, segment, stay_points, NoiseFilterParams, SegmentParams, StayPointParams,
    Trajectory,
};
use just_exec::scalar;
use just_exec::{ArithOp, CmpOp, ExecError};
use just_geo::{parse_wkt, Geometry, Point, Rect, StPoint};
use just_storage::Value;

/// Maps a `just-exec` kernel error into the ql error type (the message
/// text is shared verbatim between the two paths).
pub(crate) fn exec_err(e: ExecError) -> QlError {
    QlError::Eval(e.0)
}

/// The arithmetic kernel op for a `BinOp`, if it is one.
pub(crate) fn arith_op(op: BinOp) -> Option<ArithOp> {
    match op {
        BinOp::Add => Some(ArithOp::Add),
        BinOp::Sub => Some(ArithOp::Sub),
        BinOp::Mul => Some(ArithOp::Mul),
        BinOp::Div => Some(ArithOp::Div),
        BinOp::Mod => Some(ArithOp::Mod),
        _ => None,
    }
}

/// The comparison kernel op for a `BinOp`, if it is one.
pub(crate) fn cmp_op(op: BinOp) -> Option<CmpOp> {
    match op {
        BinOp::Eq => Some(CmpOp::Eq),
        BinOp::Ne => Some(CmpOp::Ne),
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::Le => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::Ge => Some(CmpOp::Ge),
        _ => None,
    }
}

/// Resolves a (possibly qualified) column name against a header.
pub fn resolve_column(name: &str, columns: &[String]) -> Result<usize> {
    // Exact (case-insensitive) match first.
    if let Some(i) = columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
        return Ok(i);
    }
    // Bare name matching a qualified column (unique suffix `.name`).
    if !name.contains('.') {
        let suffix = format!(".{}", name.to_ascii_lowercase());
        let hits: Vec<usize> = columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.to_ascii_lowercase().ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        match hits.len() {
            1 => return Ok(hits[0]),
            n if n > 1 => return Err(QlError::Analyze(format!("ambiguous column '{name}'"))),
            _ => {}
        }
    } else {
        // Qualified name against bare header: try the bare part.
        let bare = name.rsplit('.').next().unwrap();
        if let Some(i) = columns.iter().position(|c| c.eq_ignore_ascii_case(bare)) {
            return Ok(i);
        }
    }
    Err(QlError::Analyze(format!("unknown column '{name}'")))
}

/// Evaluates an expression over one row.
pub fn eval(expr: &Expr, row: &[Value], columns: &[String]) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => {
            let idx = resolve_column(name, columns)?;
            Ok(row[idx].clone())
        }
        Expr::Star => Err(QlError::Eval("'*' outside count(*)".into())),
        Expr::Unary { not, expr } => {
            let v = eval(expr, row, columns)?;
            if *not {
                scalar::logical_not(&v).map_err(exec_err)
            } else {
                scalar::neg(&v).map_err(exec_err)
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, row, columns)?;
            match op {
                // Short-circuiting logic.
                BinOp::And => {
                    if !truthy(&l) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(rhs, row, columns)?;
                    Ok(Value::Bool(truthy(&r)))
                }
                BinOp::Or => {
                    if truthy(&l) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(rhs, row, columns)?;
                    Ok(Value::Bool(truthy(&r)))
                }
                _ => {
                    let r = eval(rhs, row, columns)?;
                    binary(*op, l, r)
                }
            }
        }
        Expr::Between { expr, lo, hi } => {
            let v = eval(expr, row, columns)?;
            let lo = eval(lo, row, columns)?;
            let hi = eval(hi, row, columns)?;
            scalar::between(&v, &lo, &hi).map_err(exec_err)
        }
        Expr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, row, columns)?);
            }
            call(name, vals)
        }
        Expr::InFunc { .. } => Err(QlError::Eval(
            "st_KNN can only appear as the sole WHERE predicate".into(),
        )),
    }
}

/// Evaluates a constant expression (no columns in scope).
pub fn eval_const(expr: &Expr) -> Result<Value> {
    eval(expr, &[], &[])
}

/// SQL truthiness: non-zero / non-empty / true. NULL is false.
pub fn truthy(v: &Value) -> bool {
    scalar::truthy(v)
}

fn numeric(v: &Value) -> Option<f64> {
    scalar::numeric(v)
}

/// Applies a non-logical binary operator.
pub fn binary(op: BinOp, l: Value, r: Value) -> Result<Value> {
    if let Some(a) = arith_op(op) {
        return scalar::arith(a, &l, &r).map_err(exec_err);
    }
    if op == BinOp::Within {
        return scalar::within(&l, &r).map_err(exec_err);
    }
    let c = cmp_op(op).expect("logical ops are handled by eval()");
    scalar::cmp(c, &l, &r).map_err(exec_err)
}

/// Total-ordering comparison with numeric coercion (used by predicates,
/// ORDER BY and MIN/MAX).
pub fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    scalar::compare(l, r).map_err(exec_err)
}

fn f64_arg(vals: &[Value], i: usize, name: &str) -> Result<f64> {
    vals.get(i)
        .and_then(numeric)
        .ok_or_else(|| QlError::Eval(format!("{name}: argument {i} must be numeric")))
}

fn geom_arg<'a>(vals: &'a [Value], i: usize, name: &str) -> Result<&'a Geometry> {
    match vals.get(i) {
        Some(Value::Geom(g)) => Ok(g),
        _ => Err(QlError::Eval(format!(
            "{name}: argument {i} must be a geometry"
        ))),
    }
}

fn gps_trajectory(vals: &[Value], i: usize, name: &str) -> Result<Trajectory> {
    match vals.get(i) {
        Some(Value::GpsList(samples)) => Ok(Trajectory::new(
            "q",
            samples
                .iter()
                .map(|s| StPoint::new(s.lng, s.lat, s.time_ms))
                .collect(),
        )),
        _ => Err(QlError::Eval(format!(
            "{name}: argument {i} must be an st_series"
        ))),
    }
}

fn traj_to_gps(t: &Trajectory) -> Value {
    Value::GpsList(
        t.points
            .iter()
            .map(|p| just_compress::gps::GpsSample {
                lng: p.point.x,
                lat: p.point.y,
                time_ms: p.time_ms,
            })
            .collect(),
    )
}

fn transform_point(vals: &[Value], name: &str, f: fn(Point) -> Point) -> Result<Value> {
    match vals {
        [Value::Geom(Geometry::Point(p))] => Ok(Value::Geom(Geometry::Point(f(*p)))),
        [a, b] => {
            let p = Point::new(
                numeric(a).ok_or_else(|| QlError::Eval(format!("{name}: bad lng")))?,
                numeric(b).ok_or_else(|| QlError::Eval(format!("{name}: bad lat")))?,
            );
            Ok(Value::Geom(Geometry::Point(f(p))))
        }
        _ => Err(QlError::Eval(format!(
            "{name}: expects a point or (lng, lat)"
        ))),
    }
}

/// Calls a built-in scalar function. `name` must be lower-case.
pub fn call(name: &str, vals: Vec<Value>) -> Result<Value> {
    match name {
        // --- constructors -------------------------------------------------
        "st_makepoint" | "st_point" => {
            let x = f64_arg(&vals, 0, name)?;
            let y = f64_arg(&vals, 1, name)?;
            Ok(Value::Geom(Geometry::Point(Point::new(x, y))))
        }
        "st_makembr" => {
            let a = f64_arg(&vals, 0, name)?;
            let b = f64_arg(&vals, 1, name)?;
            let c = f64_arg(&vals, 2, name)?;
            let d = f64_arg(&vals, 3, name)?;
            Ok(Value::Geom(Geometry::Rect(Rect::new(a, b, c, d))))
        }
        "st_geomfromtext" => match vals.first() {
            Some(Value::Str(s)) => Ok(Value::Geom(
                parse_wkt(s).map_err(|e| QlError::Eval(e.to_string()))?,
            )),
            _ => Err(QlError::Eval("st_geomFromText expects WKT".into())),
        },
        // --- accessors ----------------------------------------------------
        "st_astext" => Ok(Value::Str(geom_arg(&vals, 0, name)?.to_wkt())),
        "st_x" => match geom_arg(&vals, 0, name)? {
            Geometry::Point(p) => Ok(Value::Float(p.x)),
            _ => Err(QlError::Eval("st_x expects a point".into())),
        },
        "st_y" => match geom_arg(&vals, 0, name)? {
            Geometry::Point(p) => Ok(Value::Float(p.y)),
            _ => Err(QlError::Eval("st_y expects a point".into())),
        },
        // --- predicates & measures -----------------------------------------
        "st_within" => {
            let g = geom_arg(&vals, 0, name)?;
            let t = geom_arg(&vals, 1, name)?;
            let rect = match t {
                Geometry::Rect(r) => *r,
                other => other.mbr(),
            };
            Ok(Value::Bool(g.within_rect(&rect)))
        }
        "st_intersects" => {
            let g = geom_arg(&vals, 0, name)?;
            let t = geom_arg(&vals, 1, name)?;
            Ok(Value::Bool(g.intersects_rect(&t.mbr())))
        }
        "st_distance" => {
            let a = geom_arg(&vals, 0, name)?;
            let b = geom_arg(&vals, 1, name)?;
            Ok(Value::Float(a.distance_to_point(&b.representative_point())))
        }
        "st_distancesphere" | "st_distancem" => {
            let a = geom_arg(&vals, 0, name)?;
            let b = geom_arg(&vals, 1, name)?;
            Ok(Value::Float(just_geo::haversine_m(
                &a.representative_point(),
                &b.representative_point(),
            )))
        }
        // --- 1-1 analysis: coordinate transforms ---------------------------
        "st_wgs84togcj02" => transform_point(&vals, name, just_geo::wgs84_to_gcj02),
        "st_gcj02towgs84" => transform_point(&vals, name, just_geo::gcj02_to_wgs84),
        "st_gcj02tobd09" => transform_point(&vals, name, just_geo::gcj02_to_bd09),
        "st_bd09togcj02" => transform_point(&vals, name, just_geo::bd09_to_gcj02),
        // --- trajectory preprocessing over st_series -----------------------
        "st_trajnoisefilter" => {
            let t = gps_trajectory(&vals, 0, name)?;
            let max_speed = if vals.len() > 1 {
                f64_arg(&vals, 1, name)?
            } else {
                NoiseFilterParams::default().max_speed_ms
            };
            Ok(traj_to_gps(&noise_filter(
                &t,
                &NoiseFilterParams {
                    max_speed_ms: max_speed,
                },
            )))
        }
        // --- scalar utilities ----------------------------------------------
        "abs" => match vals.first() {
            Some(Value::Int(i)) => Ok(Value::Int(i.abs())),
            Some(v) => Ok(Value::Float(
                numeric(v)
                    .ok_or_else(|| QlError::Eval("abs: non-numeric".into()))?
                    .abs(),
            )),
            None => Err(QlError::Eval("abs: missing argument".into())),
        },
        "lower" => match vals.first() {
            Some(Value::Str(s)) => Ok(Value::Str(s.to_lowercase())),
            _ => Err(QlError::Eval("lower expects a string".into())),
        },
        "upper" => match vals.first() {
            Some(Value::Str(s)) => Ok(Value::Str(s.to_uppercase())),
            _ => Err(QlError::Eval("upper expects a string".into())),
        },
        "length" => match vals.first() {
            Some(Value::Str(s)) => Ok(Value::Int(s.chars().count() as i64)),
            Some(Value::GpsList(l)) => Ok(Value::Int(l.len() as i64)),
            _ => Err(QlError::Eval("length expects a string or st_series".into())),
        },
        "coalesce" => Ok(vals
            .into_iter()
            .find(|v| !v.is_null())
            .unwrap_or(Value::Null)),
        // Deterministic slow-query generator: sleeps for the given number
        // of milliseconds (capped at 10s per call) and returns it. Marked
        // volatile so the optimizer never folds the sleep away — placing
        // it in a residual WHERE clause slows every *batch* of a scan,
        // which is how the observability tests make a query reliably
        // killable mid-stream.
        "sleep_ms" => {
            let ms = f64_arg(&vals, 0, name)?;
            if !ms.is_finite() || ms < 0.0 {
                return Err(QlError::Eval("sleep_ms: duration must be >= 0".into()));
            }
            let ms = (ms as u64).min(10_000);
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(Value::Int(ms as i64))
        }
        // --- CSV-loading conversions (the paper's CONFIG functions) --------
        "to_int" => match vals.first() {
            Some(Value::Int(i)) => Ok(Value::Int(*i)),
            Some(Value::Float(f)) => Ok(Value::Int(*f as i64)),
            Some(Value::Str(s)) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| QlError::Eval(format!("to_int: '{s}'"))),
            _ => Err(QlError::Eval("to_int: bad argument".into())),
        },
        "to_float" => match vals.first().and_then(numeric) {
            Some(f) => Ok(Value::Float(f)),
            None => Err(QlError::Eval("to_float: bad argument".into())),
        },
        "to_string" => Ok(Value::Str(
            vals.first().map(|v| v.to_string()).unwrap_or_default(),
        )),
        "long_to_date_ms" => match vals.first().and_then(numeric) {
            Some(f) => Ok(Value::Date(f as i64)),
            None => Err(QlError::Eval("long_to_date_ms: bad argument".into())),
        },
        "lng_lat_to_point" => {
            let x = f64_arg(&vals, 0, name)?;
            let y = f64_arg(&vals, 1, name)?;
            Ok(Value::Geom(Geometry::Point(Point::new(x, y))))
        }
        other => Err(QlError::Analyze(format!("unknown function '{other}'"))),
    }
}

/// Output of a table function: the generated column names plus the rows
/// expanded from one input row.
pub type TableRows = (Vec<String>, Vec<Vec<Value>>);

/// 1-N table functions: one input row expands to many output rows.
/// Returns `(output column names, rows per input)`.
pub fn table_function(name: &str, vals: Vec<Value>) -> Result<Option<TableRows>> {
    match name {
        "st_trajsegmentation" => {
            let t = gps_trajectory(&vals, 0, name)?;
            let segs = segment(&t, &SegmentParams::default());
            Ok(Some((
                vec!["segment".into()],
                segs.iter().map(|s| vec![traj_to_gps(s)]).collect(),
            )))
        }
        "st_trajstaypoint" => {
            let t = gps_trajectory(&vals, 0, name)?;
            let params = if vals.len() >= 3 {
                StayPointParams {
                    max_radius_m: f64_arg(&vals, 1, name)?,
                    min_duration_ms: f64_arg(&vals, 2, name)? as i64,
                }
            } else {
                StayPointParams::default()
            };
            let stays = stay_points(&t, &params);
            Ok(Some((
                vec!["stay_point".into(), "t_arrive".into(), "t_leave".into()],
                stays
                    .iter()
                    .map(|s| {
                        vec![
                            Value::Geom(Geometry::Point(s.centroid)),
                            Value::Date(s.t_arrive),
                            Value::Date(s.t_leave),
                        ]
                    })
                    .collect(),
            )))
        }
        _ => Ok(None),
    }
}

/// Whether the name is a 1-N table function.
pub fn is_table_function(name: &str) -> bool {
    matches!(name, "st_trajsegmentation" | "st_trajstaypoint")
}

/// Whether the name is the N-M clustering function.
pub fn is_cluster_function(name: &str) -> bool {
    name == "st_dbscan"
}

/// Whether the name is an aggregate.
pub fn is_aggregate(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max")
}

/// Whether the function is volatile: evaluating it has side effects (or
/// is non-deterministic), so the optimizer must not constant-fold it.
pub fn is_volatile(name: &str) -> bool {
    name == "sleep_ms"
}

/// Whether the name is any callable the executor knows (scalar, table,
/// cluster or aggregate) — used by upfront analysis so unknown functions
/// error even over empty relations.
pub fn is_known_function(name: &str) -> bool {
    is_aggregate(name)
        || is_table_function(name)
        || is_cluster_function(name)
        || name == "st_knn"
        || matches!(
            name,
            "st_makepoint"
                | "st_point"
                | "st_makembr"
                | "st_geomfromtext"
                | "st_astext"
                | "st_x"
                | "st_y"
                | "st_within"
                | "st_intersects"
                | "st_distance"
                | "st_distancesphere"
                | "st_distancem"
                | "st_wgs84togcj02"
                | "st_gcj02towgs84"
                | "st_gcj02tobd09"
                | "st_bd09togcj02"
                | "st_trajnoisefilter"
                | "abs"
                | "lower"
                | "upper"
                | "length"
                | "coalesce"
                | "sleep_ms"
                | "to_int"
                | "to_float"
                | "to_string"
                | "long_to_date_ms"
                | "lng_lat_to_point"
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(name: &str, vals: Vec<Value>) -> Value {
        call(name, vals).unwrap()
    }

    #[test]
    fn constructors_and_accessors() {
        let p = f(
            "st_makepoint",
            vec![Value::Float(116.4), Value::Float(39.9)],
        );
        assert_eq!(f("st_x", vec![p.clone()]), Value::Float(116.4));
        assert_eq!(f("st_y", vec![p.clone()]), Value::Float(39.9));
        let wkt = f("st_astext", vec![p.clone()]);
        assert_eq!(wkt.as_str(), Some("POINT (116.4 39.9)"));
        let back = f("st_geomfromtext", vec![wkt]);
        assert_eq!(back, p);
    }

    #[test]
    fn within_and_distance() {
        let p = f("st_makepoint", vec![Value::Int(1), Value::Int(1)]);
        let mbr = f(
            "st_makembr",
            vec![Value::Int(0), Value::Int(0), Value::Int(2), Value::Int(2)],
        );
        assert_eq!(
            f("st_within", vec![p.clone(), mbr.clone()]),
            Value::Bool(true)
        );
        let q = f("st_makepoint", vec![Value::Int(4), Value::Int(5)]);
        assert_eq!(f("st_within", vec![q.clone(), mbr]), Value::Bool(false));
        assert_eq!(f("st_distance", vec![p, q]), Value::Float(5.0));
    }

    #[test]
    fn arithmetic_and_comparison_semantics() {
        let e = |op, a, b| binary(op, a, b).unwrap();
        assert_eq!(e(BinOp::Add, Value::Int(2), Value::Int(3)), Value::Int(5));
        assert_eq!(
            e(BinOp::Mul, Value::Int(52), Value::Int(9)),
            Value::Int(468)
        );
        assert_eq!(
            e(BinOp::Div, Value::Float(1.0), Value::Int(4)),
            Value::Float(0.25)
        );
        assert!(binary(BinOp::Div, Value::Int(1), Value::Int(0)).is_err());
        assert_eq!(e(BinOp::Add, Value::Null, Value::Int(1)), Value::Null);
        assert_eq!(
            e(BinOp::Lt, Value::Int(1), Value::Float(1.5)),
            Value::Bool(true)
        );
        // NULL comparisons are false.
        assert_eq!(e(BinOp::Eq, Value::Null, Value::Null), Value::Bool(false));
        // String-number coercion (CSV filters).
        assert_eq!(
            e(BinOp::Eq, Value::Str("42".into()), Value::Int(42)),
            Value::Bool(true)
        );
    }

    #[test]
    fn transforms_shift_points_in_china() {
        let p = f(
            "st_wgs84togcj02",
            vec![Value::Float(116.404), Value::Float(39.915)],
        );
        match p {
            Value::Geom(Geometry::Point(p)) => {
                assert!((p.x - 116.404).abs() > 1e-4, "should be offset");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn noise_filter_function() {
        let samples = vec![
            just_compress::gps::GpsSample {
                lng: 116.0,
                lat: 39.0,
                time_ms: 0,
            },
            just_compress::gps::GpsSample {
                lng: 118.0,
                lat: 39.0,
                time_ms: 1000,
            }, // teleport
            just_compress::gps::GpsSample {
                lng: 116.0001,
                lat: 39.0,
                time_ms: 2000,
            },
        ];
        let out = f("st_trajnoisefilter", vec![Value::GpsList(samples)]);
        assert_eq!(out.as_gps_list().unwrap().len(), 2);
    }

    #[test]
    fn table_functions_expand() {
        let mut samples = Vec::new();
        for i in 0..5 {
            samples.push(just_compress::gps::GpsSample {
                lng: 116.0 + i as f64 * 1e-4,
                lat: 39.0,
                time_ms: i * 1000,
            });
        }
        // A big gap creates a second segment.
        for i in 0..5 {
            samples.push(just_compress::gps::GpsSample {
                lng: 116.01 + i as f64 * 1e-4,
                lat: 39.0,
                time_ms: 3_600_000 + i * 1000,
            });
        }
        let (cols, rows) = table_function("st_trajsegmentation", vec![Value::GpsList(samples)])
            .unwrap()
            .unwrap();
        assert_eq!(cols, vec!["segment"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn unknown_function_is_analyze_error() {
        assert!(matches!(
            call("no_such_fn", vec![]),
            Err(QlError::Analyze(_))
        ));
    }

    #[test]
    fn column_resolution() {
        let cols = vec!["a.x".to_string(), "b.y".to_string(), "z".to_string()];
        assert_eq!(resolve_column("a.x", &cols).unwrap(), 0);
        assert_eq!(resolve_column("x", &cols).unwrap(), 0);
        assert_eq!(resolve_column("z", &cols).unwrap(), 2);
        // Qualified name resolving to bare column.
        assert_eq!(resolve_column("t.z", &cols).unwrap(), 2);
        assert!(resolve_column("w", &cols).is_err());
        let dup = vec!["a.x".to_string(), "b.x".to_string()];
        assert!(resolve_column("x", &dup).is_err(), "ambiguous");
    }
}
