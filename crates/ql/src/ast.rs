//! The JustQL abstract syntax tree.

use crate::json::Json;
use just_storage::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `geom WITHIN mbr` (spatial containment)
    Within,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference (possibly `alias.column`; the qualifier is kept
    /// for joins).
    Column(String),
    /// A literal value.
    Literal(Value),
    /// `*` (only valid inside `count(*)` and `SELECT *`).
    Star,
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation / NOT.
    Unary {
        /// `true` for `NOT`, `false` for arithmetic `-`.
        not: bool,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call `name(args...)`.
    Func {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
    },
    /// `expr IN func(...)` — only used for the paper's
    /// `geom IN st_KNN(...)` form.
    InFunc {
        /// Tested expression (the geometry column).
        expr: Box<Expr>,
        /// The generator call (st_KNN).
        func: Box<Expr>,
    },
}

impl Expr {
    /// Column names referenced anywhere in the expression.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column(c) = e {
                out.push(c.clone());
            }
        });
        out
    }

    /// Depth-first visitor.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Between { expr, lo, hi } => {
                expr.walk(f);
                lo.walk(f);
                hi.walk(f);
            }
            Expr::InFunc { expr, func } => {
                expr.walk(f);
                func.walk(f);
            }
            Expr::Column(_) | Expr::Literal(_) | Expr::Star => {}
        }
    }

    /// Whether the expression references no columns (foldable).
    pub fn is_constant(&self) -> bool {
        let mut constant = true;
        self.walk(&mut |e| {
            if matches!(e, Expr::Column(_) | Expr::Star) {
                constant = false;
            }
        });
        constant
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression (`Expr::Star` for `*`).
    pub expr: Expr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// A FROM source.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// A named table or view, with optional alias.
    Table {
        /// Table / view name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A parenthesised subquery with optional alias.
    Subquery {
        /// The inner query.
        query: Box<Select>,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projections.
    pub items: Vec<SelectItem>,
    /// FROM source (optional: `SELECT 1+1`).
    pub from: Option<FromItem>,
    /// Optional `JOIN <from> ON <expr>` (inner join).
    pub join: Option<(FromItem, Expr)>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// ORDER BY keys with ascending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// A column definition in `CREATE TABLE`, e.g.
/// `geom point:srid=4326` or `gpsList st_series:compress=gzip`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Type name (resolved by the analyzer).
    pub type_name: String,
    /// `:`-separated options (`primary key`, `srid=...`, `compress=...`).
    pub options: Vec<String>,
}

/// What a `SHOW` statement lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowTarget {
    /// `SHOW TABLES` — this session's tables.
    Tables,
    /// `SHOW VIEWS` — this session's views.
    Views,
    /// `SHOW METRICS` — the process-wide `just-obs` registry as rows.
    Metrics,
    /// `SHOW QUERIES` — the live query registry with per-query IO.
    Queries,
    /// `SHOW REGIONS` — per-region traffic/size stats for this
    /// session's tables.
    Regions,
    /// `SHOW EVENTS [LIMIT n]` — newest-first ring-buffer events.
    Events {
        /// Maximum events to return (defaults to 100).
        limit: Option<usize>,
    },
}

/// A complete JustQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (cols...) [USERDATA {...}]`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Optional GeoMesa-style hints.
        userdata: Option<Json>,
    },
    /// `CREATE TABLE name AS plugin [USERDATA {...}]`
    CreatePluginTable {
        /// Table name.
        name: String,
        /// Plugin name, e.g. `trajectory`.
        plugin: String,
        /// Optional hints.
        userdata: Option<Json>,
    },
    /// `CREATE VIEW name AS SELECT ...`
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: Box<Select>,
    },
    /// `DROP TABLE name` / `DROP VIEW name`
    Drop {
        /// True for views.
        view: bool,
        /// Object name.
        name: String,
    },
    /// `SHOW <target>` — catalog listings and the live-introspection
    /// surface (`SHOW METRICS|QUERIES|REGIONS|EVENTS`).
    Show {
        /// What to list.
        target: ShowTarget,
    },
    /// `KILL QUERY <id>` — request cancellation of a live query.
    KillQuery {
        /// The query id as reported by `SHOW QUERIES`.
        id: u64,
    },
    /// `SPLIT REGION <table> <region>` — online split of one region of
    /// this session's table (indices as reported by `SHOW REGIONS`).
    SplitRegion {
        /// Table name.
        table: String,
        /// Region index to split.
        region: usize,
    },
    /// `MERGE REGIONS <table> <first> <second>` — merge two adjacent
    /// regions (`second` must be `first + 1`) back into one.
    MergeRegions {
        /// Table name.
        table: String,
        /// First (left) region index.
        first: usize,
        /// Second (right) region index; must equal `first + 1`.
        second: usize,
    },
    /// `DESC TABLE name` / `DESC VIEW name`
    Desc {
        /// Object name.
        name: String,
    },
    /// `INSERT INTO name VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Row expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// `LOAD csv:'path' TO table CONFIG {...} [FILTER '...']`
    Load {
        /// Source spec, e.g. `csv:'/data/x.csv'`.
        source: String,
        /// Target table.
        table: String,
        /// Field-mapping expressions.
        config: Json,
        /// Optional SQL filter over source columns.
        filter: Option<String>,
    },
    /// `STORE VIEW v TO TABLE t`
    StoreView {
        /// Source view.
        view: String,
        /// Target table.
        table: String,
    },
    /// A SELECT query.
    Query(Box<Select>),
    /// `EXPLAIN [ANALYZE] SELECT ...`
    Explain {
        /// True for `EXPLAIN ANALYZE`: execute the query and annotate
        /// each operator with measured time, rows and kvstore IO.
        analyze: bool,
        /// The explained query.
        query: Box<Select>,
    },
}
