//! Wire serialization of query results.
//!
//! `just-server` speaks length-prefixed JSON frames; this module defines
//! how [`QueryResult`]s, [`Dataset`]s and cell [`Value`]s are encoded so
//! a remote client reconstructs results **byte-identical** to embedded
//! execution:
//!
//! * `NULL` → `null`, booleans → `true`/`false`.
//! * Integers → `{"i": n}`, dates → `{"d": ms}` (tags keep the SQL type
//!   distinction that bare JSON numbers would erase).
//! * Floats → `{"f": "<shortest round-trip decimal>"}` — a string, so
//!   `NaN`/`inf` (unrepresentable in JSON numbers) survive.
//! * Strings → `{"s": "..."}`.
//! * Geometries and GPS lists → `{"b": "<hex>"}` of the storage layer's
//!   binary [`Value`] encoding, which is exact by construction.

use crate::client::QueryResult;
use crate::error::QlError;
use crate::json::JsonValue;
use crate::Result;
use just_core::Dataset;
use just_storage::{Row, Value};

/// Encodes one cell value.
pub fn value_to_json(v: &Value) -> JsonValue {
    match v {
        Value::Null => JsonValue::Null,
        Value::Bool(b) => JsonValue::Bool(*b),
        Value::Int(i) => JsonValue::object().with("i", JsonValue::Int(*i)),
        Value::Float(f) => JsonValue::object().with("f", JsonValue::Str(f.to_string())),
        Value::Str(s) => JsonValue::object().with("s", JsonValue::Str(s.clone())),
        Value::Date(d) => JsonValue::object().with("d", JsonValue::Int(*d)),
        Value::Geom(_) | Value::GpsList(_) => {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            JsonValue::object().with("b", JsonValue::Str(hex_encode(&buf)))
        }
    }
}

/// Decodes one cell value.
pub fn value_from_json(j: &JsonValue) -> Result<Value> {
    match j {
        JsonValue::Null => Ok(Value::Null),
        JsonValue::Bool(b) => Ok(Value::Bool(*b)),
        JsonValue::Object(_) => {
            if let Some(i) = j.get("i") {
                return i
                    .as_int()
                    .map(Value::Int)
                    .ok_or_else(|| bad("i not an int"));
            }
            if let Some(d) = j.get("d") {
                return d
                    .as_int()
                    .map(Value::Date)
                    .ok_or_else(|| bad("d not an int"));
            }
            if let Some(f) = j.get("f") {
                let text = f.as_str().ok_or_else(|| bad("f not a string"))?;
                return text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| bad(&format!("bad float '{text}'")));
            }
            if let Some(s) = j.get("s") {
                return s
                    .as_str()
                    .map(|s| Value::Str(s.to_string()))
                    .ok_or_else(|| bad("s not a string"));
            }
            if let Some(b) = j.get("b") {
                let hex = b.as_str().ok_or_else(|| bad("b not a string"))?;
                let bytes = hex_decode(hex).ok_or_else(|| bad("bad hex payload"))?;
                let mut pos = 0;
                let v = Value::decode(&bytes, &mut pos).ok_or_else(|| bad("bad binary value"))?;
                if pos != bytes.len() {
                    return Err(bad("trailing bytes in binary value"));
                }
                return Ok(v);
            }
            Err(bad("unknown value tag"))
        }
        other => Err(bad(&format!("unexpected value shape {other:?}"))),
    }
}

/// Encodes a dataset as `{"columns": [...], "rows": [[...], ...]}`.
pub fn dataset_to_json(d: &Dataset) -> JsonValue {
    JsonValue::object()
        .with(
            "columns",
            JsonValue::Array(
                d.columns
                    .iter()
                    .map(|c| JsonValue::Str(c.clone()))
                    .collect(),
            ),
        )
        .with(
            "rows",
            JsonValue::Array(
                d.rows
                    .iter()
                    .map(|r| JsonValue::Array(r.values.iter().map(value_to_json).collect()))
                    .collect(),
            ),
        )
}

/// Decodes a dataset, checking row arity against the header.
pub fn dataset_from_json(j: &JsonValue) -> Result<Dataset> {
    let columns: Vec<String> = j
        .get("columns")
        .and_then(|c| c.as_array())
        .ok_or_else(|| bad("missing columns"))?
        .iter()
        .map(|c| {
            c.as_str()
                .map(|s| s.to_string())
                .ok_or_else(|| bad("bad column name"))
        })
        .collect::<Result<_>>()?;
    let rows_json = j
        .get("rows")
        .and_then(|r| r.as_array())
        .ok_or_else(|| bad("missing rows"))?;
    let mut rows = Vec::with_capacity(rows_json.len());
    for row in rows_json {
        let cells = row.as_array().ok_or_else(|| bad("row not an array"))?;
        if cells.len() != columns.len() {
            return Err(bad("row arity mismatch"));
        }
        let values = cells
            .iter()
            .map(value_from_json)
            .collect::<Result<Vec<_>>>()?;
        rows.push(Row::new(values));
    }
    Ok(Dataset::new(columns, rows))
}

/// Encodes a query result (`{"kind":"data",...}` or
/// `{"kind":"message","text":...}`).
pub fn result_to_json(r: &QueryResult) -> JsonValue {
    match r {
        QueryResult::Data(d) => dataset_to_json(d).with("kind", JsonValue::Str("data".into())),
        QueryResult::Message(m) => JsonValue::object()
            .with("kind", JsonValue::Str("message".into()))
            .with("text", JsonValue::Str(m.clone())),
    }
}

/// Decodes a query result.
pub fn result_from_json(j: &JsonValue) -> Result<QueryResult> {
    match j.get("kind").and_then(|k| k.as_str()) {
        Some("data") => Ok(QueryResult::Data(dataset_from_json(j)?)),
        Some("message") => Ok(QueryResult::Message(
            j.get("text")
                .and_then(|t| t.as_str())
                .ok_or_else(|| bad("missing message text"))?
                .to_string(),
        )),
        _ => Err(bad("missing result kind")),
    }
}

/// Encodes a [`QlError`] as `{"code": ..., "message": ...}`.
pub fn error_to_json(e: &QlError) -> JsonValue {
    JsonValue::object()
        .with("code", JsonValue::Str(e.code().to_string()))
        .with("message", JsonValue::Str(e.to_string()))
}

fn bad(msg: &str) -> QlError {
    QlError::Remote {
        code: "MALFORMED".into(),
        message: format!("wire decode: {msg}"),
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use just_compress::gps::GpsSample;
    use just_geo::{Geometry, LineString, Point};

    fn roundtrip_value(v: Value) {
        let j = value_to_json(&v);
        let rendered = j.render();
        let parsed = JsonValue::parse(&rendered).unwrap();
        assert_eq!(value_from_json(&parsed).unwrap(), v, "{rendered}");
    }

    #[test]
    fn every_value_variant_roundtrips_exactly() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Int(i64::MIN));
        roundtrip_value(Value::Float(std::f64::consts::PI));
        roundtrip_value(Value::Float(f64::INFINITY));
        roundtrip_value(Value::Float(f64::MIN_POSITIVE));
        roundtrip_value(Value::Str("naïve \"quotes\"\nline2".into()));
        roundtrip_value(Value::Date(1_600_000_000_000));
        roundtrip_value(Value::Geom(Geometry::Point(Point::new(116.4, 39.9))));
        roundtrip_value(Value::Geom(Geometry::LineString(LineString::new(vec![
            Point::new(0.125, -7.5),
            Point::new(1.0, 2.0),
        ]))));
    }

    #[test]
    fn nan_floats_survive_the_string_encoding() {
        let j = value_to_json(&Value::Float(f64::NAN));
        let back = value_from_json(&JsonValue::parse(&j.render()).unwrap()).unwrap();
        match back {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn gps_lists_roundtrip_post_quantization() {
        // The storage codec quantizes coordinates on first encode; a value
        // that has already been through storage round-trips bit-exactly.
        let samples = vec![GpsSample {
            lng: 116.4,
            lat: 39.9,
            time_ms: 1000,
        }];
        let mut buf = Vec::new();
        Value::GpsList(samples).encode(&mut buf);
        let stored = Value::decode(&buf, &mut 0).unwrap();
        roundtrip_value(stored);
    }

    #[test]
    fn datasets_and_results_roundtrip() {
        let d = Dataset::new(
            vec!["fid".into(), "geom".into()],
            vec![
                Row::new(vec![
                    Value::Int(1),
                    Value::Geom(Geometry::Point(Point::new(1.0, 2.0))),
                ]),
                Row::new(vec![Value::Int(2), Value::Null]),
            ],
        );
        let j = result_to_json(&QueryResult::Data(d.clone()));
        let parsed = JsonValue::parse(&j.render()).unwrap();
        match result_from_json(&parsed).unwrap() {
            QueryResult::Data(back) => assert_eq!(back, d),
            other => panic!("wrong kind {other:?}"),
        }

        let j = result_to_json(&QueryResult::Message("3 rows inserted".into()));
        match result_from_json(&JsonValue::parse(&j.render()).unwrap()).unwrap() {
            QueryResult::Message(m) => assert_eq!(m, "3 rows inserted"),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn malformed_wire_data_is_rejected_not_panicked() {
        for bad in [
            "{}",
            r#"{"kind":"data"}"#,
            r#"{"kind":"data","columns":["a"],"rows":[[{"i":1},{"i":2}]]}"#,
            r#"{"kind":"data","columns":["a"],"rows":[[{"x":1}]]}"#,
            r#"{"kind":"data","columns":["a"],"rows":[[{"b":"zz"}]]}"#,
            r#"{"kind":"data","columns":["a"],"rows":[[{"f":"abc"}]]}"#,
        ] {
            let parsed = JsonValue::parse(bad).unwrap();
            assert!(result_from_json(&parsed).is_err(), "{bad}");
        }
    }

    #[test]
    fn error_json_carries_the_structured_code() {
        let e = QlError::Parse("unexpected token".into());
        let j = error_to_json(&e);
        assert_eq!(j.get("code").unwrap().as_str(), Some("PARSE"));
        assert!(j
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unexpected token"));
    }
}
