//! Lowering JustQL expressions into `just-exec` bytecode.
//!
//! [`compile`] turns one [`Expr`] into a flat register [`Program`]
//! exactly once per query (per operator): column names are resolved to
//! input indices here — never again per row — literals are interned into
//! the program's constant pool, constant non-volatile subtrees are
//! folded to a single constant, and arithmetic / comparison opcodes are
//! emitted in their `*.int` specialized form when both operands are
//! statically known to be integers (integer literals, `integer`-typed
//! schema columns, or results of integer arithmetic).
//!
//! Not every expression compiles: `*`, `IN st_KNN(...)`, aggregate /
//! table / cluster functions and unknown names are plan-level constructs
//! whose (error) semantics belong to the row interpreter, so [`compile`]
//! returns `Ok(None)` and the executor falls back to interpreted
//! `eval()` — the documented fallback path, counted by the
//! `just_exec_fallbacks` metric.

use crate::ast::{BinOp, Expr};
use crate::functions::{self, arith_op, cmp_op, exec_err, resolve_column};
use crate::plan::LogicalPlan;
use crate::QlError;
use crate::Result;
use just_core::Session;
use just_exec::{ExecError, FuncEntry, Program, ProgramBuilder, RegId};
use just_storage::{FieldType, Value};
use std::sync::Arc;

/// Why a subtree didn't lower.
enum Abort {
    /// A construct the compiler doesn't handle — the caller falls back to
    /// the interpreter (which may then error with its own message).
    Unsupported,
    /// A genuine analysis error (unknown column), identical to what the
    /// interpreted path's validation reports.
    Fail(QlError),
}

fn build_err(e: ExecError) -> Abort {
    Abort::Fail(exec_err(e))
}

struct Lowerer<'a> {
    b: ProgramBuilder,
    columns: &'a [String],
    int_cols: Option<&'a [bool]>,
}

impl Lowerer<'_> {
    /// Lowers `e`, returning its result register and whether the value is
    /// statically known to be an integer.
    fn lower(&mut self, e: &Expr) -> std::result::Result<(RegId, bool), Abort> {
        // Constant non-volatile subtrees fold into the constant pool at
        // compile time. Folding that *errors* (e.g. `1/0`) lowers
        // normally so the runtime error matches the interpreter's.
        if !matches!(e, Expr::Literal(_)) && e.is_constant() && !contains_volatile(e) {
            if let Ok(v) = functions::eval_const(e) {
                let is_int = matches!(v, Value::Int(_));
                return Ok((self.b.constant(v).map_err(build_err)?, is_int));
            }
        }
        match e {
            Expr::Literal(v) => {
                let is_int = matches!(v, Value::Int(_));
                Ok((self.b.constant(v.clone()).map_err(build_err)?, is_int))
            }
            Expr::Column(name) => {
                let idx = resolve_column(name, self.columns).map_err(Abort::Fail)?;
                let is_int = self
                    .int_cols
                    .is_some_and(|t| t.get(idx).copied().unwrap_or(false));
                Ok((self.b.col(idx).map_err(build_err)?, is_int))
            }
            Expr::Star | Expr::InFunc { .. } => Err(Abort::Unsupported),
            Expr::Unary { not, expr } => {
                let (a, a_int) = self.lower(expr)?;
                if *not {
                    Ok((self.b.not(a).map_err(build_err)?, false))
                } else {
                    Ok((self.b.neg(a).map_err(build_err)?, a_int))
                }
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    let (l, _) = self.lower(lhs)?;
                    self.b.mask_and(l);
                    let (r, _) = self.lower(rhs)?;
                    self.b.mask_pop();
                    Ok((self.b.merge_and(l, r).map_err(build_err)?, false))
                }
                BinOp::Or => {
                    let (l, _) = self.lower(lhs)?;
                    self.b.mask_or(l);
                    let (r, _) = self.lower(rhs)?;
                    self.b.mask_pop();
                    Ok((self.b.merge_or(l, r).map_err(build_err)?, false))
                }
                BinOp::Within => {
                    let (l, _) = self.lower(lhs)?;
                    let (r, _) = self.lower(rhs)?;
                    Ok((self.b.within(l, r).map_err(build_err)?, false))
                }
                other => {
                    let (l, li) = self.lower(lhs)?;
                    let (r, ri) = self.lower(rhs)?;
                    if let Some(a) = arith_op(*other) {
                        let int = li && ri;
                        Ok((self.b.arith(a, l, r, int).map_err(build_err)?, int))
                    } else {
                        let c = cmp_op(*other).expect("logical ops handled above");
                        Ok((self.b.cmp(c, l, r, li && ri).map_err(build_err)?, false))
                    }
                }
            },
            Expr::Between { expr, lo, hi } => {
                let (v, _) = self.lower(expr)?;
                let (lo, _) = self.lower(lo)?;
                let (hi, _) = self.lower(hi)?;
                Ok((self.b.between(v, lo, hi).map_err(build_err)?, false))
            }
            Expr::Func { name, args } => {
                // Aggregates, table/cluster functions, st_knn and unknown
                // names are plan-level constructs (or analyze errors): the
                // interpreter owns their semantics.
                if functions::is_aggregate(name)
                    || functions::is_table_function(name)
                    || functions::is_cluster_function(name)
                    || name == "st_knn"
                    || !functions::is_known_function(name)
                {
                    return Err(Abort::Unsupported);
                }
                let mut regs = Vec::with_capacity(args.len());
                for a in args {
                    regs.push(self.lower(a)?.0);
                }
                let fname = name.clone();
                let entry = FuncEntry {
                    name: name.clone(),
                    f: Arc::new(move |vals| {
                        functions::call(&fname, vals).map_err(|e| ExecError(e.message()))
                    }),
                };
                Ok((self.b.call(entry, regs).map_err(build_err)?, false))
            }
        }
    }
}

/// Whether any function in the expression is volatile (side-effecting,
/// like `sleep_ms`) — its subtree must never be folded at compile time.
fn contains_volatile(e: &Expr) -> bool {
    let mut volatile = false;
    e.walk(&mut |x| {
        if let Expr::Func { name, .. } = x {
            if functions::is_volatile(name) {
                volatile = true;
            }
        }
    });
    volatile
}

/// Compiles `expr` into a bytecode program against the input header
/// `columns`. `int_cols` optionally marks columns statically typed
/// `integer` (from the table schema) to unlock `*.int` opcode
/// specialization; pass `None` when the input is an untyped dataset.
///
/// Returns `Ok(None)` for expressions the compiler doesn't support (the
/// caller falls back to the interpreter) and `Err` for analysis errors —
/// the same errors interpreted validation produces.
pub fn compile(
    expr: &Expr,
    columns: &[String],
    int_cols: Option<&[bool]>,
) -> Result<Option<Program>> {
    let mut l = Lowerer {
        b: ProgramBuilder::new(columns.to_vec()),
        columns,
        int_cols,
    };
    match l.lower(expr) {
        Ok((out, _)) => Ok(Some(l.b.finish(out))),
        Err(Abort::Unsupported) => Ok(None),
        Err(Abort::Fail(e)) => Err(e),
    }
}

/// [`compile`] for the executor hot path: any reason not to run compiled
/// — unsupported construct *or* analysis error — yields `None`, counted
/// in `just_exec_fallbacks`, and the caller's interpreted path then
/// reproduces the exact validation error (or lack of one: interpreted
/// aggregates over empty inputs never evaluate their argument, so a
/// compile-time resolution error must not surface where the interpreter
/// would stay silent).
pub(crate) fn try_compile(
    expr: &Expr,
    columns: &[String],
    int_cols: Option<&[bool]>,
) -> Option<Program> {
    match compile(expr, columns, int_cols) {
        Ok(Some(p)) => Some(p),
        _ => {
            just_obs::global().counter("just_exec_fallbacks").inc();
            None
        }
    }
}

/// Renders `plan` like [`LogicalPlan::render`], but each
/// expression-bearing operator is followed by the bytecode listing of
/// its compiled programs, one line per opcode — what plain `EXPLAIN`
/// shows. Expressions the compiler rejects render a one-line
/// `interpreted fallback` note instead. Input headers are resolved
/// best-effort against the catalog; operators whose input columns can't
/// be determined statically (`st_KNN`, table functions) list nothing.
pub(crate) fn explain_render(plan: &LogicalPlan, session: &Session) -> String {
    let mut out = String::new();
    render_node(plan, session, &mut out, 0);
    out
}

fn render_node(plan: &LogicalPlan, session: &Session, out: &mut String, depth: usize) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&plan.label());
    out.push('\n');
    match plan {
        LogicalPlan::Scan {
            table,
            residual: Some(r),
            ..
        } => {
            // The residual runs against the full pre-projection schema,
            // with int-typed fields unlocking `*.int` opcodes — exactly
            // what the streaming scan compiles.
            if let Some((cols, int_cols)) = scan_input_columns(table, session) {
                push_program(
                    out,
                    depth,
                    "residual",
                    &compile_opt(r, &cols, int_cols.as_deref()),
                );
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            if let Some(cols) = output_columns(input, session) {
                push_program(
                    out,
                    depth,
                    "predicate",
                    &compile_opt(predicate, &cols, None),
                );
            }
        }
        LogicalPlan::FilterProject {
            input,
            predicate,
            items,
        } => {
            if let Some(cols) = output_columns(input, session) {
                push_program(
                    out,
                    depth,
                    "predicate",
                    &compile_opt(predicate, &cols, None),
                );
                for (e, name) in items {
                    if !matches!(e, Expr::Star) {
                        push_program(out, depth, name, &compile_opt(e, &cols, None));
                    }
                }
            }
        }
        LogicalPlan::Sort { input, keys } | LogicalPlan::TopK { input, keys, .. } => {
            if let Some(cols) = output_columns(input, session) {
                for (i, (e, asc)) in keys.iter().enumerate() {
                    let label = format!("key {i} {}", if *asc { "asc" } else { "desc" });
                    push_program(out, depth, &label, &compile_opt(e, &cols, None));
                }
            }
        }
        LogicalPlan::HashJoin {
            left,
            right,
            keys,
            residual,
        } => {
            // Key programs compile against their own side's header;
            // the residual sees the combined left++right header, like
            // the executor's post-probe filter.
            let lcols = output_columns(left, session);
            let rcols = output_columns(right, session);
            for (i, (l, r)) in keys.iter().enumerate() {
                if let Some(cols) = &lcols {
                    let label = format!("key {i} left");
                    push_program(out, depth, &label, &compile_opt(l, cols, None));
                }
                if let Some(cols) = &rcols {
                    let label = format!("key {i} right");
                    push_program(out, depth, &label, &compile_opt(r, cols, None));
                }
            }
            if let (Some(res), Some(lc), Some(rc)) = (residual, &lcols, &rcols) {
                let mut combined = lc.clone();
                combined.extend(rc.iter().cloned());
                push_program(out, depth, "residual", &compile_opt(res, &combined, None));
            }
        }
        LogicalPlan::Project { input, items } => {
            if let Some(cols) = output_columns(input, session) {
                for (e, name) in items {
                    if !matches!(e, Expr::Star) {
                        push_program(out, depth, name, &compile_opt(e, &cols, None));
                    }
                }
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            if let Some(cols) = output_columns(input, session) {
                for (e, name) in group_by {
                    let label = format!("key {name}");
                    push_program(out, depth, &label, &compile_opt(e, &cols, None));
                }
                for (func, e, name) in aggregates {
                    if !matches!(e, Expr::Star) {
                        let label = format!("{func} {name}");
                        push_program(out, depth, &label, &compile_opt(e, &cols, None));
                    }
                }
            }
        }
        _ => {}
    }
    for child in plan.children() {
        render_node(child, session, out, depth + 1);
    }
}

fn push_program(out: &mut String, depth: usize, label: &str, prog: &Option<Program>) {
    let pad = "  ".repeat(depth + 1);
    match prog {
        Some(p) => {
            out.push_str(&format!("{pad}program {label}:\n"));
            for line in p.listing() {
                out.push_str(&format!("{pad}  {line}\n"));
            }
        }
        None => out.push_str(&format!("{pad}program {label}: interpreted fallback\n")),
    }
}

fn compile_opt(e: &Expr, cols: &[String], int_cols: Option<&[bool]>) -> Option<Program> {
    compile(e, cols, int_cols).ok().flatten()
}

/// A stored table's or view's full column list, plus — for stored tables
/// — which fields are statically `integer` typed.
fn scan_input_columns(table: &str, session: &Session) -> Option<(Vec<String>, Option<Vec<bool>>)> {
    if let Ok(view) = session.view(table) {
        return Some((view.columns.clone(), None));
    }
    let def = session.describe(table).ok()?;
    let cols = def.schema.fields().iter().map(|f| f.name.clone()).collect();
    let ints = def
        .schema
        .fields()
        .iter()
        .map(|f| f.ty == FieldType::Int)
        .collect();
    Some((cols, Some(ints)))
}

/// The operator's statically-known output header, mirroring how the
/// executor builds each operator's columns. `None` when the header is
/// data-dependent (table functions, clustering, k-NN).
fn output_columns(plan: &LogicalPlan, session: &Session) -> Option<Vec<String>> {
    match plan {
        LogicalPlan::Scan {
            table,
            alias,
            projection,
            ..
        } => {
            let (mut cols, _) = scan_input_columns(table, session)?;
            if let Some(proj) = projection {
                // Advisory projection: names that fail to resolve are
                // skipped; all-unresolved keeps the full header (the
                // executor's `project_columns` rule).
                let kept: Vec<String> = proj
                    .iter()
                    .filter_map(|c| resolve_column(c, &cols).ok().map(|i| cols[i].clone()))
                    .collect();
                if !kept.is_empty() {
                    cols = kept;
                }
            }
            if let Some(a) = alias {
                cols = cols.iter().map(|c| format!("{a}.{c}")).collect();
            }
            Some(cols)
        }
        LogicalPlan::Values { columns, .. } => Some(columns.clone()),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::TopK { input, .. }
        | LogicalPlan::Limit { input, .. } => output_columns(input, session),
        LogicalPlan::FilterProject { input, items, .. } => project_columns(input, items, session),
        LogicalPlan::Project { input, items } => project_columns(input, items, session),
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            ..
        } => {
            let mut cols: Vec<String> = group_by.iter().map(|(_, n)| n.clone()).collect();
            cols.extend(aggregates.iter().map(|(_, _, n)| n.clone()));
            Some(cols)
        }
        LogicalPlan::Join { left, right, .. } | LogicalPlan::HashJoin { left, right, .. } => {
            let mut cols = output_columns(left, session)?;
            cols.extend(output_columns(right, session)?);
            Some(cols)
        }
        LogicalPlan::Knn { .. } => None,
    }
}

/// Projection-list header shared by `Project` and `FilterProject`:
/// item names, with `*` expanding to the input's header. Table and
/// cluster functions produce data-dependent headers.
fn project_columns(
    input: &LogicalPlan,
    items: &[(Expr, String)],
    session: &Session,
) -> Option<Vec<String>> {
    if items.len() == 1 {
        if let Expr::Func { name, .. } = &items[0].0 {
            if functions::is_table_function(name) || functions::is_cluster_function(name) {
                return None;
            }
        }
    }
    let mut cols = Vec::new();
    for (e, name) in items {
        if matches!(e, Expr::Star) {
            cols.extend(output_columns(input, session)?);
        } else {
            cols.push(name.clone());
        }
    }
    Some(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Statement;

    fn predicate_of(sql: &str) -> Expr {
        match parse(sql).unwrap() {
            Statement::Query(q) => q.where_clause.unwrap(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn columns_resolve_and_constants_intern() {
        let e = predicate_of("SELECT a FROM t WHERE a + 1 > 1 AND b < 1");
        let cols = vec!["a".to_string(), "b".to_string()];
        let p = compile(&e, &cols, None).unwrap().unwrap();
        // `1` appears three times in the source but is interned once; the
        // listing names resolved columns.
        let listing = p.listing().join("\n");
        assert_eq!(listing.matches("const Int(1)").count(), 1, "{listing}");
        assert!(listing.contains("$0 (a)"), "{listing}");
        assert!(listing.contains("mask.and"), "{listing}");
    }

    #[test]
    fn int_specialization_needs_schema_types() {
        let e = predicate_of("SELECT a FROM t WHERE a + 1 > 2");
        let cols = vec!["a".to_string()];
        let generic = compile(&e, &cols, None).unwrap().unwrap();
        assert!(!generic.listing().join("\n").contains("arith.int"));
        let typed = compile(&e, &cols, Some(&[true])).unwrap().unwrap();
        let listing = typed.listing().join("\n");
        assert!(listing.contains("arith.int"), "{listing}");
        assert!(listing.contains("cmp.int"), "{listing}");
    }

    #[test]
    fn constant_subtrees_fold_at_compile_time() {
        let e = predicate_of("SELECT a FROM t WHERE a > 2 + 3 * 4");
        let p = compile(&e, &["a".to_string()], None).unwrap().unwrap();
        let listing = p.listing().join("\n");
        assert!(listing.contains("const Int(14)"), "{listing}");
        assert!(!listing.contains("arith"), "{listing}");
    }

    #[test]
    fn volatile_calls_never_fold() {
        let e = predicate_of("SELECT a FROM t WHERE sleep_ms(0) = 0");
        let p = compile(&e, &["a".to_string()], None).unwrap().unwrap();
        assert!(
            p.listing().join("\n").contains("call sleep_ms"),
            "{:?}",
            p.listing()
        );
    }

    #[test]
    fn unsupported_shapes_fall_back_and_bad_columns_error() {
        let e = predicate_of("SELECT a FROM t WHERE count(a) > 1");
        assert!(compile(&e, &["a".to_string()], None).unwrap().is_none());
        let e = predicate_of("SELECT a FROM t WHERE nope > 1");
        assert!(compile(&e, &["a".to_string()], None).is_err());
    }
}
