//! SQL-layer error type with structured, wire-stable error codes.

use std::fmt;

/// Everything the SQL layer can report.
#[derive(Debug)]
pub enum QlError {
    /// Lexical error (bad character, unterminated string).
    Lex(String),
    /// Syntax error.
    Parse(String),
    /// Semantic error (unknown table/column/function, type mismatch).
    Analyze(String),
    /// Runtime evaluation error.
    Eval(String),
    /// The query was cancelled mid-execution (`KILL QUERY`). A typed
    /// variant so clients can distinguish an operator kill from a
    /// genuine failure.
    Cancelled(String),
    /// Engine-level failure.
    Engine(just_core::CoreError),
    /// An error received over the wire from a remote server (possibly a
    /// server-side code like `BUSY` that has no local variant). The code
    /// is preserved so callers can branch on it.
    Remote {
        /// Wire error code (see [`QlError::code`] for the vocabulary).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl QlError {
    /// The structured error code used on the wire. Stable vocabulary:
    /// `LEX`, `PARSE`, `ANALYZE`, `EVAL`, `CANCELLED`, `CATALOG`,
    /// `INVALID`, `STORAGE`, `KV`, `IO` — plus whatever a remote server
    /// sent for [`QlError::Remote`] (e.g. `BUSY`, `AUTH`, `MALFORMED`).
    pub fn code(&self) -> &str {
        match self {
            QlError::Lex(_) => "LEX",
            QlError::Parse(_) => "PARSE",
            QlError::Analyze(_) => "ANALYZE",
            QlError::Eval(_) => "EVAL",
            QlError::Cancelled(_) => "CANCELLED",
            QlError::Engine(e) => match e {
                just_core::CoreError::Catalog(_) => "CATALOG",
                just_core::CoreError::Invalid(_) => "INVALID",
                just_core::CoreError::Storage(_) => "STORAGE",
                just_core::CoreError::Kv(_) => "KV",
                just_core::CoreError::Io(_) => "IO",
            },
            QlError::Remote { code, .. } => code,
        }
    }

    /// The bare human-readable message, without the code/category prefix
    /// that [`fmt::Display`] adds. This is what goes on the wire next to
    /// [`QlError::code`]: serializing the Display output instead would
    /// make [`QlError::from_wire`] re-wrap an already-prefixed string,
    /// and clients would print "parse error: parse error: ...".
    pub fn message(&self) -> String {
        match self {
            QlError::Lex(m)
            | QlError::Parse(m)
            | QlError::Analyze(m)
            | QlError::Eval(m)
            | QlError::Cancelled(m) => m.clone(),
            QlError::Engine(e) => match e {
                just_core::CoreError::Catalog(m) | just_core::CoreError::Invalid(m) => m.clone(),
                just_core::CoreError::Storage(e) => e.to_string(),
                just_core::CoreError::Kv(e) => e.to_string(),
                just_core::CoreError::Io(e) => e.to_string(),
            },
            QlError::Remote { message, .. } => message.clone(),
        }
    }

    /// Reconstructs an error from a wire `(code, message)` pair. Codes
    /// with a structural local variant map back onto it; everything else
    /// (engine internals, server-layer codes) becomes [`QlError::Remote`]
    /// so `code()` round-trips exactly.
    pub fn from_wire(code: &str, message: impl Into<String>) -> QlError {
        let m = message.into();
        match code {
            "LEX" => QlError::Lex(m),
            "PARSE" => QlError::Parse(m),
            "ANALYZE" => QlError::Analyze(m),
            "EVAL" => QlError::Eval(m),
            "CANCELLED" => QlError::Cancelled(m),
            "CATALOG" => QlError::Engine(just_core::CoreError::Catalog(m)),
            "INVALID" => QlError::Engine(just_core::CoreError::Invalid(m)),
            _ => QlError::Remote {
                code: code.to_string(),
                message: m,
            },
        }
    }
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Lex(m) => write!(f, "lex error: {m}"),
            QlError::Parse(m) => write!(f, "parse error: {m}"),
            QlError::Analyze(m) => write!(f, "analyze error: {m}"),
            QlError::Eval(m) => write!(f, "eval error: {m}"),
            QlError::Cancelled(m) => write!(f, "query cancelled: {m}"),
            QlError::Engine(e) => write!(f, "engine error: {e}"),
            QlError::Remote { code, message } => write!(f, "remote error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for QlError {}

impl From<just_core::CoreError> for QlError {
    fn from(e: just_core::CoreError) -> Self {
        QlError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_the_wire() {
        let cases = [
            QlError::Lex("bad char".into()),
            QlError::Parse("oops".into()),
            QlError::Analyze("unknown column".into()),
            QlError::Eval("division by zero".into()),
            QlError::Cancelled("killed by operator".into()),
            QlError::Engine(just_core::CoreError::Catalog("no such table".into())),
            QlError::Engine(just_core::CoreError::Invalid("bad args".into())),
        ];
        for e in cases {
            let (code, msg) = (e.code().to_string(), e.to_string());
            let back = QlError::from_wire(&code, &msg);
            assert_eq!(back.code(), code, "{msg}");
        }
    }

    #[test]
    fn wire_messages_do_not_double_prefix() {
        // A (code, message) pair built from code()/message() must
        // reconstruct an error that *displays* identically — the bug
        // mode is "parse error: parse error: oops".
        let cases = [
            QlError::Parse("oops".into()),
            QlError::Lex("bad char".into()),
            QlError::Eval("division by zero".into()),
            QlError::Cancelled("killed by operator".into()),
            QlError::Engine(just_core::CoreError::Catalog("no such table".into())),
        ];
        for e in cases {
            let back = QlError::from_wire(e.code(), e.message());
            assert_eq!(back.to_string(), e.to_string());
            assert_eq!(back.message(), e.message());
        }
    }

    #[test]
    fn unknown_codes_become_remote_and_keep_their_code() {
        let e = QlError::from_wire("BUSY", "server at capacity");
        assert_eq!(e.code(), "BUSY");
        assert!(e.to_string().contains("server at capacity"));
        let e = QlError::from_wire("KV", "checksum mismatch");
        assert_eq!(e.code(), "KV");
    }
}
