//! SQL-layer error type.

use std::fmt;

/// Everything the SQL layer can report.
#[derive(Debug)]
pub enum QlError {
    /// Lexical error (bad character, unterminated string).
    Lex(String),
    /// Syntax error.
    Parse(String),
    /// Semantic error (unknown table/column/function, type mismatch).
    Analyze(String),
    /// Runtime evaluation error.
    Eval(String),
    /// Engine-level failure.
    Engine(just_core::CoreError),
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Lex(m) => write!(f, "lex error: {m}"),
            QlError::Parse(m) => write!(f, "parse error: {m}"),
            QlError::Analyze(m) => write!(f, "analyze error: {m}"),
            QlError::Eval(m) => write!(f, "eval error: {m}"),
            QlError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for QlError {}

impl From<just_core::CoreError> for QlError {
    fn from(e: just_core::CoreError) -> Self {
        QlError::Engine(e)
    }
}
