//! JustQL: the complete SQL engine of the paper's Section VI.
//!
//! "All operations in JUST can be done using a standard SQL-like query
//! language." The pipeline is the paper's: **SQL Parse** (hand-written
//! lexer + recursive-descent parser standing in for ANTLR, producing a
//! syntax tree that the analyzer binds against the catalog), **SQL
//! Optimize** (constant folding, selection pushdown, projection pushdown
//! — the three rules of Section VI), and **SQL Execute** (spatio-temporal
//! predicates go to the storage indexes; everything else runs on the
//! in-memory DataFrame executor standing in for Spark SQL).
//!
//! ```
//! use just_core::{Engine, EngineConfig, SessionManager};
//! use just_ql::Client;
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("justql-doc-{}", std::process::id()));
//! std::fs::remove_dir_all(&dir).ok();
//! let engine = Arc::new(Engine::open(&dir, EngineConfig::default()).unwrap());
//! let sessions = SessionManager::new(engine);
//! let mut client = Client::new(sessions.session("demo"));
//!
//! client.execute("CREATE TABLE pts (fid integer:primary key, \
//!                 time date, geom point:srid=4326)").unwrap();
//! client.execute("INSERT INTO pts VALUES \
//!                 (1, 1000, st_makePoint(116.4, 39.9))").unwrap();
//! let r = client.execute("SELECT fid FROM pts WHERE geom WITHIN \
//!                 st_makeMBR(116.0, 39.0, 117.0, 40.0)").unwrap();
//! assert_eq!(r.dataset().unwrap().len(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]

mod ast;
mod client;
pub mod compile;
mod csvload;
mod error;
mod exec;
mod functions;
mod json;
mod lexer;
mod optimizer;
mod parser;
mod plan;
pub mod wire;

pub use ast::{Expr, Select, ShowTarget, Statement};
pub use client::{Client, QueryResult};
pub use error::QlError;
pub use exec::{set_compiled, OpStat};
pub use json::{Json, JsonError, JsonValue};
pub use lexer::{tokenize, Token};
pub use optimizer::optimize;
pub use parser::parse;
pub use plan::LogicalPlan;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, QlError>;
