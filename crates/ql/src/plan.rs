//! Logical query plans (the output of SQL Parse + analysis, the input of
//! SQL Optimize).

use crate::ast::{Expr, FromItem, Select};
use crate::error::QlError;
use crate::Result;
use std::fmt;

/// A relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a named table or view. The spatio-temporal sub-predicates
    /// are populated by the optimizer's selection pushdown; `residual` is
    /// whatever couldn't be pushed into the index.
    Scan {
        /// Table or view name.
        table: String,
        /// Optional alias (prefixes output columns as `alias.col`).
        alias: Option<String>,
        /// Columns to retain early (projection pushdown), `None` = all.
        projection: Option<Vec<String>>,
        /// Pushed-down spatial predicate: `(geometry column, window)`.
        spatial: Option<(String, just_geo::Rect)>,
        /// Pushed-down temporal predicate: `(time column, t_min, t_max)`.
        time: Option<(String, i64, i64)>,
        /// Remaining pushed-down predicate evaluated during the scan.
        residual: Option<Expr>,
        /// Pushed-down row limit: the scan may stop pulling batches once
        /// this many *matching* rows (post spatial/time/residual refine)
        /// have been produced. Populated by the optimizer's limit
        /// pushdown; the enclosing `Limit` node is kept as the
        /// authoritative truncation.
        limit: Option<usize>,
    },
    /// Literal rows (`SELECT 1+1` and `INSERT ... VALUES`).
    Values {
        /// Output column names.
        columns: Vec<String>,
        /// Row expressions (must be constant).
        rows: Vec<Vec<Expr>>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Projection / scalar computation.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs; `Expr::Star` expands.
        items: Vec<(Expr, String)>,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group keys `(expression, output name)`.
        group_by: Vec<(Expr, String)>,
        /// Aggregates `(function, argument, output name)`; argument `Star`
        /// for `count(*)`.
        aggregates: Vec<(String, Expr, String)>,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Keys with ascending flags.
        keys: Vec<(Expr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        n: usize,
    },
    /// Inner nested-loop join (non-equi `on`, or the runtime fallback
    /// target when a [`LogicalPlan::HashJoin`]'s keys turn out not to be
    /// hashable).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join condition.
        on: Expr,
    },
    /// Inner equi-join planned by the optimizer from a `Join` whose `on`
    /// conjunction contains `lhs = rhs` pairs. The executor compiles
    /// both sides' key expressions, builds a hash table over encoded key
    /// bytes from the smaller input and probes with the other; `keys`
    /// whose columns can't be split across the inputs (or whose runtime
    /// value classes aren't hashable) demote to the residual /
    /// nested-loop fallback at execution time.
    HashJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Candidate equi-key conjuncts as `(lhs, rhs)` of `lhs = rhs`;
        /// sides are assigned against the actual headers at runtime.
        keys: Vec<(Expr, Expr)>,
        /// Remaining `on` conjuncts, evaluated over matched pairs.
        residual: Option<Expr>,
    },
    /// Fused `Sort` + `Limit`: keep only the k smallest rows under the
    /// sort order, via a bounded heap over normalized keys. The
    /// enclosing `Limit` node is kept as the authoritative truncation
    /// (mirroring the scan limit pushdown).
    TopK {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys with ascending flags.
        keys: Vec<(Expr, bool)>,
        /// Rows to keep.
        k: usize,
    },
    /// Fused `Filter` → `Project` segment: one pass over each batch
    /// filters and projects without materializing the intermediate
    /// relation between the two operators.
    FilterProject {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate (applied first).
        predicate: Expr,
        /// Projection items over surviving rows.
        items: Vec<(Expr, String)>,
    },
    /// k-NN query (Algorithm 1), recognised from
    /// `WHERE geom IN st_KNN(point, k)`.
    Knn {
        /// Target table.
        table: String,
        /// Query longitude.
        lng: f64,
        /// Query latitude.
        lat: f64,
        /// Neighbour count.
        k: usize,
    },
}

impl LogicalPlan {
    /// Builds the *analyzed* (unoptimized) plan for a SELECT.
    pub fn from_select(q: &Select) -> Result<LogicalPlan> {
        // Special case: k-NN as the sole WHERE predicate over a table.
        if let (Some(Expr::InFunc { func, .. }), Some(FromItem::Table { name, .. })) =
            (&q.where_clause, &q.from)
        {
            if let Expr::Func { name: fname, args } = func.as_ref() {
                if fname == "st_knn" {
                    let plan = Self::knn_plan(name, args)?;
                    return Self::wrap_projection(plan, q);
                }
            }
        }

        let mut plan = match &q.from {
            None => LogicalPlan::Values {
                columns: vec![],
                rows: vec![vec![]],
            },
            Some(item) => Self::from_item(item)?,
        };
        if let Some((right, on)) = &q.join {
            let right_plan = Self::from_item(right)?;
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(right_plan),
                on: on.clone(),
            };
        }
        if let Some(w) = &q.where_clause {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: w.clone(),
            };
        }
        Self::wrap_projection(plan, q)
    }

    fn knn_plan(table: &str, args: &[Expr]) -> Result<LogicalPlan> {
        if args.len() != 2 {
            return Err(QlError::Analyze(
                "st_KNN(point, k) takes 2 arguments".into(),
            ));
        }
        let point = crate::functions::eval_const(&args[0])?;
        let k = crate::functions::eval_const(&args[1])?
            .as_int()
            .ok_or_else(|| QlError::Analyze("st_KNN: k must be an integer".into()))?;
        match point {
            just_storage::Value::Geom(just_geo::Geometry::Point(p)) => Ok(LogicalPlan::Knn {
                table: table.to_string(),
                lng: p.x,
                lat: p.y,
                k: k.max(0) as usize,
            }),
            _ => Err(QlError::Analyze(
                "st_KNN: first argument must be a point".into(),
            )),
        }
    }

    fn from_item(item: &FromItem) -> Result<LogicalPlan> {
        match item {
            FromItem::Table { name, alias } => Ok(LogicalPlan::Scan {
                table: name.clone(),
                alias: alias.clone(),
                projection: None,
                spatial: None,
                time: None,
                residual: None,
                limit: None,
            }),
            FromItem::Subquery { query, alias } => {
                let inner = Self::from_select(query)?;
                // Subquery aliases are only needed for qualified column
                // references; the suffix-matching resolver handles bare
                // names, so we keep the inner plan as-is.
                let _ = alias;
                Ok(inner)
            }
        }
    }

    fn wrap_projection(plan: LogicalPlan, q: &Select) -> Result<LogicalPlan> {
        let mut plan = plan;
        // Aggregate vs plain projection.
        let has_agg = q.items.iter().any(|i| contains_aggregate(&i.expr));
        if has_agg || !q.group_by.is_empty() {
            let mut group_by = Vec::new();
            for (i, g) in q.group_by.iter().enumerate() {
                // When a select item projects this exact group expression,
                // reuse its alias so `GROUP BY st_x(geom)` with
                // `SELECT st_x(geom) AS lng` produces a column named `lng`.
                let name = q
                    .items
                    .iter()
                    .find(|item| &item.expr == g)
                    .and_then(|item| item.alias.clone())
                    .unwrap_or_else(|| name_of(g, i));
                group_by.push((g.clone(), name));
            }
            let mut aggregates = Vec::new();
            let mut out_items = Vec::new();
            for (i, item) in q.items.iter().enumerate() {
                let out_name = item.alias.clone().unwrap_or_else(|| name_of(&item.expr, i));
                match &item.expr {
                    Expr::Func { name, args } if crate::functions::is_aggregate(name) => {
                        let arg = args.first().cloned().unwrap_or(Expr::Star);
                        aggregates.push((name.clone(), arg, out_name.clone()));
                    }
                    other => {
                        // Non-aggregate projections must be group keys.
                        if !q.group_by.iter().any(|g| g == other) {
                            return Err(QlError::Analyze(format!(
                                "'{out_name}' must appear in GROUP BY or an aggregate"
                            )));
                        }
                    }
                }
                out_items.push(out_name);
            }
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by,
                aggregates,
            };
            // Order output columns as written: group keys and aggregates
            // already carry the right names; a Project re-orders them.
            let items = q
                .items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let out_name = item.alias.clone().unwrap_or_else(|| name_of(&item.expr, i));
                    (Expr::Column(out_name.clone()), out_name)
                })
                .collect();
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                items,
            };
        } else {
            let mut items: Vec<(Expr, String)> = q
                .items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let name = item.alias.clone().unwrap_or_else(|| name_of(&item.expr, i));
                    (item.expr.clone(), name)
                })
                .collect();
            // ORDER BY may reference columns the projection drops (the
            // paper's Figure 8 orders by `time` while projecting
            // name/geom). Carry them as hidden columns through the sort,
            // then strip them with a final projection.
            let has_star = items.iter().any(|(e, _)| matches!(e, Expr::Star));
            let mut hidden: Vec<String> = Vec::new();
            if !q.order_by.is_empty() && !has_star {
                let visible: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
                for (e, _) in &q.order_by {
                    for c in e.columns() {
                        let bare = c.rsplit('.').next().unwrap_or(&c).to_ascii_lowercase();
                        let known = visible.iter().chain(hidden.iter()).any(|v| {
                            let vb = v.rsplit('.').next().unwrap_or(v).to_ascii_lowercase();
                            vb == bare
                        });
                        if !known {
                            hidden.push(c.clone());
                        }
                    }
                }
            }
            if hidden.is_empty() {
                plan = LogicalPlan::Project {
                    input: Box::new(plan),
                    items,
                };
                if !q.order_by.is_empty() {
                    plan = LogicalPlan::Sort {
                        input: Box::new(plan),
                        keys: q.order_by.clone(),
                    };
                }
            } else {
                let final_items: Vec<(Expr, String)> = items
                    .iter()
                    .map(|(_, n)| (Expr::Column(n.clone()), n.clone()))
                    .collect();
                for c in &hidden {
                    items.push((Expr::Column(c.clone()), c.clone()));
                }
                plan = LogicalPlan::Project {
                    input: Box::new(plan),
                    items,
                };
                plan = LogicalPlan::Sort {
                    input: Box::new(plan),
                    keys: q.order_by.clone(),
                };
                plan = LogicalPlan::Project {
                    input: Box::new(plan),
                    items: final_items,
                };
            }
            if let Some(n) = q.limit {
                plan = LogicalPlan::Limit {
                    input: Box::new(plan),
                    n,
                };
            }
            return Ok(plan);
        }
        if !q.order_by.is_empty() {
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys: q.order_by.clone(),
            };
        }
        if let Some(n) = q.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    /// Indented tree rendering (used by the Figure 8 demonstration).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.label());
        out.push('\n');
        for child in self.children() {
            child.render_into(out, depth + 1);
        }
    }

    /// The operator's one-line description, without indentation or
    /// children — shared by [`LogicalPlan::render`] and the
    /// `EXPLAIN ANALYZE` span tree.
    pub fn label(&self) -> String {
        match self {
            LogicalPlan::Scan {
                table,
                projection,
                spatial,
                time,
                residual,
                limit,
                ..
            } => {
                let mut s = format!("Scan [{table}]");
                if let Some(p) = projection {
                    s.push_str(&format!(" project={p:?}"));
                }
                if let Some((col, r)) = spatial {
                    s.push_str(&format!(
                        " spatial=({col} within [{:.3},{:.3},{:.3},{:.3}])",
                        r.min_x, r.min_y, r.max_x, r.max_y
                    ));
                }
                if let Some((col, a, b)) = time {
                    s.push_str(&format!(" time=({col} in [{a},{b}])"));
                }
                if residual.is_some() {
                    s.push_str(" +residual");
                }
                if let Some(n) = limit {
                    s.push_str(&format!(" limit={n}"));
                }
                s
            }
            LogicalPlan::Values { rows, .. } => format!("Values [{} rows]", rows.len()),
            LogicalPlan::Filter { predicate, .. } => format!("Filter [{predicate:?}]"),
            LogicalPlan::Project { items, .. } => {
                let names: Vec<&str> = items.iter().map(|(_, n)| n.as_str()).collect();
                format!("Project {names:?}")
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let keys: Vec<&str> = group_by.iter().map(|(_, n)| n.as_str()).collect();
                let aggs: Vec<&str> = aggregates.iter().map(|(_, _, n)| n.as_str()).collect();
                format!("Aggregate keys={keys:?} aggs={aggs:?}")
            }
            LogicalPlan::Sort { keys, .. } => format!("Sort [{} keys]", keys.len()),
            LogicalPlan::Limit { n, .. } => format!("Limit [{n}]"),
            LogicalPlan::Join { on, .. } => format!("Join [{on:?}]"),
            LogicalPlan::HashJoin { keys, residual, .. } => {
                let mut s = format!("hash_join [{} keys]", keys.len());
                if residual.is_some() {
                    s.push_str(" +residual");
                }
                s
            }
            LogicalPlan::TopK { keys, k, .. } => {
                format!("topk [k={k}, {} keys]", keys.len())
            }
            LogicalPlan::FilterProject {
                predicate, items, ..
            } => {
                let names: Vec<&str> = items.iter().map(|(_, n)| n.as_str()).collect();
                format!("FilterProject [{predicate:?}] {names:?}")
            }
            LogicalPlan::Knn { table, lng, lat, k } => {
                format!("Knn [{table}] q=({lng},{lat}) k={k}")
            }
        }
    }

    /// The operator's direct inputs, left to right.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } | LogicalPlan::Knn { .. } => {
                Vec::new()
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::TopK { input, .. }
            | LogicalPlan::FilterProject { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::HashJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Whether the expression contains an aggregate call.
pub fn contains_aggregate(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if let Expr::Func { name, .. } = e {
            if crate::functions::is_aggregate(name) {
                found = true;
            }
        }
    });
    found
}

/// A printable name for an unaliased projection.
pub fn name_of(expr: &Expr, idx: usize) -> String {
    match expr {
        Expr::Column(c) => c.clone(),
        Expr::Star => "*".to_string(),
        Expr::Func { name, .. } => name.clone(),
        _ => format!("col{idx}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Statement;

    fn plan_of(sql: &str) -> LogicalPlan {
        match parse(sql).unwrap() {
            Statement::Query(q) => LogicalPlan::from_select(&q).unwrap(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simple_select_shape() {
        let p = plan_of("SELECT a, b FROM t WHERE a = 1 ORDER BY b LIMIT 5");
        // Limit > Sort > Project > Filter > Scan
        let rendered = p.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("Limit"));
        assert!(lines[1].trim_start().starts_with("Sort"));
        assert!(lines[2].trim_start().starts_with("Project"));
        assert!(lines[3].trim_start().starts_with("Filter"));
        assert!(lines[4].trim_start().starts_with("Scan"));
    }

    #[test]
    fn aggregate_plan() {
        let p = plan_of("SELECT name, count(*) AS n FROM t GROUP BY name");
        assert!(p.render().contains("Aggregate"));
    }

    #[test]
    fn non_grouped_projection_rejected() {
        let parsed = parse("SELECT name, count(*) FROM t").unwrap();
        match parsed {
            Statement::Query(q) => {
                assert!(LogicalPlan::from_select(&q).is_err());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn knn_recognised() {
        let p = plan_of("SELECT * FROM t WHERE geom IN st_KNN(st_makePoint(116.4, 39.9), 50)");
        assert!(p.render().contains("Knn [t] q=(116.4,39.9) k=50"));
    }

    #[test]
    fn subquery_inlines() {
        let p = plan_of("SELECT x FROM (SELECT * FROM t) sub WHERE x > 1");
        let rendered = p.render();
        assert!(rendered.contains("Scan [t]"));
        assert_eq!(rendered.matches("Project").count(), 2);
    }
}
