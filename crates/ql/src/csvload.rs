//! `LOAD csv:'path' TO table CONFIG {...} [FILTER '...']` — the paper's
//! manipulation operation for loading external data sources (Section
//! V-B), specialised to CSV files (the Hive/HBase sources of the paper
//! reduce to the same row-mapping machinery).

use crate::error::QlError;
use crate::functions::{eval, truthy};
use crate::json::Json;
use crate::parser::parse_expr;
use crate::Result;
use just_core::Session;
use just_storage::{FieldType, Row, Value};

/// Loads a CSV file into an existing table. The `config` maps target
/// field names to expressions over the CSV's header columns (all CSV
/// values arrive as strings; the conversion functions of the paper's
/// example — `to_int`, `long_to_date_ms`, `lng_lat_to_point`, ... — are
/// available). Unmapped fields default to the same-named CSV column with
/// automatic coercion. Returns the number of rows inserted.
pub fn load_csv(
    session: &Session,
    path: &str,
    table: &str,
    config: &Json,
    filter: Option<&str>,
) -> Result<usize> {
    let def = session.describe(table)?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| QlError::Eval(format!("cannot read '{path}': {e}")))?;
    let mut lines = text.lines();
    let header: Vec<String> = match lines.next() {
        Some(h) => split_csv(h).into_iter().map(|s| s.to_string()).collect(),
        None => return Ok(0),
    };

    // Compile the field mappings once.
    let mut mappings = Vec::with_capacity(def.schema.fields().len());
    for field in def.schema.fields() {
        let expr = match config.get(&field.name) {
            Some(text) => parse_expr(text)?,
            None => {
                if header.iter().any(|h| h.eq_ignore_ascii_case(&field.name)) {
                    crate::ast::Expr::Column(field.name.clone())
                } else {
                    return Err(QlError::Analyze(format!(
                        "no mapping or CSV column for field '{}'",
                        field.name
                    )));
                }
            }
        };
        mappings.push((field.ty, expr));
    }
    let filter_expr = filter.map(parse_expr).transpose()?;

    let mut batch = Vec::new();
    let mut inserted = 0usize;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<Value> = split_csv(line)
            .into_iter()
            .map(|s| Value::Str(s.to_string()))
            .collect();
        if cells.len() != header.len() {
            return Err(QlError::Eval(format!(
                "CSV row has {} cells, header has {}",
                cells.len(),
                header.len()
            )));
        }
        if let Some(f) = &filter_expr {
            if !truthy(&eval(f, &cells, &header)?) {
                continue;
            }
        }
        let mut values = Vec::with_capacity(mappings.len());
        for (ty, expr) in &mappings {
            let raw = eval(expr, &cells, &header)?;
            values.push(coerce(raw, *ty)?);
        }
        batch.push(Row::new(values));
        if batch.len() >= 1000 {
            inserted += session.insert(table, &batch)?;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        inserted += session.insert(table, &batch)?;
    }
    Ok(inserted)
}

/// Coerces a CSV-derived value into a field type.
fn coerce(v: Value, ty: FieldType) -> Result<Value> {
    let fail = |v: &Value| QlError::Eval(format!("cannot coerce {v:?} to {}", ty.name()));
    Ok(match (ty, v) {
        (_, Value::Null) => Value::Null,
        (FieldType::Int, Value::Int(i)) => Value::Int(i),
        (FieldType::Int, Value::Str(s)) => {
            Value::Int(s.trim().parse().map_err(|_| fail(&Value::Str(s.clone())))?)
        }
        (FieldType::Float, Value::Float(f)) => Value::Float(f),
        (FieldType::Float, Value::Int(i)) => Value::Float(i as f64),
        (FieldType::Float, Value::Str(s)) => {
            Value::Float(s.trim().parse().map_err(|_| fail(&Value::Str(s.clone())))?)
        }
        (FieldType::Date, Value::Date(d)) => Value::Date(d),
        (FieldType::Date, Value::Int(i)) => Value::Date(i),
        (FieldType::Date, Value::Str(s)) => {
            Value::Date(s.trim().parse().map_err(|_| fail(&Value::Str(s.clone())))?)
        }
        (FieldType::Bool, Value::Bool(b)) => Value::Bool(b),
        (FieldType::Bool, Value::Str(s)) => Value::Bool(s.eq_ignore_ascii_case("true")),
        (FieldType::Str, Value::Str(s)) => Value::Str(s),
        (FieldType::Str, other) => Value::Str(other.to_string()),
        (
            FieldType::Point | FieldType::LineString | FieldType::Polygon | FieldType::Geometry,
            Value::Geom(g),
        ) => Value::Geom(g),
        (
            FieldType::Point | FieldType::LineString | FieldType::Polygon | FieldType::Geometry,
            Value::Str(s),
        ) => Value::Geom(just_geo::parse_wkt(&s).map_err(|e| QlError::Eval(e.to_string()))?),
        (FieldType::StSeries, Value::GpsList(l)) => Value::GpsList(l),
        (_, other) => return Err(fail(&other)),
    })
}

/// Minimal CSV field splitting with double-quote support.
fn split_csv(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => out.push(std::mem::take(&mut cur)),
            other => cur.push(other),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_splitting() {
        assert_eq!(split_csv("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(
            split_csv(r#""he said ""hi""",x"#),
            vec![r#"he said "hi""#, "x"]
        );
        assert_eq!(split_csv(""), vec![""]);
    }

    #[test]
    fn coercions() {
        assert_eq!(
            coerce(Value::Str(" 42 ".into()), FieldType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            coerce(Value::Str("1.5".into()), FieldType::Float).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            coerce(Value::Int(99), FieldType::Date).unwrap(),
            Value::Date(99)
        );
        assert!(coerce(Value::Str("abc".into()), FieldType::Int).is_err());
        let g = coerce(Value::Str("POINT (1 2)".into()), FieldType::Point).unwrap();
        assert!(matches!(g, Value::Geom(_)));
    }
}
