//! The plan executor ("SQL Execute"): spatio-temporal predicates are
//! served by the storage indexes; relational operators run on the
//! in-memory DataFrame engine (this repository's Spark SQL).
//!
//! Expression-bearing operators (filter, project, aggregate, and the
//! residual scan predicate) compile their expressions into `just-exec`
//! bytecode once up front and evaluate batches through the vectorized
//! VM; expressions the compiler rejects run on the interpreted `eval()`
//! fallback. `EXPLAIN ANALYZE` marks which path each operator took with
//! a `compiled=1` / `fallback=1` span attribute.

use crate::ast::{BinOp, Expr};
use crate::compile::try_compile;
use crate::error::QlError;
use crate::functions::{self, eval, exec_err, resolve_column, truthy};
use crate::plan::LogicalPlan;
use crate::Result;
use just_analysis::{dbscan, DbscanParams};
use just_core::{Dataset, Session};
use just_exec::{
    encode_key, full_selection, keys_hashable, total_compare, AggSpec, HashAggregator, JoinHash,
    Program, Vm,
};
use just_geo::{Geometry, Point};
use just_obs::{SpanId, Trace};
use just_storage::{CancelToken, FieldType, Row, SpatialPredicate, Value};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};

/// Rows per evaluation batch for in-memory operators (stored-table scans
/// use the storage stream's own batching).
const BATCH: usize = 1024;

/// `EXPLAIN ANALYZE` span attribute for operators that ran bytecode.
const COMPILED: &str = "compiled";
/// Span attribute for operators that fell back to interpreted `eval()`.
const FALLBACK: &str = "fallback";

static COMPILED_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables / disables compiled expression execution (default:
/// enabled). With it disabled every operator takes the interpreted
/// fallback — the switch the `exec_compile` bench and the parity tests
/// use to compare both paths on identical queries.
pub fn set_compiled(enabled: bool) {
    COMPILED_ENABLED.store(enabled, Ordering::Relaxed);
}

fn compiled_enabled() -> bool {
    COMPILED_ENABLED.load(Ordering::Relaxed)
}

/// One operator's lightweight execution stats, collected on every query
/// (unlike a [`Trace`], this is a flat vector with no span arena — cheap
/// enough to gather always, persisted only when the query turns out to
/// be slow).
#[derive(Debug, Clone)]
pub struct OpStat {
    /// Operator label (same vocabulary as the trace/plan renderings).
    pub label: String,
    /// Wall time of the operator including its children, microseconds.
    pub elapsed_us: u64,
    /// Rows the operator emitted (0 when it failed).
    pub rows: u64,
}

/// Executes logical plans against one session.
pub struct Executor<'a> {
    session: &'a Session,
    kill: Option<CancelToken>,
}

impl<'a> Executor<'a> {
    /// Creates an executor for the session.
    pub fn new(session: &'a Session) -> Self {
        Executor {
            session,
            kill: None,
        }
    }

    /// Attaches a query-level kill token (from the live query registry).
    /// The executor checks it between operators and between scan batches;
    /// once cancelled, execution stops with [`QlError::Cancelled`] and
    /// any in-flight scan stream is cancelled so its disk IO stops too.
    /// This token is distinct from the per-stream LIMIT cancel token: a
    /// satisfied LIMIT must not poison the query's other scans.
    pub fn with_kill(mut self, token: Option<CancelToken>) -> Self {
        self.kill = token;
        self
    }

    fn check_kill(&self) -> Result<()> {
        match &self.kill {
            Some(k) if k.is_cancelled() => Err(QlError::Cancelled("killed via KILL QUERY".into())),
            _ => Ok(()),
        }
    }

    /// Runs a plan to a dataset.
    pub fn run(&self, plan: &LogicalPlan) -> Result<Dataset> {
        let mut children = Vec::new();
        for child in plan.children() {
            children.push(self.run(child)?);
        }
        Ok(self.execute_node(plan, children)?.0)
    }

    /// Runs a plan like [`Executor::run`] while appending one [`OpStat`]
    /// per operator (children first). This is the always-on path the
    /// client uses for plain queries: when the query turns out slow, the
    /// collected stats become the retroactive per-operator breakdown in
    /// the slow-query log without ever allocating a trace.
    pub fn run_collect(&self, plan: &LogicalPlan, stats: &mut Vec<OpStat>) -> Result<Dataset> {
        self.check_kill()?;
        let started = std::time::Instant::now();
        let mut children = Vec::new();
        for child in plan.children() {
            children.push(self.run_collect(child, stats)?);
        }
        let result = self.execute_node(plan, children).map(|(d, _)| d);
        stats.push(OpStat {
            label: plan.label(),
            elapsed_us: started.elapsed().as_micros() as u64,
            rows: result.as_ref().map(|d| d.len() as u64).unwrap_or(0),
        });
        result
    }

    /// Runs a plan like [`Executor::run`], recording one span per operator
    /// under `parent`: the operator label, wall time, output row count,
    /// and — for the index-serving leaves (`Scan`, `Knn`), the only
    /// operators that touch the kvstore — the exact IO delta (blocks
    /// read, cache hits, bytes) plus index-selectivity counters (key
    /// ranges generated, keys scanned) attributed to that operator.
    pub fn run_traced(
        &self,
        plan: &LogicalPlan,
        trace: &mut Trace,
        parent: SpanId,
    ) -> Result<Dataset> {
        let span = trace.start(plan.label(), parent);
        let is_io_leaf = matches!(plan, LogicalPlan::Scan { .. } | LogicalPlan::Knn { .. });
        let before = is_io_leaf.then(|| {
            let obs = just_obs::global();
            (
                self.session.engine().io_snapshot(),
                obs.counter("just_index_ranges_generated").get(),
                obs.counter("just_index_keys_scanned").get(),
                obs.counter("just_storage_rows_pruned_pushdown").get(),
            )
        });
        let mut children = Vec::new();
        for child in plan.children() {
            children.push(self.run_traced(child, trace, span)?);
        }
        // Join/TopK counters snapshot *after* the children ran, so nested
        // joins don't pollute this operator's delta.
        let exec_before = matches!(
            plan,
            LogicalPlan::HashJoin { .. } | LogicalPlan::TopK { .. } | LogicalPlan::Join { .. }
        )
        .then(|| {
            let obs = just_obs::global();
            (
                obs.counter("just_exec_join_build_rows").get(),
                obs.counter("just_exec_join_probe_rows").get(),
                obs.counter("just_exec_join_fallbacks").get(),
                obs.counter("just_exec_topk_rows_pruned").get(),
            )
        });
        let result = self.execute_node(plan, children);
        if let Ok((data, path)) = &result {
            // Which execution path the operator's expressions took.
            if let Some(mark) = path {
                trace.add_attr(span, mark, 1);
            }
            trace.set_rows(span, data.len() as u64);
            if let Some((build, probe, falls, pruned)) = exec_before {
                let obs = just_obs::global();
                match plan {
                    LogicalPlan::HashJoin { .. } => {
                        trace.add_attr(
                            span,
                            "build_rows",
                            obs.counter("just_exec_join_build_rows").get() - build,
                        );
                        trace.add_attr(
                            span,
                            "probe_rows",
                            obs.counter("just_exec_join_probe_rows").get() - probe,
                        );
                        let falls = obs.counter("just_exec_join_fallbacks").get() - falls;
                        if falls > 0 {
                            trace.add_attr(span, "nested_loop", falls);
                        }
                    }
                    LogicalPlan::TopK { .. } => {
                        trace.add_attr(
                            span,
                            "rows_pruned",
                            obs.counter("just_exec_topk_rows_pruned").get() - pruned,
                        );
                    }
                    _ => {}
                }
            }
            if let Some((io, ranges, keys, pruned)) = before {
                let obs = just_obs::global();
                let d = self.session.engine().io_snapshot().since(&io);
                trace.add_attr(span, "blocks_read", d.blocks_read);
                trace.add_attr(span, "cache_hits", d.cache_hits);
                trace.add_attr(span, "bytes_read", d.bytes_read);
                if d.batches_emitted > 0 {
                    trace.add_attr(span, "batches_emitted", d.batches_emitted);
                }
                if d.scan_early_terminations > 0 {
                    trace.add_attr(span, "scan_early_terminations", d.scan_early_terminations);
                }
                let pruned = obs.counter("just_storage_rows_pruned_pushdown").get() - pruned;
                if pruned > 0 {
                    trace.add_attr(span, "rows_pruned_pushdown", pruned);
                }
                // Of all block lookups this operator issued, the share the
                // block cache absorbed (integer percent).
                let lookups = d.blocks_read + d.cache_hits;
                if let Some(pct) = (d.cache_hits * 100).checked_div(lookups) {
                    trace.add_attr(span, "cache_hit_pct", pct);
                }
                if d.bloom_skips > 0 {
                    trace.add_attr(span, "bloom_skips", d.bloom_skips);
                }
                if d.index_skips > 0 {
                    trace.add_attr(span, "index_skips", d.index_skips);
                }
                if d.memtable_hits > 0 {
                    trace.add_attr(span, "memtable_hits", d.memtable_hits);
                }
                let ranges = obs.counter("just_index_ranges_generated").get() - ranges;
                let keys = obs.counter("just_index_keys_scanned").get() - keys;
                if ranges > 0 {
                    trace.add_attr(span, "key_ranges", ranges);
                    trace.add_attr(span, "keys_scanned", keys);
                }
            }
        }
        trace.end(span);
        result.map(|(d, _)| d)
    }

    /// Evaluates one operator given its already-computed child datasets
    /// (in [`LogicalPlan::children`] order). The second element reports
    /// which expression-execution path the operator took, if it
    /// evaluated expressions at all.
    fn execute_node(
        &self,
        plan: &LogicalPlan,
        children: Vec<Dataset>,
    ) -> Result<(Dataset, Option<&'static str>)> {
        let mut children = children.into_iter();
        let mut next = || {
            children
                .next()
                .expect("child dataset count matches plan arity")
        };
        match plan {
            LogicalPlan::Scan {
                table,
                alias,
                projection,
                spatial,
                time,
                residual,
                limit,
            } => self.scan(table, alias, projection, spatial, time, residual, limit),
            LogicalPlan::Values { columns, rows } => {
                let mut out_rows = Vec::with_capacity(rows.len());
                for exprs in rows {
                    let mut values = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        values.push(functions::eval_const(e)?);
                    }
                    out_rows.push(Row::new(values));
                }
                Ok((Dataset::new(columns.clone(), out_rows), None))
            }
            LogicalPlan::Filter { predicate, .. } => {
                filter(next(), predicate).map(|(d, p)| (d, Some(p)))
            }
            LogicalPlan::Project { items, .. } => project(next(), items),
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => aggregate(next(), group_by, aggregates).map(|(d, p)| (d, Some(p))),
            LogicalPlan::Sort { keys, .. } => sort_dispatch(next(), keys),
            LogicalPlan::TopK { keys, k, .. } => topk(next(), keys, *k),
            LogicalPlan::FilterProject {
                predicate, items, ..
            } => filter_project(next(), predicate, items),
            LogicalPlan::Limit { n, .. } => {
                let mut data = next();
                data.rows.truncate(*n);
                Ok((data, None))
            }
            LogicalPlan::Join { on, .. } => {
                let l = next();
                let r = next();
                Ok((join(l, r, on)?, Some(FALLBACK)))
            }
            LogicalPlan::HashJoin { keys, residual, .. } => {
                let l = next();
                let r = next();
                hash_join(l, r, keys, residual)
            }
            LogicalPlan::Knn { table, lng, lat, k } => {
                Ok((self.session.knn(table, Point::new(*lng, *lat), *k)?, None))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn scan(
        &self,
        table: &str,
        alias: &Option<String>,
        projection: &Option<Vec<String>>,
        spatial: &Option<(String, just_geo::Rect)>,
        time: &Option<(String, i64, i64)>,
        residual: &Option<Expr>,
        limit: &Option<usize>,
    ) -> Result<(Dataset, Option<&'static str>)> {
        // Views first (they shadow nothing: names are namespaced apart).
        let (mut data, path) = if let Ok(view) = self.session.view(table) {
            // Pushed predicates over a view run in memory, against the
            // shared dataset *by reference*: only surviving rows (up to
            // the limit) are ever cloned, so a selective filter never
            // pays for a full-view deep copy.
            let mut preds: Vec<Expr> = Vec::new();
            if let Some((col, rect)) = spatial {
                preds.push(spatial_expr(col, *rect));
            }
            if let Some((col, lo, hi)) = time {
                preds.push(temporal_expr(col, *lo, *hi));
            }
            if let Some(pred) = residual {
                preds.push(pred.clone());
            }
            let (rows, p) = scan_view_rows(&view, &preds, *limit)?;
            (Dataset::new(view.columns.clone(), rows), p)
        } else {
            self.scan_stored(table, projection, spatial, time, residual, limit)?
        };

        if let Some(cols) = projection {
            data = project_columns(data, cols)?;
        }
        if let Some(alias) = alias {
            data.columns = data
                .columns
                .iter()
                .map(|c| format!("{alias}.{c}"))
                .collect();
        }
        Ok((data, path))
    }

    /// Scans a stored table through the streaming read path: batches are
    /// pulled one at a time, the indexed spatio-temporal predicate and
    /// the column projection run *inside* the storage decode, residual
    /// predicates run in memory per batch, and a pushed-down `LIMIT`
    /// cancels the stream — stopping block reads — as soon as enough
    /// matching rows have surfaced.
    fn scan_stored(
        &self,
        table: &str,
        projection: &Option<Vec<String>>,
        spatial: &Option<(String, just_geo::Rect)>,
        time: &Option<(String, i64, i64)>,
        residual: &Option<Expr>,
        limit: &Option<usize>,
    ) -> Result<(Dataset, Option<&'static str>)> {
        let def = self.session.describe(table)?;
        let geom_name = def
            .schema
            .geom_index()
            .map(|i| def.schema.fields()[i].name.clone());
        let time_name = def
            .schema
            .time_index()
            .map(|i| def.schema.fields()[i].name.clone());

        let matches_name = |col: &str, field: &str| {
            col.eq_ignore_ascii_case(field)
                || col
                    .to_ascii_lowercase()
                    .ends_with(&format!(".{}", field.to_ascii_lowercase()))
        };
        let matches_field = |col: &str, field: &Option<String>| {
            field
                .as_ref()
                .map(|f| matches_name(col, f))
                .unwrap_or(false)
        };

        let spatial_ok = spatial
            .as_ref()
            .filter(|(col, _)| matches_field(col, &geom_name));
        let time_ok = time
            .as_ref()
            .filter(|(col, _, _)| matches_field(col, &time_name));

        // Resolve the projected column names onto schema field indices so
        // the storage layer can skip decoding dropped fields. Any name
        // that fails to resolve (outer-query aliases can leak into
        // advisory projections) falls back to decoding everything.
        let proj_indices: Option<Vec<usize>> = projection.as_ref().and_then(|cols| {
            let mut idx = Vec::with_capacity(cols.len());
            for c in cols {
                let i = def
                    .schema
                    .fields()
                    .iter()
                    .position(|f| matches_name(c, &f.name))?;
                if !idx.contains(&i) {
                    idx.push(i);
                }
            }
            Some(idx)
        });

        let stream_spatial = match (spatial_ok, time_ok) {
            (Some((_, rect)), _) => Some(rect),
            // Time-only predicate: the whole world spatially, so the
            // temporal index still prunes periods.
            (None, Some(_)) => Some(&just_geo::WORLD),
            (None, None) => None,
        };
        let stream_time = time_ok.map(|(_, lo, hi)| (*lo, *hi));
        let mut opts = just_storage::ScanOptions::default();
        if let Some(k) = limit {
            // Don't overfetch: a satisfiable limit should stop within
            // roughly one batch instead of paying for a full default one.
            opts.batch_rows = opts.batch_rows.min((*k).max(1));
        }
        let mut stream = self.session.query_stream(
            table,
            stream_spatial,
            stream_time,
            SpatialPredicate::Within,
            proj_indices.as_deref(),
            opts,
        )?;

        // Predicates that didn't match the indexed fields run in memory
        // per batch so results stay correct — and *before* rows count
        // toward the limit.
        let mut mem_preds: Vec<Expr> = Vec::new();
        if spatial_ok.is_none() {
            if let Some((col, rect)) = spatial {
                mem_preds.push(spatial_expr(col, *rect));
            }
        }
        if time_ok.is_none() {
            if let Some((col, lo, hi)) = time {
                mem_preds.push(temporal_expr(col, *lo, *hi));
            }
        }
        if let Some(pred) = residual {
            mem_preds.push(pred.clone());
        }

        let columns: Vec<String> = def.schema.fields().iter().map(|f| f.name.clone()).collect();

        // Compile every in-memory predicate once for the whole scan; the
        // schema's statically `integer` fields unlock the int-specialized
        // opcodes. All-or-nothing: one uncompilable predicate sends the
        // scan down the interpreted per-batch path.
        let progs: Option<Vec<Program>> = if compiled_enabled() && !mem_preds.is_empty() {
            let int_cols: Vec<bool> = def
                .schema
                .fields()
                .iter()
                .map(|f| f.ty == FieldType::Int)
                .collect();
            mem_preds
                .iter()
                .map(|p| try_compile(p, &columns, Some(&int_cols)))
                .collect()
        } else {
            None
        };
        let path = match (&mem_preds[..], &progs) {
            ([], _) => None,
            (_, Some(_)) => Some(COMPILED),
            (_, None) => Some(FALLBACK),
        };

        let cancel = stream.cancel_token();
        let mut vm = Vm::new();
        let mut rows: Vec<Row> = Vec::new();
        'batches: while let Some(batch) =
            stream.next_batch().map_err(just_core::CoreError::Storage)?
        {
            // Query-level kill: cancel the stream first so the drop is
            // counted as an early termination and block reads stop here.
            if let Err(e) = self.check_kill() {
                cancel.cancel();
                return Err(e);
            }
            let kept = if let Some(progs) = &progs {
                // Progressive narrowing: each predicate re-examines only
                // the rows its predecessors kept.
                let mut sel = full_selection(batch.len());
                for prog in progs {
                    if sel.is_empty() {
                        break;
                    }
                    let mut next = Vec::with_capacity(sel.len());
                    vm.select(prog, &batch, &sel, &mut next).map_err(exec_err)?;
                    sel = next;
                }
                take_selected(batch, &sel)
            } else {
                let mut chunk = Dataset::new(columns.clone(), batch);
                for pred in &mem_preds {
                    chunk = filter_interpreted(chunk, pred)?;
                }
                chunk.rows
            };
            for row in kept {
                rows.push(row);
                if let Some(k) = limit {
                    if rows.len() >= *k {
                        // Satisfied: stop the disk IO mid-range.
                        cancel.cancel();
                        break 'batches;
                    }
                }
            }
        }
        Ok((Dataset::new(columns, rows), path))
    }
}

/// Moves the rows at the (sorted) selected indices out of `rows` without
/// cloning any surviving row.
fn take_selected(rows: Vec<Row>, sel: &[u32]) -> Vec<Row> {
    let mut out = Vec::with_capacity(sel.len());
    let mut sel = sel.iter().peekable();
    for (i, row) in rows.into_iter().enumerate() {
        if sel.peek() == Some(&&(i as u32)) {
            sel.next();
            out.push(row);
        }
    }
    out
}

/// Filters a view's rows in place: predicates run against the shared
/// dataset by reference and only surviving rows — capped by the pushed
/// `LIMIT` — are cloned out. Compiled and interpreted paths keep the
/// usual evaluation-set parity (a later predicate only ever sees rows
/// the earlier ones kept).
fn scan_view_rows(
    view: &Dataset,
    preds: &[Expr],
    limit: Option<usize>,
) -> Result<(Vec<Row>, Option<&'static str>)> {
    for pred in preds {
        validate_columns(pred, &view.columns)?;
    }
    let cap = limit.unwrap_or(usize::MAX);
    if preds.is_empty() {
        let take = view.rows.len().min(cap);
        return Ok((view.rows[..take].to_vec(), None));
    }
    let progs: Option<Vec<Program>> = if compiled_enabled() {
        let int_cols = infer_int_cols(view);
        preds
            .iter()
            .map(|p| try_compile(p, &view.columns, Some(&int_cols)))
            .collect()
    } else {
        None
    };
    let mut out: Vec<Row> = Vec::new();
    if let Some(progs) = &progs {
        let mut vm = Vm::new();
        'batches: for batch in view.rows.chunks(BATCH) {
            // Progressive narrowing, as in the stored-table scan.
            let mut sel = full_selection(batch.len());
            for prog in progs {
                if sel.is_empty() {
                    break;
                }
                let mut next = Vec::with_capacity(sel.len());
                vm.select(prog, batch, &sel, &mut next).map_err(exec_err)?;
                sel = next;
            }
            for &lane in &sel {
                out.push(batch[lane as usize].clone());
                if out.len() >= cap {
                    break 'batches;
                }
            }
        }
        Ok((out, Some(COMPILED)))
    } else {
        'rows: for row in &view.rows {
            for pred in preds {
                if !truthy(&eval(pred, &row.values, &view.columns)?) {
                    continue 'rows;
                }
            }
            out.push(row.clone());
            if out.len() >= cap {
                break;
            }
        }
        Ok((out, Some(FALLBACK)))
    }
}

/// Guesses which view columns hold integers from the first non-NULL
/// value per column (views carry no schema). Only a *hint*: the
/// int-specialized opcodes guard at runtime, so a wrong guess costs the
/// fast path, never correctness.
fn infer_int_cols(view: &Dataset) -> Vec<bool> {
    let mut int_cols = vec![false; view.columns.len()];
    let mut known = vec![false; view.columns.len()];
    for row in view.rows.iter().take(64) {
        for (c, v) in row.values.iter().enumerate().take(known.len()) {
            if !known[c] && !matches!(v, Value::Null) {
                known[c] = true;
                int_cols[c] = matches!(v, Value::Int(_));
            }
        }
        if known.iter().all(|k| *k) {
            break;
        }
    }
    int_cols
}

fn spatial_expr(col: &str, rect: just_geo::Rect) -> Expr {
    Expr::Binary {
        op: crate::ast::BinOp::Within,
        lhs: Box::new(Expr::Column(col.to_string())),
        rhs: Box::new(Expr::Literal(Value::Geom(Geometry::Rect(rect)))),
    }
}

fn temporal_expr(col: &str, lo: i64, hi: i64) -> Expr {
    Expr::Between {
        expr: Box::new(Expr::Column(col.to_string())),
        lo: Box::new(Expr::Literal(Value::Date(lo))),
        hi: Box::new(Expr::Literal(Value::Date(hi))),
    }
}

/// Errors on column references that cannot resolve against the header and
/// on unknown function names — run before row-wise evaluation so empty
/// relations still reject bad queries (like any SQL analyzer).
fn validate_columns(expr: &Expr, columns: &[String]) -> Result<()> {
    for c in expr.columns() {
        resolve_column(&c, columns)?;
    }
    let mut bad_fn: Option<String> = None;
    expr.walk(&mut |e| {
        if let Expr::Func { name, .. } = e {
            if bad_fn.is_none() && !functions::is_known_function(name) {
                bad_fn = Some(name.clone());
            }
        }
    });
    match bad_fn {
        Some(name) => Err(QlError::Analyze(format!("unknown function '{name}'"))),
        None => Ok(()),
    }
}

/// Filters `data`, preferring the compiled path: the predicate lowers to
/// bytecode once, then batches of [`BATCH`] rows run through the
/// vectorized VM. Anything the compiler rejects falls back to the
/// interpreted row loop.
fn filter(data: Dataset, predicate: &Expr) -> Result<(Dataset, &'static str)> {
    validate_columns(predicate, &data.columns)?;
    if compiled_enabled() {
        if let Some(prog) = try_compile(predicate, &data.columns, None) {
            let mut vm = Vm::new();
            let mut rows = Vec::with_capacity(data.rows.len());
            let mut chunk_rows = data.rows;
            while !chunk_rows.is_empty() {
                let rest = chunk_rows.split_off(chunk_rows.len().min(BATCH));
                let mut sel = Vec::with_capacity(chunk_rows.len());
                vm.select(
                    &prog,
                    &chunk_rows,
                    &full_selection(chunk_rows.len()),
                    &mut sel,
                )
                .map_err(exec_err)?;
                rows.extend(take_selected(chunk_rows, &sel));
                chunk_rows = rest;
            }
            return Ok((Dataset::new(data.columns, rows), COMPILED));
        }
    }
    Ok((filter_interpreted(data, predicate)?, FALLBACK))
}

/// The interpreted fallback: row-at-a-time `eval()`.
fn filter_interpreted(data: Dataset, predicate: &Expr) -> Result<Dataset> {
    validate_columns(predicate, &data.columns)?;
    let mut rows = Vec::with_capacity(data.rows.len());
    for row in data.rows {
        let keep = truthy(&eval(predicate, &row.values, &data.columns)?);
        if keep {
            rows.push(row);
        }
    }
    Ok(Dataset::new(data.columns, rows))
}

fn project_columns(data: Dataset, cols: &[String]) -> Result<Dataset> {
    let mut indices = Vec::with_capacity(cols.len());
    let mut names = Vec::with_capacity(cols.len());
    for c in cols {
        // Skip projection columns the relation doesn't have (they can be
        // outer-query names when a subquery renamed things); correctness
        // is preserved because projection pruning is advisory.
        if let Ok(i) = resolve_column(c, &data.columns) {
            indices.push(i);
            names.push(data.columns[i].clone());
        }
    }
    if indices.is_empty() {
        return Ok(data);
    }
    let rows = data
        .rows
        .into_iter()
        .map(|r| Row::new(indices.iter().map(|&i| r.values[i].clone()).collect()))
        .collect();
    Ok(Dataset::new(names, rows))
}

fn project(data: Dataset, items: &[(Expr, String)]) -> Result<(Dataset, Option<&'static str>)> {
    // 1-N table functions: the sole item expands each row. These are
    // plan-level constructs the interpreter owns.
    if items.len() == 1 {
        if let Expr::Func { name, args } = &items[0].0 {
            if functions::is_table_function(name) {
                let mut columns: Option<Vec<String>> = None;
                let mut rows = Vec::new();
                for row in &data.rows {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(eval(a, &row.values, &data.columns)?);
                    }
                    if let Some((cols, expanded)) = functions::table_function(name, vals)? {
                        columns.get_or_insert(cols);
                        rows.extend(expanded.into_iter().map(Row::new));
                    }
                }
                let columns = columns.unwrap_or_else(|| vec![items[0].1.clone()]);
                return Ok((Dataset::new(columns, rows), Some(FALLBACK)));
            }
            if functions::is_cluster_function(name) {
                return Ok((run_dbscan(data, args)?, Some(FALLBACK)));
            }
        }
    }

    let mut columns = Vec::new();
    let mut plans: Vec<ProjectItem> = Vec::new();
    for (e, name) in items {
        if !matches!(e, Expr::Star) {
            validate_columns(e, &data.columns)?;
        }
        match e {
            Expr::Star => {
                for (i, c) in data.columns.iter().enumerate() {
                    columns.push(c.clone());
                    plans.push(ProjectItem::Passthrough(i));
                }
            }
            // A bare column is a reshuffle, not a computation: skip the
            // VM (and its per-value materialization) entirely.
            // `validate_columns` above already produced the resolution
            // error an eval would have.
            Expr::Column(c) => {
                columns.push(name.clone());
                plans.push(ProjectItem::Passthrough(resolve_column(c, &data.columns)?));
            }
            other => {
                columns.push(name.clone());
                plans.push(ProjectItem::Compute(other.clone()));
            }
        }
    }

    // Pure column reshuffles evaluate nothing — no path to report; the
    // identity reshuffle doesn't even touch the rows.
    let computes: Vec<(usize, &Expr)> = plans
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            ProjectItem::Compute(e) => Some((i, e)),
            ProjectItem::Passthrough(_) => None,
        })
        .collect();
    if computes.is_empty() {
        if is_identity(&plans, data.columns.len()) {
            return Ok((Dataset::new(columns, data.rows), None));
        }
        return Ok((project_interpreted(data, columns, &plans)?, None));
    }
    if compiled_enabled() {
        let progs: Option<Vec<(usize, Program)>> = computes
            .iter()
            .map(|(i, e)| try_compile(e, &data.columns, None).map(|p| (*i, p)))
            .collect();
        if let Some(progs) = progs {
            return Ok((
                project_compiled(data, columns, &plans, &progs)?,
                Some(COMPILED),
            ));
        }
    }
    Ok((project_interpreted(data, columns, &plans)?, Some(FALLBACK)))
}

/// Compiled projection: each computed item's program evaluates a whole
/// batch into a column, then output rows are assembled by moving values
/// out of the computed columns (passthrough items clone from the input
/// row).
fn project_compiled(
    data: Dataset,
    columns: Vec<String>,
    plans: &[ProjectItem],
    progs: &[(usize, Program)],
) -> Result<Dataset> {
    let mut vm = Vm::new();
    let mut rows = Vec::with_capacity(data.rows.len());
    let mut chunk = data.rows;
    while !chunk.is_empty() {
        let rest = chunk.split_off(chunk.len().min(BATCH));
        let sel = full_selection(chunk.len());
        let mut computed: Vec<Option<Vec<Value>>> = vec![None; plans.len()];
        for (idx, prog) in progs {
            let mut col = Vec::with_capacity(chunk.len());
            vm.eval(prog, &chunk, &sel, &mut col).map_err(exec_err)?;
            computed[*idx] = Some(col);
        }
        for (r, row) in chunk.iter().enumerate() {
            let mut values = Vec::with_capacity(plans.len());
            for (i, p) in plans.iter().enumerate() {
                values.push(match p {
                    ProjectItem::Passthrough(c) => row.values[*c].clone(),
                    ProjectItem::Compute(_) => std::mem::replace(
                        &mut computed[i].as_mut().expect("computed column")[r],
                        Value::Null,
                    ),
                });
            }
            rows.push(Row::new(values));
        }
        chunk = rest;
    }
    Ok(Dataset::new(columns, rows))
}

/// The interpreted fallback: row-at-a-time `eval()` per computed item.
fn project_interpreted(
    data: Dataset,
    columns: Vec<String>,
    plans: &[ProjectItem],
) -> Result<Dataset> {
    let mut rows = Vec::with_capacity(data.rows.len());
    for row in &data.rows {
        let mut values = Vec::with_capacity(plans.len());
        for p in plans {
            values.push(match p {
                ProjectItem::Passthrough(i) => row.values[*i].clone(),
                ProjectItem::Compute(e) => eval(e, &row.values, &data.columns)?,
            });
        }
        rows.push(Row::new(values));
    }
    Ok(Dataset::new(columns, rows))
}

enum ProjectItem {
    Passthrough(usize),
    Compute(Expr),
}

/// Whether a projection is the identity over its input — every item a
/// passthrough of column `i` at position `i`, covering the full width.
/// Such a projection can rename columns but never needs to touch rows.
fn is_identity(plans: &[ProjectItem], width: usize) -> bool {
    plans.len() == width
        && plans
            .iter()
            .enumerate()
            .all(|(i, p)| matches!(p, ProjectItem::Passthrough(c) if *c == i))
}

/// Fused Filter→Project: each batch runs the predicate's selection and
/// the projection programs in one pass, so the intermediate filtered
/// relation is never materialized and computed items only evaluate over
/// surviving rows. Falls back to the two-step filter-then-project when
/// the predicate or a computed item doesn't compile (or compiled
/// execution is off); the result is identical either way.
fn filter_project(
    data: Dataset,
    predicate: &Expr,
    items: &[(Expr, String)],
) -> Result<(Dataset, Option<&'static str>)> {
    // 1-N table/cluster functions are plan-level constructs the
    // interpreter owns; let `project()` special-case them.
    let special = items.len() == 1
        && matches!(&items[0].0, Expr::Func { name, .. }
            if functions::is_table_function(name) || functions::is_cluster_function(name));
    if compiled_enabled() && !special {
        if let Some(fused) = filter_project_compiled(&data, predicate, items)? {
            return Ok((fused, Some(COMPILED)));
        }
    }
    let (filtered, fpath) = filter(data, predicate)?;
    let (projected, ppath) = project(filtered, items)?;
    let path = if fpath == COMPILED && ppath != Some(FALLBACK) {
        COMPILED
    } else {
        FALLBACK
    };
    Ok((projected, Some(path)))
}

/// Returns `Ok(None)` when any expression fails to lower; the caller
/// then takes the two-step path (which re-validates, harmlessly).
fn filter_project_compiled(
    data: &Dataset,
    predicate: &Expr,
    items: &[(Expr, String)],
) -> Result<Option<Dataset>> {
    validate_columns(predicate, &data.columns)?;
    let Some(pred_prog) = try_compile(predicate, &data.columns, None) else {
        return Ok(None);
    };
    let mut columns = Vec::new();
    let mut plans: Vec<ProjectItem> = Vec::new();
    for (e, name) in items {
        if !matches!(e, Expr::Star) {
            validate_columns(e, &data.columns)?;
        }
        match e {
            Expr::Star => {
                for (i, c) in data.columns.iter().enumerate() {
                    columns.push(c.clone());
                    plans.push(ProjectItem::Passthrough(i));
                }
            }
            Expr::Column(c) => {
                columns.push(name.clone());
                plans.push(ProjectItem::Passthrough(resolve_column(c, &data.columns)?));
            }
            other => {
                columns.push(name.clone());
                plans.push(ProjectItem::Compute(other.clone()));
            }
        }
    }
    let progs: Option<Vec<(usize, Program)>> = plans
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            ProjectItem::Compute(e) => Some((i, e)),
            ProjectItem::Passthrough(_) => None,
        })
        .map(|(i, e)| try_compile(e, &data.columns, None).map(|p| (i, p)))
        .collect();
    let Some(progs) = progs else {
        return Ok(None);
    };

    let mut vm = Vm::new();
    let mut rows = Vec::new();
    for chunk in data.rows.chunks(BATCH) {
        let mut sel = Vec::with_capacity(chunk.len());
        vm.select(&pred_prog, chunk, &full_selection(chunk.len()), &mut sel)
            .map_err(exec_err)?;
        if sel.is_empty() {
            continue;
        }
        let mut computed: Vec<Option<Vec<Value>>> = vec![None; plans.len()];
        for (idx, prog) in &progs {
            let mut col = Vec::with_capacity(sel.len());
            vm.eval(prog, chunk, &sel, &mut col).map_err(exec_err)?;
            computed[*idx] = Some(col);
        }
        for (j, &lane) in sel.iter().enumerate() {
            let row = &chunk[lane as usize];
            let mut values = Vec::with_capacity(plans.len());
            for (i, p) in plans.iter().enumerate() {
                values.push(match p {
                    ProjectItem::Passthrough(c) => row.values[*c].clone(),
                    ProjectItem::Compute(_) => std::mem::replace(
                        &mut computed[i].as_mut().expect("computed column")[j],
                        Value::Null,
                    ),
                });
            }
            rows.push(Row::new(values));
        }
    }
    Ok(Some(Dataset::new(columns, rows)))
}

/// `st_DBSCAN(geom, minPts, radius)` — the N-M operation: clusters every
/// input row's geometry; output is `(geom, cluster)` with cluster `-1`
/// for noise.
fn run_dbscan(data: Dataset, args: &[Expr]) -> Result<Dataset> {
    if args.len() != 3 {
        return Err(QlError::Eval(
            "st_DBSCAN(geom, minPts, radius) takes 3 arguments".into(),
        ));
    }
    let mut pts = Vec::with_capacity(data.rows.len());
    for row in &data.rows {
        match eval(&args[0], &row.values, &data.columns)? {
            Value::Geom(g) => pts.push(g.representative_point()),
            other => {
                return Err(QlError::Eval(format!(
                    "st_DBSCAN over non-geometry {other:?}"
                )))
            }
        }
    }
    let min_pts = functions::eval_const(&args[1])?
        .as_int()
        .ok_or_else(|| QlError::Eval("st_DBSCAN: minPts must be an integer".into()))?
        .max(1) as usize;
    let radius = functions::eval_const(&args[2])?
        .as_float()
        .ok_or_else(|| QlError::Eval("st_DBSCAN: radius must be numeric".into()))?;
    let labels = dbscan(
        &pts,
        &DbscanParams {
            eps: radius,
            min_pts,
        },
    );
    let rows = pts
        .iter()
        .zip(labels)
        .map(|(p, l)| {
            Row::new(vec![
                Value::Geom(Geometry::Point(*p)),
                Value::Int(match l {
                    just_analysis::ClusterLabel::Cluster(c) => c as i64,
                    just_analysis::ClusterLabel::Noise => -1,
                }),
            ])
        })
        .collect();
    Ok(Dataset::new(vec!["geom".into(), "cluster".into()], rows))
}

fn aggregate(
    data: Dataset,
    group_by: &[(Expr, String)],
    aggregates: &[(String, Expr, String)],
) -> Result<(Dataset, &'static str)> {
    if compiled_enabled() {
        if let Some(d) = aggregate_compiled(&data, group_by, aggregates)? {
            return Ok((d, COMPILED));
        }
    }
    Ok((aggregate_interpreted(data, group_by, aggregates)?, FALLBACK))
}

/// Vectorized GROUP BY: keys and aggregate arguments compile to bytecode
/// and evaluate batch-at-a-time into columns fed to the
/// [`HashAggregator`], which folds rows into fixed-size accumulators
/// immediately (O(groups) memory, no per-row key `Vec<Value>` clone).
///
/// Returns `Ok(None)` when any expression doesn't compile or an
/// aggregate has no vectorized spec (unknown names, `func(*)` forms) —
/// the interpreted path owns those error messages, and compile-time
/// column errors must not surface where the interpreter (which never
/// evaluates arguments over zero matching rows) would stay silent.
fn aggregate_compiled(
    data: &Dataset,
    group_by: &[(Expr, String)],
    aggregates: &[(String, Expr, String)],
) -> Result<Option<Dataset>> {
    let mut specs = Vec::with_capacity(aggregates.len());
    let mut arg_progs: Vec<Option<Program>> = Vec::with_capacity(aggregates.len());
    for (func, arg, _) in aggregates {
        let star = matches!(arg, Expr::Star);
        let Some(spec) = AggSpec::resolve(func, star) else {
            return Ok(None);
        };
        specs.push(spec);
        if star {
            arg_progs.push(None);
        } else {
            match try_compile(arg, &data.columns, None) {
                Some(p) => arg_progs.push(Some(p)),
                None => return Ok(None),
            }
        }
    }
    let mut key_progs = Vec::with_capacity(group_by.len());
    for (e, _) in group_by {
        match try_compile(e, &data.columns, None) {
            Some(p) => key_progs.push(p),
            None => return Ok(None),
        }
    }

    let mut agg = HashAggregator::new(specs);
    let mut vm = Vm::new();
    for chunk in data.rows.chunks(BATCH) {
        let sel = full_selection(chunk.len());
        let mut keys: Vec<Vec<Value>> = Vec::with_capacity(key_progs.len());
        for p in &key_progs {
            let mut col = Vec::with_capacity(chunk.len());
            vm.eval(p, chunk, &sel, &mut col).map_err(exec_err)?;
            keys.push(col);
        }
        let mut args: Vec<Option<Vec<Value>>> = Vec::with_capacity(arg_progs.len());
        for p in &arg_progs {
            args.push(match p {
                Some(p) => {
                    let mut col = Vec::with_capacity(chunk.len());
                    vm.eval(p, chunk, &sel, &mut col).map_err(exec_err)?;
                    Some(col)
                }
                None => None,
            });
        }
        agg.push(chunk.len(), &keys, &args).map_err(exec_err)?;
    }

    let mut columns: Vec<String> = group_by.iter().map(|(_, n)| n.clone()).collect();
    columns.extend(aggregates.iter().map(|(_, _, n)| n.clone()));
    let rows = agg
        .finish(group_by.is_empty())
        .into_iter()
        .map(|(mut key_vals, agg_vals)| {
            key_vals.extend(agg_vals);
            Row::new(key_vals)
        })
        .collect();
    Ok(Some(Dataset::new(columns, rows)))
}

/// The interpreted fallback: groups rows by encoded key (hash-indexed,
/// with the encode buffer and key scratch reused across rows), then runs
/// [`eval_aggregate`] per group.
fn aggregate_interpreted(
    data: Dataset,
    group_by: &[(Expr, String)],
    aggregates: &[(String, Expr, String)],
) -> Result<Dataset> {
    let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut key_bytes: Vec<u8> = Vec::new();
    let mut key_vals: Vec<Value> = Vec::new();
    for (row_idx, row) in data.rows.iter().enumerate() {
        key_bytes.clear();
        key_vals.clear();
        for (e, _) in group_by {
            let v = eval(e, &row.values, &data.columns)?;
            v.encode(&mut key_bytes);
            key_vals.push(v);
        }
        let slot = match index.get(key_bytes.as_slice()) {
            Some(&slot) => slot,
            None => {
                index.insert(key_bytes.clone(), groups.len());
                groups.push((std::mem::take(&mut key_vals), Vec::new()));
                groups.len() - 1
            }
        };
        groups[slot].1.push(row_idx);
    }
    // A global aggregate over zero rows still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut columns: Vec<String> = group_by.iter().map(|(_, n)| n.clone()).collect();
    columns.extend(aggregates.iter().map(|(_, _, n)| n.clone()));

    let mut rows = Vec::with_capacity(groups.len());
    for (key_vals, members) in groups {
        let mut values = key_vals;
        for (func, arg, _) in aggregates {
            values.push(eval_aggregate(func, arg, &members, &data)?);
        }
        rows.push(Row::new(values));
    }
    Ok(Dataset::new(columns, rows))
}

fn eval_aggregate(func: &str, arg: &Expr, members: &[usize], data: &Dataset) -> Result<Value> {
    let mut vals: Vec<Value> = Vec::with_capacity(members.len());
    if matches!(arg, Expr::Star) {
        if func != "count" {
            return Err(QlError::Eval(format!("{func}(*) is not supported")));
        }
        return Ok(Value::Int(members.len() as i64));
    }
    for &i in members {
        let v = eval(arg, &data.rows[i].values, &data.columns)?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    Ok(match func {
        "count" => Value::Int(vals.len() as i64),
        "sum" => {
            if vals.is_empty() {
                Value::Null
            } else if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(vals.iter().map(|v| v.as_int().unwrap()).sum())
            } else {
                let mut acc = 0.0;
                for v in &vals {
                    acc += v
                        .as_float()
                        .ok_or_else(|| QlError::Eval(format!("sum over {v:?}")))?;
                }
                Value::Float(acc)
            }
        }
        "avg" => {
            if vals.is_empty() {
                Value::Null
            } else {
                let mut acc = 0.0;
                for v in &vals {
                    acc += v
                        .as_float()
                        .ok_or_else(|| QlError::Eval(format!("avg over {v:?}")))?;
                }
                Value::Float(acc / vals.len() as f64)
            }
        }
        "min" | "max" => {
            let mut best: Option<Value> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = functions::compare(&v, &b)?;
                        let take = if func == "min" {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
        other => return Err(QlError::Eval(format!("unknown aggregate '{other}'"))),
    })
}

/// Sort entry point: the key-normalized byte sort when compiled
/// execution is enabled, the interpreted decorate-and-compare sort
/// otherwise. Both apply the same total order ([`total_compare`] /
/// [`encode_key`] agree by construction), so the toggle only changes
/// speed, never row order.
fn sort_dispatch(data: Dataset, keys: &[(Expr, bool)]) -> Result<(Dataset, Option<&'static str>)> {
    if compiled_enabled() {
        Ok((sort_normalized(data, keys)?, Some(COMPILED)))
    } else {
        Ok((sort(data, keys)?, Some(FALLBACK)))
    }
}

/// The interpreted sort: decorate each row with its evaluated keys, then
/// stable-sort with [`total_compare`] per key. The total order makes
/// incomparable pairs (mixed types the coercing comparator would reject)
/// order deterministically by cross-type rank instead of silently tying.
fn sort(mut data: Dataset, keys: &[(Expr, bool)]) -> Result<Dataset> {
    // Precompute sort keys (eval can fail; do it before sorting).
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(data.rows.len());
    for row in data.rows.drain(..) {
        let mut k = Vec::with_capacity(keys.len());
        for (e, _) in keys {
            k.push(eval(e, &row.values, &data.columns)?);
        }
        decorated.push((k, row));
    }
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, asc)) in keys.iter().enumerate() {
            let ord = total_compare(&ka[i], &kb[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    data.rows = decorated.into_iter().map(|(_, r)| r).collect();
    Ok(data)
}

/// The key-normalized sort: every row's keys encode once into one byte
/// arena (descending keys bitwise-complemented), then a stable indirect
/// sort compares plain byte slices — no `Value` dispatch, no coercion
/// logic in the hot comparator.
fn sort_normalized(mut data: Dataset, keys: &[(Expr, bool)]) -> Result<Dataset> {
    let exprs: Vec<&Expr> = keys.iter().map(|(e, _)| e).collect();
    let key_cols = key_columns(&data, &exprs)?;
    let n = data.rows.len();
    let mut arena: Vec<u8> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(n);
    for r in 0..n {
        let start = arena.len();
        for (i, (_, asc)) in keys.iter().enumerate() {
            encode_key(key_cols[i].at(&data, r), !asc, &mut arena);
        }
        spans.push((start, arena.len()));
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        let (sa, ea) = spans[a as usize];
        let (sb, eb) = spans[b as usize];
        arena[sa..ea].cmp(&arena[sb..eb])
    });
    let mut rows_in = std::mem::take(&mut data.rows);
    data.rows = order
        .into_iter()
        .map(|r| std::mem::replace(&mut rows_in[r as usize], Row::new(Vec::new())))
        .collect();
    Ok(data)
}

/// TOP-K: keep the k first rows of the sorted order without sorting the
/// input, via a bounded max-heap of `(normalized key bytes, sequence)`.
/// The monotone sequence number makes the heap *stable*: a new row whose
/// key equals the current worst compares greater (its sequence is
/// larger) and is rejected, so the kept set and its order are exactly
/// `sort().truncate(k)` of the interpreted baseline — which is what the
/// operator runs when compiled execution is disabled.
fn topk(data: Dataset, keys: &[(Expr, bool)], k: usize) -> Result<(Dataset, Option<&'static str>)> {
    if !compiled_enabled() {
        let mut d = sort(data, keys)?;
        d.rows.truncate(k);
        return Ok((d, Some(FALLBACK)));
    }
    let obs = just_obs::global();
    obs.counter("just_exec_topk_queries").inc();

    // Keys are evaluated for every row even when k = 0 — the sort they
    // replace would have, and errors must not depend on k.
    let exprs: Vec<&Expr> = keys.iter().map(|(e, _)| e).collect();
    let key_cols = key_columns(&data, &exprs)?;
    let n = data.rows.len();
    let mut heap: BinaryHeap<(Vec<u8>, usize)> = BinaryHeap::with_capacity(k.min(n) + 1);
    let mut enc: Vec<u8> = Vec::new();
    for r in 0..n {
        enc.clear();
        for (i, (_, asc)) in keys.iter().enumerate() {
            encode_key(key_cols[i].at(&data, r), !asc, &mut enc);
        }
        if heap.len() < k {
            heap.push((enc.clone(), r));
        } else if let Some(worst) = heap.peek() {
            if enc.as_slice() < worst.0.as_slice() {
                heap.pop();
                heap.push((enc.clone(), r));
            }
        }
    }
    let mut rows_in = data.rows;
    let picked = heap.into_sorted_vec();
    let mut rows = Vec::with_capacity(picked.len());
    for (_, r) in picked {
        rows.push(std::mem::replace(&mut rows_in[r], Row::new(Vec::new())));
    }
    obs.counter("just_exec_topk_rows_pruned")
        .add((n - rows.len()) as u64);
    Ok((Dataset::new(data.columns, rows), Some(COMPILED)))
}

/// A sort/TOP-K key column: either a direct reference into the input
/// rows (bare-column keys encode straight from the stored values — no
/// clone, no VM) or a materialized column of computed key values.
enum KeyCol {
    Col(usize),
    Owned(Vec<Value>),
}

impl KeyCol {
    fn at<'a>(&'a self, data: &'a Dataset, r: usize) -> &'a Value {
        match self {
            KeyCol::Col(i) => &data.rows[r].values[*i],
            KeyCol::Owned(vals) => &vals[r],
        }
    }
}

/// Resolves each key expression to a [`KeyCol`]: bare columns borrow,
/// anything else evaluates through [`eval_key_columns`]. Resolution
/// errors are exactly the interpreted `eval()` errors.
fn key_columns(data: &Dataset, exprs: &[&Expr]) -> Result<Vec<KeyCol>> {
    exprs
        .iter()
        .map(|e| match e {
            Expr::Column(name) => Ok(KeyCol::Col(resolve_column(name, &data.columns)?)),
            other => Ok(KeyCol::Owned(
                eval_key_columns(data, &[other])?.pop().expect("one column"),
            )),
        })
        .collect()
}

/// Evaluates one output column per expression over the whole dataset —
/// compiled batch-at-a-time when the expression lowers to bytecode,
/// interpreted row-at-a-time otherwise.
fn eval_key_columns(data: &Dataset, exprs: &[&Expr]) -> Result<Vec<Vec<Value>>> {
    let mut vm = Vm::new();
    let mut cols = Vec::with_capacity(exprs.len());
    for e in exprs {
        let mut col: Vec<Value> = Vec::with_capacity(data.rows.len());
        match try_compile(e, &data.columns, None) {
            Some(prog) => {
                for chunk in data.rows.chunks(BATCH) {
                    vm.eval(&prog, chunk, &full_selection(chunk.len()), &mut col)
                        .map_err(exec_err)?;
                }
            }
            None => {
                for row in &data.rows {
                    col.push(eval(e, &row.values, &data.columns)?);
                }
            }
        }
        cols.push(col);
    }
    Ok(cols)
}

/// Nested-loop inner join for non-equi conditions (and the runtime
/// fallback of [`hash_join`]). One scratch `combined` buffer is reused
/// across pairs — the left row's values are cloned once per left row,
/// each right row's values once per pair, and the buffer itself is only
/// cloned out for pairs that pass the predicate.
fn join(left: Dataset, right: Dataset, on: &Expr) -> Result<Dataset> {
    let mut columns = left.columns.clone();
    columns.extend(right.columns.iter().cloned());
    let rows = nested_loop_join(&left, &right, on, &columns)?;
    Ok(Dataset::new(columns, rows))
}

fn nested_loop_join(
    left: &Dataset,
    right: &Dataset,
    on: &Expr,
    columns: &[String],
) -> Result<Vec<Row>> {
    just_obs::global().counter("just_exec_join_fallbacks").inc();
    let left_width = left.columns.len();
    let mut rows = Vec::new();
    let mut combined: Vec<Value> = Vec::with_capacity(columns.len());
    for l in &left.rows {
        combined.clear();
        combined.extend(l.values.iter().cloned());
        for r in &right.rows {
            combined.truncate(left_width);
            combined.extend(r.values.iter().cloned());
            if truthy(&eval(on, &combined, columns)?) {
                rows.push(Row::new(combined.clone()));
            }
        }
    }
    Ok(rows)
}

/// Which input of a join an expression reads from, judged by where its
/// columns resolve in the combined header.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    Left,
    Right,
}

fn side_of(e: &Expr, columns: &[String], left_width: usize) -> Option<Side> {
    let mut side = None;
    for c in e.columns() {
        let idx = resolve_column(&c, columns).ok()?;
        let s = if idx < left_width {
            Side::Left
        } else {
            Side::Right
        };
        match side {
            None => side = Some(s),
            Some(p) if p == s => {}
            _ => return None,
        }
    }
    side
}

/// Rebuilds the `on` conjunction a [`LogicalPlan::HashJoin`] was planned
/// from, for the nested-loop fallback paths.
fn reconstruct_on(keys: &[(Expr, Expr)], residual: &Option<Expr>) -> Expr {
    let mut conjuncts: Vec<Expr> = keys
        .iter()
        .map(|(l, r)| Expr::Binary {
            op: BinOp::Eq,
            lhs: Box::new(l.clone()),
            rhs: Box::new(r.clone()),
        })
        .collect();
    conjuncts.extend(residual.clone());
    conjuncts
        .into_iter()
        .reduce(|a, b| Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(a),
            rhs: Box::new(b),
        })
        .expect("join condition is non-empty")
}

fn combined_row(l: &Row, r: &Row) -> Row {
    let mut v = Vec::with_capacity(l.values.len() + r.values.len());
    v.extend(l.values.iter().cloned());
    v.extend(r.values.iter().cloned());
    Row::new(v)
}

/// Vectorized equi-join: evaluate each side's key expressions (compiled
/// when possible), build a [`JoinHash`] over the smaller side's encoded
/// key bytes, probe with the other side, and run the residual as one
/// program over the matched combined rows.
///
/// Output order is exactly the nested loop's (left-major, right rows in
/// input order), so the interpreted baseline is byte-identical:
/// build-right probes the left rows in order; build-left accumulates
/// per-left-row match lists before emitting.
///
/// Falls back to the nested loop — counted by `just_exec_join_fallbacks`
/// and marked `fallback` — when a key straddles both inputs, when the
/// runtime value classes aren't hashable (mixed classes, NaN,
/// geometries, or a cross-side class mismatch where the interpreted
/// comparator would coerce or error), or when compiled execution is
/// disabled. Error caveat: key expressions evaluate column-at-a-time
/// here, so *which* row's error surfaces first can differ from the
/// pair-at-a-time interpreted loop; whether an error surfaces does not.
fn hash_join(
    left: Dataset,
    right: Dataset,
    keys: &[(Expr, Expr)],
    residual: &Option<Expr>,
) -> Result<(Dataset, Option<&'static str>)> {
    let mut columns = left.columns.clone();
    columns.extend(right.columns.iter().cloned());

    if !compiled_enabled() {
        let on = reconstruct_on(keys, residual);
        let rows = nested_loop_join(&left, &right, &on, &columns)?;
        return Ok((Dataset::new(columns, rows), Some(FALLBACK)));
    }

    // The nested loop never evaluates the condition when either side is
    // empty (there are no pairs); match that before validating anything.
    if left.rows.is_empty() || right.rows.is_empty() {
        return Ok((Dataset::new(columns, Vec::new()), None));
    }

    // With at least one pair, the interpreted loop would resolve every
    // column and function of the condition — surface the same errors.
    for (l, r) in keys {
        validate_columns(l, &columns)?;
        validate_columns(r, &columns)?;
    }
    if let Some(r) = residual {
        validate_columns(r, &columns)?;
    }

    // Assign each candidate pair's sides from the headers; pairs that
    // straddle the inputs (or compare an input to itself) demote to the
    // residual.
    let left_width = left.columns.len();
    let mut pairs: Vec<(&Expr, &Expr)> = Vec::new();
    let mut extra: Vec<Expr> = Vec::new();
    for (lhs, rhs) in keys {
        match (
            side_of(lhs, &columns, left_width),
            side_of(rhs, &columns, left_width),
        ) {
            (Some(Side::Left), Some(Side::Right)) => pairs.push((lhs, rhs)),
            (Some(Side::Right), Some(Side::Left)) => pairs.push((rhs, lhs)),
            _ => extra.push(Expr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(lhs.clone()),
                rhs: Box::new(rhs.clone()),
            }),
        }
    }
    let residual = {
        let mut parts = extra;
        parts.extend(residual.clone());
        parts.into_iter().reduce(|a, b| Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(a),
            rhs: Box::new(b),
        })
    };
    if pairs.is_empty() {
        // No usable equi key at runtime: every conjunct is in `residual`.
        let on = residual.expect("join condition is non-empty");
        let rows = nested_loop_join(&left, &right, &on, &columns)?;
        return Ok((Dataset::new(columns, rows), Some(FALLBACK)));
    }

    // A key expression classified Left resolves identically against the
    // left-only header (exact/suffix/bare precedence is unchanged when
    // every match lives in the left range), so each side's keys compile
    // and evaluate against its own input.
    let left_exprs: Vec<&Expr> = pairs.iter().map(|&(l, _)| l).collect();
    let right_exprs: Vec<&Expr> = pairs.iter().map(|&(_, r)| r).collect();
    let left_keys = eval_key_columns(&left, &left_exprs)?;
    let right_keys = eval_key_columns(&right, &right_exprs)?;

    if !keys_hashable(&left_keys, &right_keys) {
        let key_exprs: Vec<(Expr, Expr)> =
            pairs.iter().map(|&(l, r)| (l.clone(), r.clone())).collect();
        let on = reconstruct_on(&key_exprs, &residual);
        let rows = nested_loop_join(&left, &right, &on, &columns)?;
        return Ok((Dataset::new(columns, rows), Some(FALLBACK)));
    }

    let obs = just_obs::global();
    let build_left = left.rows.len() <= right.rows.len();
    let mut candidates: Vec<Row> = Vec::new();
    if build_left {
        let mut table = JoinHash::build(left.rows.len(), &left_keys);
        obs.counter("just_exec_join_build_rows")
            .add(table.rows_built());
        obs.counter("just_exec_join_probe_rows")
            .add(right.rows.len() as u64);
        let mut matches: Vec<Vec<u32>> = vec![Vec::new(); left.rows.len()];
        for r in 0..right.rows.len() {
            if let Some(bucket) = table.probe(&right_keys, r) {
                for &l in bucket {
                    matches[l as usize].push(r as u32);
                }
            }
        }
        for (l, rs) in matches.iter().enumerate() {
            for &r in rs {
                candidates.push(combined_row(&left.rows[l], &right.rows[r as usize]));
            }
        }
    } else {
        let mut table = JoinHash::build(right.rows.len(), &right_keys);
        obs.counter("just_exec_join_build_rows")
            .add(table.rows_built());
        obs.counter("just_exec_join_probe_rows")
            .add(left.rows.len() as u64);
        for l in 0..left.rows.len() {
            if let Some(bucket) = table.probe(&left_keys, l) {
                for &r in bucket {
                    candidates.push(combined_row(&left.rows[l], &right.rows[r as usize]));
                }
            }
        }
    }

    // Residual over matched pairs: one compiled program per batch, or
    // the interpreted row loop.
    let rows = match &residual {
        None => candidates,
        Some(pred) => {
            if let Some(prog) = try_compile(pred, &columns, None) {
                let mut vm = Vm::new();
                let mut rows = Vec::with_capacity(candidates.len());
                let mut chunk = candidates;
                while !chunk.is_empty() {
                    let rest = chunk.split_off(chunk.len().min(BATCH));
                    let mut sel = Vec::with_capacity(chunk.len());
                    vm.select(&prog, &chunk, &full_selection(chunk.len()), &mut sel)
                        .map_err(exec_err)?;
                    rows.extend(take_selected(chunk, &sel));
                    chunk = rest;
                }
                rows
            } else {
                let mut rows = Vec::with_capacity(candidates.len());
                for row in candidates {
                    if truthy(&eval(pred, &row.values, &columns)?) {
                        rows.push(row);
                    }
                }
                rows
            }
        }
    };
    Ok((Dataset::new(columns, rows), Some(COMPILED)))
}
