//! The rule-based SQL optimizer (Section VI, "SQL Optimize").
//!
//! Three rewrite rules, exactly the paper's list:
//!
//! 1. **Calculate constant expressions** — `fid = 52*9` becomes
//!    `fid = 468`, `st_makeMBR(...)` becomes a rectangle literal.
//! 2. **Push down selections** — spatio-temporal predicates
//!    (`geom WITHIN <rect>`, `time BETWEEN a AND b`) and residual
//!    predicates move through projections into the `Scan`, where the
//!    storage layer turns them into index key ranges.
//! 3. **Push down projections** — only the columns needed by filters,
//!    sorts and outputs are retained at the scan.
//!
//! Plus one rule beyond the paper's list, enabled by the streaming read
//! path:
//!
//! 4. **Push down limits** — a `LIMIT k` whose input is a scan (possibly
//!    behind pure-column projections) annotates the scan with `limit=k`,
//!    so the executor stops pulling batches — and the kvstore stops
//!    reading blocks — after the k-th *matching* row. The `Limit` node is
//!    kept as the authoritative truncation.

use crate::ast::{BinOp, Expr};
use crate::functions::eval_const;
use crate::plan::LogicalPlan;
use crate::Result;
use just_storage::Value;

/// Runs all rules to fixpoint-ish (each rule once; they are confluent for
/// the plans the parser produces).
pub fn optimize(plan: LogicalPlan) -> Result<LogicalPlan> {
    let plan = fold_constants(plan)?;
    let plan = eliminate_trivial_filters(plan);
    let plan = push_down_filters(plan)?;
    let plan = push_down_projections(plan);
    let plan = push_down_limits(plan);
    let plan = fuse_topk(plan);
    let plan = plan_hash_joins(plan);
    let plan = fuse_filter_project(plan);
    Ok(plan)
}

// ----------------------------------------------------------------------
// Rule 1: constant folding
// ----------------------------------------------------------------------

/// Folds constant sub-expressions throughout the plan.
fn fold_constants(plan: LogicalPlan) -> Result<LogicalPlan> {
    map_exprs(plan, &mut fold_expr)
}

fn fold_expr(e: Expr) -> Result<Expr> {
    // Fold children first.
    let e = match e {
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op,
            lhs: Box::new(fold_expr(*lhs)?),
            rhs: Box::new(fold_expr(*rhs)?),
        },
        Expr::Unary { not, expr } => Expr::Unary {
            not,
            expr: Box::new(fold_expr(*expr)?),
        },
        Expr::Func { name, args } => Expr::Func {
            name,
            args: args.into_iter().map(fold_expr).collect::<Result<_>>()?,
        },
        Expr::Between { expr, lo, hi } => Expr::Between {
            expr: Box::new(fold_expr(*expr)?),
            lo: Box::new(fold_expr(*lo)?),
            hi: Box::new(fold_expr(*hi)?),
        },
        other => other,
    };
    if e.is_constant() && !matches!(e, Expr::Literal(_)) && !contains_volatile(&e) {
        // Aggregates and errors are left in place for the executor.
        if let Ok(v) = eval_const(&e) {
            return Ok(Expr::Literal(v));
        }
    }
    Ok(e)
}

/// Whether any function in the expression is volatile (side-effecting,
/// like `sleep_ms`) — folding one at plan time would run the side effect
/// once instead of per row and bake the result into the plan.
fn contains_volatile(e: &Expr) -> bool {
    let mut volatile = false;
    e.walk(&mut |x| {
        if let Expr::Func { name, .. } = x {
            if crate::functions::is_volatile(name) {
                volatile = true;
            }
        }
    });
    volatile
}

fn map_exprs(plan: LogicalPlan, f: &mut impl FnMut(Expr) -> Result<Expr>) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(map_exprs(*input, f)?),
            predicate: f(predicate)?,
        },
        LogicalPlan::Project { input, items } => LogicalPlan::Project {
            input: Box::new(map_exprs(*input, f)?),
            items: items
                .into_iter()
                .map(|(e, n)| Ok((f(e)?, n)))
                .collect::<Result<_>>()?,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_exprs(*input, f)?),
            group_by: group_by
                .into_iter()
                .map(|(e, n)| Ok((f(e)?, n)))
                .collect::<Result<_>>()?,
            aggregates: aggregates
                .into_iter()
                .map(|(fun, e, n)| Ok((fun, f(e)?, n)))
                .collect::<Result<_>>()?,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(map_exprs(*input, f)?),
            keys: keys
                .into_iter()
                .map(|(e, asc)| Ok((f(e)?, asc)))
                .collect::<Result<_>>()?,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(map_exprs(*input, f)?),
            n,
        },
        LogicalPlan::Join { left, right, on } => LogicalPlan::Join {
            left: Box::new(map_exprs(*left, f)?),
            right: Box::new(map_exprs(*right, f)?),
            on: f(on)?,
        },
        LogicalPlan::HashJoin {
            left,
            right,
            keys,
            residual,
        } => LogicalPlan::HashJoin {
            left: Box::new(map_exprs(*left, f)?),
            right: Box::new(map_exprs(*right, f)?),
            keys: keys
                .into_iter()
                .map(|(l, r)| Ok((f(l)?, f(r)?)))
                .collect::<Result<_>>()?,
            residual: residual.map(&mut *f).transpose()?,
        },
        LogicalPlan::TopK { input, keys, k } => LogicalPlan::TopK {
            input: Box::new(map_exprs(*input, f)?),
            keys: keys
                .into_iter()
                .map(|(e, asc)| Ok((f(e)?, asc)))
                .collect::<Result<_>>()?,
            k,
        },
        LogicalPlan::FilterProject {
            input,
            predicate,
            items,
        } => LogicalPlan::FilterProject {
            input: Box::new(map_exprs(*input, f)?),
            predicate: f(predicate)?,
            items: items
                .into_iter()
                .map(|(e, n)| Ok((f(e)?, n)))
                .collect::<Result<_>>()?,
        },
        leaf => leaf,
    })
}

// ----------------------------------------------------------------------
// Rule 1b: trivial-filter elimination
// ----------------------------------------------------------------------

/// Removes filter work that constant folding already decided: truthy
/// literal conjuncts are deleted (evaluating a literal has no effects,
/// so this is position-independent), `WHERE 1 = 1` disappears from the
/// plan entirely — no Filter node, no residual, no per-row work — and a
/// predicate that is false before any row-dependent conjunct becomes
/// `Limit [0]`: the input relation's header survives but no rows are
/// pulled. A falsy literal *after* a row-dependent conjunct stays put,
/// preserving the interpreter's left-to-right evaluation (the earlier
/// conjunct may error). Runs right after constant folding, which is what
/// produces the literal predicates this rule consumes.
fn eliminate_trivial_filters(plan: LogicalPlan) -> LogicalPlan {
    map_plan(plan, &mut |node| match node {
        LogicalPlan::Filter { input, predicate } => {
            let mut kept: Vec<Expr> = Vec::new();
            for c in split_conjuncts(predicate) {
                match &c {
                    Expr::Literal(v) if crate::functions::truthy(v) => {}
                    Expr::Literal(_) if kept.is_empty() => {
                        return LogicalPlan::Limit { input, n: 0 };
                    }
                    _ => kept.push(c),
                }
            }
            match merge_residual(None, kept) {
                Some(predicate) => LogicalPlan::Filter { input, predicate },
                None => *input,
            }
        }
        other => other,
    })
}

/// Rebuilds the plan bottom-up, applying `f` to every node after its
/// inputs have been rewritten.
fn map_plan(plan: LogicalPlan, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    let plan = match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(map_plan(*input, f)),
            predicate,
        },
        LogicalPlan::Project { input, items } => LogicalPlan::Project {
            input: Box::new(map_plan(*input, f)),
            items,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_plan(*input, f)),
            group_by,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(map_plan(*input, f)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(map_plan(*input, f)),
            n,
        },
        LogicalPlan::Join { left, right, on } => LogicalPlan::Join {
            left: Box::new(map_plan(*left, f)),
            right: Box::new(map_plan(*right, f)),
            on,
        },
        LogicalPlan::HashJoin {
            left,
            right,
            keys,
            residual,
        } => LogicalPlan::HashJoin {
            left: Box::new(map_plan(*left, f)),
            right: Box::new(map_plan(*right, f)),
            keys,
            residual,
        },
        LogicalPlan::TopK { input, keys, k } => LogicalPlan::TopK {
            input: Box::new(map_plan(*input, f)),
            keys,
            k,
        },
        LogicalPlan::FilterProject {
            input,
            predicate,
            items,
        } => LogicalPlan::FilterProject {
            input: Box::new(map_plan(*input, f)),
            predicate,
            items,
        },
        leaf => leaf,
    };
    f(plan)
}

// ----------------------------------------------------------------------
// Rule 2: selection pushdown
// ----------------------------------------------------------------------

fn push_down_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_down_filters(*input)?;
            push_filter_into(input, predicate)?
        }
        LogicalPlan::Project { input, items } => LogicalPlan::Project {
            input: Box::new(push_down_filters(*input)?),
            items,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_filters(*input)?),
            group_by,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_down_filters(*input)?),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(push_down_filters(*input)?),
            n,
        },
        LogicalPlan::Join { left, right, on } => LogicalPlan::Join {
            left: Box::new(push_down_filters(*left)?),
            right: Box::new(push_down_filters(*right)?),
            on,
        },
        leaf => leaf,
    })
}

fn push_filter_into(input: LogicalPlan, predicate: Expr) -> Result<LogicalPlan> {
    match input {
        // Through a pure-column projection (like the paper's example where
        // the filter sinks through `SELECT * FROM t`).
        LogicalPlan::Project { input, items }
            if items.iter().all(|(e, n)| {
                matches!(e, Expr::Column(c) if c == n) || matches!(e, Expr::Star)
            }) =>
        {
            let pushed = push_filter_into(*input, predicate)?;
            Ok(LogicalPlan::Project {
                input: Box::new(pushed),
                items,
            })
        }
        LogicalPlan::Scan {
            table,
            alias,
            projection,
            mut spatial,
            mut time,
            residual,
            limit,
        } => {
            let mut leftovers: Vec<Expr> = Vec::new();
            for conjunct in split_conjuncts(predicate) {
                if spatial.is_none() {
                    if let Some(hit) = match_spatial(&conjunct) {
                        spatial = Some(hit);
                        continue;
                    }
                }
                if time.is_none() {
                    if let Some(hit) = match_temporal(&conjunct) {
                        time = Some(hit);
                        continue;
                    }
                }
                leftovers.push(conjunct);
            }
            let residual = merge_residual(residual, leftovers);
            Ok(LogicalPlan::Scan {
                table,
                alias,
                projection,
                spatial,
                time,
                residual,
                limit,
            })
        }
        other => Ok(LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        }),
    }
}

fn split_conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            let mut out = split_conjuncts(*lhs);
            out.extend(split_conjuncts(*rhs));
            out
        }
        other => vec![other],
    }
}

fn merge_residual(existing: Option<Expr>, leftovers: Vec<Expr>) -> Option<Expr> {
    let mut all: Vec<Expr> = existing.into_iter().collect();
    all.extend(leftovers);
    all.into_iter().reduce(|a, b| Expr::Binary {
        op: BinOp::And,
        lhs: Box::new(a),
        rhs: Box::new(b),
    })
}

/// `geom WITHIN <rect literal>` (after constant folding).
fn match_spatial(e: &Expr) -> Option<(String, just_geo::Rect)> {
    if let Expr::Binary {
        op: BinOp::Within,
        lhs,
        rhs,
    } = e
    {
        if let (Expr::Column(col), Expr::Literal(Value::Geom(g))) = (lhs.as_ref(), rhs.as_ref()) {
            return Some((col.clone(), g.mbr()));
        }
    }
    // st_within(geom, <rect>)
    if let Expr::Func { name, args } = e {
        if name == "st_within" && args.len() == 2 {
            if let (Expr::Column(col), Expr::Literal(Value::Geom(g))) = (&args[0], &args[1]) {
                return Some((col.clone(), g.mbr()));
            }
        }
    }
    None
}

/// `time BETWEEN <a> AND <b>` or `(time >= a AND time <= b)` halves.
fn match_temporal(e: &Expr) -> Option<(String, i64, i64)> {
    if let Expr::Between { expr, lo, hi } = e {
        if let (Expr::Column(col), Expr::Literal(a), Expr::Literal(b)) =
            (expr.as_ref(), lo.as_ref(), hi.as_ref())
        {
            let a = a.as_date()?;
            let b = b.as_date()?;
            return Some((col.clone(), a.min(b), a.max(b)));
        }
    }
    None
}

// ----------------------------------------------------------------------
// Rule 3: projection pushdown
// ----------------------------------------------------------------------

fn push_down_projections(plan: LogicalPlan) -> LogicalPlan {
    // Top-down: compute required columns; `None` = everything.
    prune(plan, None)
}

fn prune(plan: LogicalPlan, required: Option<Vec<String>>) -> LogicalPlan {
    match plan {
        LogicalPlan::Project { input, items } => {
            // An identity projection (`SELECT *`) adds nothing: elide it
            // and pass the parent's requirement straight through — this is
            // how the paper's Figure 8 subquery collapses.
            if items.len() == 1 && matches!(items[0].0, Expr::Star) {
                return prune(*input, required);
            }
            // Columns the projection itself needs (a Star needs all).
            let mut needed = Vec::new();
            let mut star = false;
            for (e, _) in &items {
                if matches!(e, Expr::Star) {
                    star = true;
                }
                needed.extend(e.columns());
            }
            let child_req = if star { None } else { Some(needed) };
            LogicalPlan::Project {
                input: Box::new(prune(*input, child_req)),
                items,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let child_req = required.map(|mut r| {
                r.extend(predicate.columns());
                r
            });
            LogicalPlan::Filter {
                input: Box::new(prune(*input, child_req)),
                predicate,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let child_req = required.map(|mut r| {
                for (e, _) in &keys {
                    r.extend(e.columns());
                }
                r
            });
            LogicalPlan::Sort {
                input: Box::new(prune(*input, child_req)),
                keys,
            }
        }
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(prune(*input, required)),
            n,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let mut needed = Vec::new();
            for (e, _) in &group_by {
                needed.extend(e.columns());
            }
            for (_, e, _) in &aggregates {
                // count(*) needs no concrete column beyond the group keys;
                // the scan still produces rows regardless.
                if !matches!(e, Expr::Star) {
                    needed.extend(e.columns());
                }
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune(*input, Some(needed))),
                group_by,
                aggregates,
            }
        }
        LogicalPlan::Scan {
            table,
            alias,
            projection,
            spatial,
            time,
            residual,
            limit,
        } => {
            let projection = match (projection, required) {
                (Some(p), _) => Some(p),
                (None, Some(mut req)) => {
                    // The scan itself also needs its pushed-down columns.
                    if let Some((c, _)) = &spatial {
                        req.push(c.clone());
                    }
                    if let Some((c, _, _)) = &time {
                        req.push(c.clone());
                    }
                    if let Some(r) = &residual {
                        req.extend(r.columns());
                    }
                    req.sort();
                    req.dedup();
                    Some(req)
                }
                (None, None) => None,
            };
            LogicalPlan::Scan {
                table,
                alias,
                projection,
                spatial,
                time,
                residual,
                limit,
            }
        }
        LogicalPlan::Join { left, right, on } => {
            // Joins keep full inputs (qualified-name bookkeeping across
            // pruned joins isn't worth the complexity at this scale).
            let _ = &on;
            LogicalPlan::Join {
                left: Box::new(prune(*left, None)),
                right: Box::new(prune(*right, None)),
                on,
            }
        }
        leaf => leaf,
    }
}

// ----------------------------------------------------------------------
// Rule 4: limit pushdown
// ----------------------------------------------------------------------

fn push_down_limits(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Limit { input, n } => {
            let input = push_down_limits(*input);
            LogicalPlan::Limit {
                input: Box::new(sink_limit(input, n)),
                n,
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(push_down_limits(*input)),
            predicate,
        },
        LogicalPlan::Project { input, items } => LogicalPlan::Project {
            input: Box::new(push_down_limits(*input)),
            items,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_limits(*input)),
            group_by,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_down_limits(*input)),
            keys,
        },
        LogicalPlan::Join { left, right, on } => LogicalPlan::Join {
            left: Box::new(push_down_limits(*left)),
            right: Box::new(push_down_limits(*right)),
            on,
        },
        leaf => leaf,
    }
}

/// Annotates the scan under `LIMIT n`, if it is reachable through
/// row-count-preserving operators only. Pure-column projections (and
/// `SELECT *`) neither add nor drop rows, so a limit sinks through them;
/// `Filter`, `Sort`, `Aggregate`, `Join` and expression-computing
/// projections (table functions like `st_traj2points` may *expand* rows)
/// all block it. The scan's own pushed-down predicates don't block the
/// sink: the streaming executor counts rows *after* its refine step.
fn sink_limit(plan: LogicalPlan, n: usize) -> LogicalPlan {
    match plan {
        LogicalPlan::Project { input, items }
            if items.iter().all(|(e, name)| {
                matches!(e, Expr::Column(c) if c == name) || matches!(e, Expr::Star)
            }) =>
        {
            LogicalPlan::Project {
                input: Box::new(sink_limit(*input, n)),
                items,
            }
        }
        LogicalPlan::Limit { input, n: inner } => LogicalPlan::Limit {
            input: Box::new(sink_limit(*input, inner.min(n))),
            n: inner,
        },
        LogicalPlan::Scan {
            table,
            alias,
            projection,
            spatial,
            time,
            residual,
            limit,
        } => LogicalPlan::Scan {
            table,
            alias,
            projection,
            spatial,
            time,
            residual,
            limit: Some(limit.map_or(n, |l| l.min(n))),
        },
        other => other,
    }
}

// ----------------------------------------------------------------------
// Rule 5: Sort+Limit → TopK
// ----------------------------------------------------------------------

/// Fuses a `Sort` reachable from a `LIMIT k` through row-count-preserving
/// pure-column projections into a [`LogicalPlan::TopK`]: the executor
/// keeps a bounded heap of k rows over normalized keys instead of fully
/// sorting and then truncating. The `Limit` node is kept as the
/// authoritative truncation, exactly like scan limit pushdown.
fn fuse_topk(plan: LogicalPlan) -> LogicalPlan {
    map_plan(plan, &mut |node| match node {
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(sink_topk(*input, n)),
            n,
        },
        other => other,
    })
}

/// Replaces a `Sort` reachable from the limit with `TopK`, or returns
/// the plan unchanged when there is none. Only pure-column projections
/// are sunk through — the same condition as limit pushdown (the
/// hidden-ORDER-BY-column shape puts exactly such a projection between
/// Limit and Sort).
fn sink_topk(plan: LogicalPlan, k: usize) -> LogicalPlan {
    match plan {
        LogicalPlan::Sort { input, keys } => LogicalPlan::TopK { input, keys, k },
        LogicalPlan::Project { input, items }
            if items.iter().all(|(e, name)| {
                matches!(e, Expr::Column(c) if c == name) || matches!(e, Expr::Star)
            }) =>
        {
            LogicalPlan::Project {
                input: Box::new(sink_topk(*input, k)),
                items,
            }
        }
        other => other,
    }
}

// ----------------------------------------------------------------------
// Rule 6: equi-join planning
// ----------------------------------------------------------------------

/// Decomposes each `Join`'s `on` conjunction into candidate equi-key
/// pairs (`lhs = rhs` where both sides reference columns) plus a
/// residual, producing a [`LogicalPlan::HashJoin`]. Side assignment of
/// the key expressions needs the input headers, so it happens in the
/// executor; conjuncts that straddle both inputs (or whose runtime value
/// classes aren't hashable) demote to the residual / nested-loop
/// fallback there. A join with no equi candidate (cross join, pure
/// inequality) keeps the nested loop.
fn plan_hash_joins(plan: LogicalPlan) -> LogicalPlan {
    map_plan(plan, &mut |node| match node {
        LogicalPlan::Join { left, right, on } => {
            let mut keys = Vec::new();
            let mut rest = Vec::new();
            for c in split_conjuncts(on) {
                match c {
                    Expr::Binary {
                        op: BinOp::Eq,
                        lhs,
                        rhs,
                    } if !lhs.columns().is_empty() && !rhs.columns().is_empty() => {
                        keys.push((*lhs, *rhs));
                    }
                    other => rest.push(other),
                }
            }
            if keys.is_empty() {
                let on = merge_residual(None, rest).expect("join condition is non-empty");
                LogicalPlan::Join { left, right, on }
            } else {
                LogicalPlan::HashJoin {
                    left,
                    right,
                    keys,
                    residual: merge_residual(None, rest),
                }
            }
        }
        other => other,
    })
}

// ----------------------------------------------------------------------
// Rule 7: Filter→Project fusion
// ----------------------------------------------------------------------

/// Fuses a `Project` directly above a `Filter` into one
/// [`LogicalPlan::FilterProject`] operator, so each batch is filtered
/// and projected in a single pass (one compiled-program spine segment)
/// without materializing the intermediate relation. Filters that pushed
/// into scans are already gone by this point; the survivors sit above
/// aggregates and joins — exactly the spots where an extra
/// materialization hurts.
fn fuse_filter_project(plan: LogicalPlan) -> LogicalPlan {
    map_plan(plan, &mut |node| match node {
        LogicalPlan::Project { input, items } => match *input {
            LogicalPlan::Filter { input, predicate } => LogicalPlan::FilterProject {
                input,
                predicate,
                items,
            },
            other => LogicalPlan::Project {
                input: Box::new(other),
                items,
            },
        },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Statement;

    fn optimized(sql: &str) -> LogicalPlan {
        match parse(sql).unwrap() {
            Statement::Query(q) => optimize(LogicalPlan::from_select(&q).unwrap()).unwrap(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_figure8_pipeline() {
        // The exact statement of Section VI.
        let plan = optimized(
            "SELECT name, geom FROM (SELECT * FROM tbl) t \
             WHERE fid = 52*9 AND geom WITHIN st_makeMBR(1, 2, 3, 4) \
             ORDER BY time",
        );
        let rendered = plan.render();
        // Constant folding: no trace of 52*9 survives; pushdown: the scan
        // carries the spatial window and the fid=468 residual; projection
        // pushdown: the scan retains only the needed fields.
        assert!(!rendered.contains("52"), "{rendered}");
        assert!(rendered.contains("spatial=(geom within"), "{rendered}");
        assert!(rendered.contains("+residual"), "{rendered}");
        assert!(
            rendered.contains(r#"project=["fid", "geom", "name", "time"]"#),
            "{rendered}"
        );
        // No Filter node remains above the scan.
        assert!(!rendered.contains("Filter"), "{rendered}");
    }

    #[test]
    fn st_range_predicates_reach_the_scan() {
        let plan = optimized(
            "SELECT fid FROM t WHERE geom WITHIN st_makeMBR(1,2,3,4) \
             AND time BETWEEN 100 AND 200",
        );
        let rendered = plan.render();
        assert!(rendered.contains("spatial=(geom within"));
        assert!(rendered.contains("time=(time in [100,200])"));
        assert!(!rendered.contains("+residual"));
    }

    #[test]
    fn non_pushable_predicates_stay_as_residual() {
        let plan = optimized("SELECT a FROM t WHERE a > b + 1");
        let rendered = plan.render();
        assert!(rendered.contains("+residual"));
    }

    #[test]
    fn constants_fold_in_projections() {
        let plan = optimized("SELECT 1 + 2 * 3 AS x FROM t");
        match plan {
            LogicalPlan::Project { items, .. } => {
                assert_eq!(items[0].0, Expr::Literal(Value::Int(7)));
            }
            other => panic!("{}", other.render()),
        }
    }

    #[test]
    fn limit_sinks_through_pure_projections_into_scan() {
        let plan =
            optimized("SELECT fid, geom FROM t WHERE geom WITHIN st_makeMBR(1,2,3,4) LIMIT 10");
        let rendered = plan.render();
        // Limit node kept, scan annotated.
        assert!(rendered.contains("Limit [10]"), "{rendered}");
        assert!(rendered.contains("limit=10"), "{rendered}");
    }

    #[test]
    fn limit_blocked_by_sort() {
        // Sorting needs the full input; the scan must not stop early.
        let plan = optimized("SELECT fid FROM t ORDER BY time LIMIT 5");
        let rendered = plan.render();
        assert!(rendered.contains("Limit [5]"), "{rendered}");
        assert!(!rendered.contains("limit=5"), "{rendered}");
    }

    #[test]
    fn tautological_filters_vanish() {
        // `WHERE 1 = 1` folds to a literal and the filter disappears:
        // no Filter node, no residual at the scan, no per-row work.
        let plan = optimized("SELECT a FROM t WHERE 1 = 1");
        let rendered = plan.render();
        assert!(!rendered.contains("Filter"), "{rendered}");
        assert!(!rendered.contains("residual"), "{rendered}");

        // Conjunction with a real predicate: the tautology folds away
        // inside the conjunct, the rest still pushes down.
        let plan = optimized("SELECT a FROM t WHERE 1 = 1 AND a > b");
        let rendered = plan.render();
        assert!(!rendered.contains("Filter"), "{rendered}");
        assert!(rendered.contains("+residual"), "{rendered}");
    }

    #[test]
    fn contradictory_filters_become_limit_zero() {
        let plan = optimized("SELECT a FROM t WHERE 1 = 2");
        let rendered = plan.render();
        assert!(!rendered.contains("Filter"), "{rendered}");
        assert!(rendered.contains("Limit [0]"), "{rendered}");
    }

    #[test]
    fn sort_limit_fuses_to_topk() {
        // The hidden-ORDER-BY-column shape: `time` isn't projected, so a
        // pure-column projection sits between Limit and Sort — TopK must
        // fuse through it. The Limit node stays as the authoritative
        // truncation.
        let plan = optimized("SELECT fid FROM t ORDER BY time LIMIT 5");
        let rendered = plan.render();
        assert!(rendered.contains("topk [k=5, 1 keys]"), "{rendered}");
        assert!(rendered.contains("Limit [5]"), "{rendered}");
        assert!(!rendered.contains("Sort"), "{rendered}");
    }

    #[test]
    fn sort_without_limit_stays_a_full_sort() {
        let plan = optimized("SELECT fid FROM t ORDER BY time");
        let rendered = plan.render();
        assert!(rendered.contains("Sort"), "{rendered}");
        assert!(!rendered.contains("topk"), "{rendered}");
    }

    #[test]
    fn equi_join_plans_hash_join() {
        let plan = optimized("SELECT a.x, b.y FROM ta a JOIN tb b ON a.k = b.k");
        let rendered = plan.render();
        assert!(rendered.contains("hash_join [1 keys]"), "{rendered}");
        assert!(!rendered.contains("Join ["), "{rendered}");

        // Mixed condition: the equi conjunct becomes the key, the
        // inequality the residual.
        let plan = optimized("SELECT a.x, b.y FROM ta a JOIN tb b ON a.k = b.k AND a.x < b.y");
        let rendered = plan.render();
        assert!(
            rendered.contains("hash_join [1 keys] +residual"),
            "{rendered}"
        );
    }

    #[test]
    fn non_equi_join_keeps_nested_loop() {
        let plan = optimized("SELECT a.x, b.y FROM ta a JOIN tb b ON a.x < b.y");
        let rendered = plan.render();
        assert!(rendered.contains("Join ["), "{rendered}");
        assert!(!rendered.contains("hash_join"), "{rendered}");
    }

    #[test]
    fn filter_above_join_fuses_with_projection() {
        let plan = optimized("SELECT a.x, b.y FROM ta a JOIN tb b ON a.k = b.k WHERE a.x > b.y");
        let rendered = plan.render();
        assert!(rendered.contains("FilterProject"), "{rendered}");
        assert!(rendered.contains("hash_join"), "{rendered}");
    }

    #[test]
    fn filters_above_aggregates_do_not_sink() {
        // HAVING-style filtering is expressed via subqueries; a filter
        // above an aggregate must stay put.
        let plan = optimized(
            "SELECT n FROM (SELECT name, count(*) AS n FROM t GROUP BY name) s WHERE n > 5",
        );
        let rendered = plan.render();
        assert!(rendered.contains("Filter"), "{rendered}");
        assert!(rendered.contains("Aggregate"), "{rendered}");
    }
}
