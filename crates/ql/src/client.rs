//! The JustQL client: one call per statement, the way the paper's SDKs
//! (`client.executeQuery(sql)`) expose the engine.

use crate::ast::{ColumnDef, Select, ShowTarget, Statement};
use crate::csvload::load_csv;
use crate::error::QlError;
use crate::exec::{Executor, OpStat};
use crate::functions::eval_const;
use crate::json::Json;
use crate::optimizer::optimize;
use crate::parser::parse;
use crate::plan::LogicalPlan;
use crate::Result;
use just_compress::Codec;
use just_core::{Dataset, ResultSet, Session};
use just_curves::TimePeriod;
use just_obs::Trace;
use just_storage::{Field, FieldType, IndexKind, Row, Schema, Value};

/// The outcome of executing one statement.
#[derive(Debug)]
pub enum QueryResult {
    /// Rows (queries, SHOW, DESC).
    Data(Dataset),
    /// A status message (DDL/DML).
    Message(String),
}

impl QueryResult {
    /// The dataset, when this is a data result.
    pub fn dataset(&self) -> Option<&Dataset> {
        match self {
            QueryResult::Data(d) => Some(d),
            QueryResult::Message(_) => None,
        }
    }

    /// Consumes into a dataset.
    pub fn into_dataset(self) -> Option<Dataset> {
        match self {
            QueryResult::Data(d) => Some(d),
            QueryResult::Message(_) => None,
        }
    }

    /// The message, when this is a status result.
    pub fn message(&self) -> Option<&str> {
        match self {
            QueryResult::Message(m) => Some(m),
            QueryResult::Data(_) => None,
        }
    }
}

/// A JustQL session client.
pub struct Client {
    session: Session,
    request_id: Option<u64>,
}

impl Client {
    /// Wraps a session.
    pub fn new(session: Session) -> Self {
        Client {
            session,
            request_id: None,
        }
    }

    /// The underlying session (for API-level operations).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Tags subsequent statements with a server request id: it shows up
    /// in `SHOW QUERIES` and the slow-query log. The server sets this
    /// per request; embedded clients leave it unset.
    pub fn set_request_id(&mut self, id: Option<u64>) {
        self.request_id = id;
    }

    /// Parses, optimizes and executes one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse(sql)?;
        self.run(stmt, sql)
    }

    /// Executes a query and wraps it in the Figure 2 cursor (spilling
    /// large results to chunked files).
    pub fn execute_query(&mut self, sql: &str) -> Result<ResultSet> {
        match self.execute(sql)? {
            QueryResult::Data(d) => Ok(self.session.engine().result_set(d)?),
            QueryResult::Message(m) => Ok(self.session.engine().result_set(Dataset::new(
                vec!["message".into()],
                vec![Row::new(vec![Value::Str(m)])],
            ))?),
        }
    }

    /// Returns `(analyzed plan, optimized plan)` renderings — the
    /// Figure 8 demonstration.
    pub fn explain(&self, sql: &str) -> Result<(String, String)> {
        match parse(sql)? {
            Statement::Query(q) => {
                let analyzed = LogicalPlan::from_select(&q)?;
                let optimized = optimize(analyzed.clone())?;
                Ok((analyzed.render(), optimized.render()))
            }
            _ => Err(QlError::Analyze("EXPLAIN supports SELECT only".into())),
        }
    }

    /// Executes `sql` (a SELECT) and returns the result rows together
    /// with the recorded per-operator trace — the programmatic form of
    /// `EXPLAIN ANALYZE`. The trace root covers parse → analyze →
    /// optimize → execute; each executor operator gets a child span with
    /// wall time, output rows and (on scan/knn leaves) kvstore IO deltas.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<(Dataset, Trace)> {
        let mut trace = Trace::new("query");
        let root = trace.root();
        let span = trace.start("parse".to_string(), root);
        let stmt = parse(sql)?;
        trace.end(span);
        let query = match stmt {
            Statement::Query(q) | Statement::Explain { query: q, .. } => q,
            _ => {
                return Err(QlError::Analyze(
                    "EXPLAIN ANALYZE supports SELECT only".into(),
                ))
            }
        };
        let data = self.run_analyzed(&query, &mut trace)?;
        Ok((data, trace))
    }

    /// Analyzes, optimizes and trace-executes `query`, growing `trace`
    /// under its root span.
    fn run_analyzed(&self, query: &Select, trace: &mut Trace) -> Result<Dataset> {
        let root = trace.root();
        let span = trace.start("analyze".to_string(), root);
        let analyzed = LogicalPlan::from_select(query)?;
        trace.end(span);
        let span = trace.start("optimize".to_string(), root);
        let plan = optimize(analyzed)?;
        trace.end(span);

        let span = trace.start("execute".to_string(), root);
        let before = self.session.engine().io_snapshot();
        let result = Executor::new(&self.session).run_traced(&plan, trace, span);
        if let Ok(data) = &result {
            let d = self.session.engine().io_snapshot().since(&before);
            trace.set_rows(span, data.len() as u64);
            trace.add_attr(span, "blocks_read", d.blocks_read);
            trace.add_attr(span, "cache_hits", d.cache_hits);
            trace.add_attr(span, "bytes_read", d.bytes_read);
            let lookups = d.blocks_read + d.cache_hits;
            if let Some(pct) = (d.cache_hits * 100).checked_div(lookups) {
                trace.add_attr(span, "cache_hit_pct", pct);
            }
            if d.bloom_skips > 0 {
                trace.add_attr(span, "bloom_skips", d.bloom_skips);
            }
            trace.set_rows(root, data.len() as u64);
        }
        trace.end(span);
        trace.end(root);
        result
    }

    fn run(&mut self, stmt: Statement, sql: &str) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                userdata,
            } => {
                let schema = build_schema(&columns)?;
                let (index, period) = index_hints(&userdata)?;
                self.session.create_table(&name, schema, index, period)?;
                Ok(QueryResult::Message(format!("table '{name}' created")))
            }
            Statement::CreatePluginTable {
                name,
                plugin,
                userdata,
            } => {
                let (index, period) = index_hints(&userdata)?;
                self.session
                    .create_plugin_table(&name, &plugin, index, period)?;
                Ok(QueryResult::Message(format!(
                    "plugin table '{name}' ({plugin}) created"
                )))
            }
            Statement::CreateView { name, query } => {
                let plan = optimize(LogicalPlan::from_select(&query)?)?;
                let data = Executor::new(&self.session).run(&plan)?;
                let n = data.len();
                self.session.create_view(&name, data)?;
                Ok(QueryResult::Message(format!(
                    "view '{name}' created ({n} rows cached)"
                )))
            }
            Statement::Drop { view, name } => {
                if view {
                    self.session.drop_view(&name)?;
                } else {
                    self.session.drop_table(&name)?;
                }
                Ok(QueryResult::Message(format!("'{name}' dropped")))
            }
            Statement::Show { target } => Ok(QueryResult::Data(self.show(target))),
            Statement::KillQuery { id } => {
                if self.session.engine().kill_query(id) {
                    Ok(QueryResult::Message(format!(
                        "kill requested for query {id}"
                    )))
                } else {
                    Err(QlError::Eval(format!("no live query with id {id}")))
                }
            }
            Statement::SplitRegion { table, region } => {
                match self.session.split_region(&table, region)? {
                    Some(key) => {
                        let hex: String = key.iter().map(|b| format!("{b:02x}")).collect();
                        Ok(QueryResult::Message(format!(
                            "region {region} of '{table}' split at key 0x{hex}"
                        )))
                    }
                    None => Ok(QueryResult::Message(format!(
                        "region {region} of '{table}' too small to split"
                    ))),
                }
            }
            Statement::MergeRegions {
                table,
                first,
                second,
            } => {
                self.session.merge_regions(&table, first)?;
                Ok(QueryResult::Message(format!(
                    "regions {first} and {second} of '{table}' merged"
                )))
            }
            Statement::Desc { name } => {
                let def = self.session.describe(&name)?;
                let rows = def
                    .schema
                    .fields()
                    .iter()
                    .map(|f| {
                        let mut opts = Vec::new();
                        if f.primary_key {
                            opts.push("primary key".to_string());
                        }
                        if f.compress != Codec::None {
                            opts.push(format!("compress={}", f.compress));
                        }
                        Row::new(vec![
                            Value::Str(f.name.clone()),
                            Value::Str(f.ty.name().to_string()),
                            Value::Str(opts.join(", ")),
                        ])
                    })
                    .collect();
                Ok(QueryResult::Data(Dataset::new(
                    vec!["field".into(), "type".into(), "options".into()],
                    rows,
                )))
            }
            Statement::Insert { table, rows } => {
                let def = self.session.describe(&table)?;
                let mut out = Vec::with_capacity(rows.len());
                for exprs in rows {
                    if exprs.len() != def.schema.len() {
                        return Err(QlError::Analyze(format!(
                            "INSERT has {} values, table '{}' has {} fields",
                            exprs.len(),
                            table,
                            def.schema.len()
                        )));
                    }
                    let mut values = Vec::with_capacity(exprs.len());
                    for (e, f) in exprs.iter().zip(def.schema.fields()) {
                        let v = eval_const(e)?;
                        values.push(coerce_insert(v, f.ty)?);
                    }
                    out.push(Row::new(values));
                }
                let n = self.session.insert(&table, &out)?;
                Ok(QueryResult::Message(format!("{n} rows inserted")))
            }
            Statement::Load {
                source,
                table,
                config,
                filter,
            } => {
                let path = source.strip_prefix("csv:").ok_or_else(|| {
                    QlError::Analyze(format!("unsupported LOAD source '{source}' (csv: only)"))
                })?;
                let n = load_csv(&self.session, path, &table, &config, filter.as_deref())?;
                Ok(QueryResult::Message(format!("{n} rows loaded")))
            }
            Statement::StoreView { view, table } => {
                let n = self.session.store_view(&view, &table)?;
                Ok(QueryResult::Message(format!(
                    "view '{view}' stored to table '{table}' ({n} rows)"
                )))
            }
            Statement::Query(q) => {
                let plan = optimize(LogicalPlan::from_select(&q)?)?;
                self.run_tracked(&plan, sql).map(QueryResult::Data)
            }
            Statement::Explain { analyze, query } => {
                let rendered = if analyze {
                    let mut trace = Trace::new("query");
                    self.run_analyzed(&query, &mut trace)?;
                    trace.render()
                } else {
                    // Plain EXPLAIN includes each operator's compiled
                    // bytecode listing (or its fallback note).
                    let plan = optimize(LogicalPlan::from_select(&query)?)?;
                    crate::compile::explain_render(&plan, &self.session)
                };
                Ok(QueryResult::Data(Dataset::new(
                    vec!["plan".into()],
                    rendered
                        .lines()
                        .map(|l| Row::new(vec![Value::Str(l.to_string())]))
                        .collect(),
                )))
            }
        }
    }
}

impl Client {
    /// Executes an optimized plan under the always-on observability
    /// pipeline: registers in the live query registry (so `SHOW QUERIES`
    /// lists it and `KILL QUERY` can stop it), collects flat per-operator
    /// stats, and — only when the query's wall time reaches the engine's
    /// `slow_query_ms` — emits a `query.slow` event carrying that
    /// breakdown. No [`Trace`] arena is ever allocated on this path.
    fn run_tracked(&self, plan: &LogicalPlan, sql: &str) -> Result<Dataset> {
        let engine = self.session.engine().clone();
        let guard = engine.config().query_tracking.then(|| {
            engine.queries().register(
                self.session.user(),
                sql,
                self.request_id,
                engine.io_snapshot(),
            )
        });
        let kill = guard.as_ref().map(|g| g.info().kill_token().clone());
        let started = std::time::Instant::now();
        let mut stats: Vec<OpStat> = Vec::new();
        let result = Executor::new(&self.session)
            .with_kill(kill)
            .run_collect(plan, &mut stats);
        let threshold = engine.config().slow_query_ms;
        let elapsed_ms = started.elapsed().as_millis() as u64;
        if threshold > 0 && elapsed_ms >= threshold {
            let ops: Vec<String> = stats
                .iter()
                .map(|s| format!("{}:{}rows:{}us", s.label, s.rows, s.elapsed_us))
                .collect();
            let (id, user) = match &guard {
                Some(g) => (g.info().id(), g.info().user().to_string()),
                None => (0, self.session.user().to_string()),
            };
            just_obs::events::global().emit(
                "query.slow",
                format!(
                    "query_id={id} user={user} elapsed_ms={elapsed_ms} ok={} ops=[{}] sql={}",
                    result.is_ok(),
                    ops.join(","),
                    sql.split_whitespace().collect::<Vec<_>>().join(" "),
                ),
            );
        }
        result
    }

    /// Builds the dataset for one `SHOW <target>`.
    fn show(&self, target: ShowTarget) -> Dataset {
        match target {
            ShowTarget::Tables | ShowTarget::Views => {
                let names = if target == ShowTarget::Views {
                    self.session.show_views()
                } else {
                    self.session.show_tables()
                };
                Dataset::new(
                    vec!["name".into()],
                    names
                        .into_iter()
                        .map(|n| Row::new(vec![Value::Str(n)]))
                        .collect(),
                )
            }
            ShowTarget::Metrics => show_metrics(),
            ShowTarget::Queries => show_queries(&self.session),
            ShowTarget::Regions => show_regions(&self.session),
            ShowTarget::Events { limit } => show_events(limit.unwrap_or(100)),
        }
    }
}

/// `SHOW METRICS`: one row per counter/gauge, five rows per histogram
/// (`_count`, `_sum`, `_p50`, `_p90`, `_p99`), sorted by metric name.
fn show_metrics() -> Dataset {
    let columns = vec!["metric".into(), "kind".into(), "value".into()];
    let mut rows = Vec::new();
    for (name, value) in just_obs::global().snapshot() {
        match value {
            just_obs::MetricValue::Counter(v) => rows.push(Row::new(vec![
                Value::Str(name),
                Value::Str("counter".into()),
                Value::Int(v as i64),
            ])),
            just_obs::MetricValue::Gauge(v) => rows.push(Row::new(vec![
                Value::Str(name),
                Value::Str("gauge".into()),
                Value::Int(v as i64),
            ])),
            just_obs::MetricValue::Histogram(s) => {
                let mut push = |suffix: &str, v: Value| {
                    rows.push(Row::new(vec![
                        Value::Str(format!("{name}_{suffix}")),
                        Value::Str("histogram".into()),
                        v,
                    ]));
                };
                push("count", Value::Int(s.count as i64));
                push("sum", Value::Int(s.sum as i64));
                push("p50", Value::Int(s.p50 as i64));
                push("p90", Value::Int(s.p90 as i64));
                push("p99", Value::Int(s.p99 as i64));
            }
        }
    }
    Dataset::new(columns, rows)
}

/// `SHOW QUERIES`: the live query registry with each query's IO delta
/// since it started (exact when it runs alone; attribution-approximate
/// under concurrency, like `EXPLAIN ANALYZE`).
fn show_queries(session: &Session) -> Dataset {
    let engine = session.engine();
    let now = engine.io_snapshot();
    let columns = vec![
        "id".into(),
        "user".into(),
        "request_id".into(),
        "elapsed_ms".into(),
        "blocks_read".into(),
        "cache_hits".into(),
        "bytes_read".into(),
        "batches".into(),
        "query".into(),
    ];
    let rows = engine
        .queries()
        .list()
        .into_iter()
        .map(|q| {
            let io = now.since(q.io_start());
            Row::new(vec![
                Value::Int(q.id() as i64),
                Value::Str(q.user().to_string()),
                q.request_id()
                    .map(|r| Value::Int(r as i64))
                    .unwrap_or(Value::Null),
                Value::Int(q.elapsed().as_millis() as i64),
                Value::Int(io.blocks_read as i64),
                Value::Int(io.cache_hits as i64),
                Value::Int(io.bytes_read as i64),
                Value::Int(io.batches_emitted as i64),
                Value::Str(q.sql().to_string()),
            ])
        })
        .collect();
    Dataset::new(columns, rows)
}

/// `SHOW REGIONS`: per-region size and traffic stats for this session's
/// tables only (names come back logical, the namespace prefix stripped).
fn show_regions(session: &Session) -> Dataset {
    let columns = vec![
        "table".into(),
        "store".into(),
        "region".into(),
        "start_key".into(),
        "entries".into(),
        "disk_bytes".into(),
        "memtable_bytes".into(),
        "sstables".into(),
        "generations".into(),
        "next_seq".into(),
        "snapshots".into(),
        "held_gens".into(),
        "sealed".into(),
        "reads".into(),
        "writes".into(),
        "bytes_read".into(),
        "bytes_written".into(),
        "scans".into(),
        "scan_blocks".into(),
    ];
    let rows = session
        .region_stats()
        .into_iter()
        .map(|(table, store, s)| {
            let start_key: String = s.start_key.iter().map(|b| format!("{b:02x}")).collect();
            Row::new(vec![
                Value::Str(table),
                Value::Str(store),
                Value::Int(s.index as i64),
                Value::Str(start_key),
                Value::Int(s.entries as i64),
                Value::Int(s.disk_bytes as i64),
                Value::Int(s.memtable_bytes as i64),
                Value::Int(s.sstables as i64),
                Value::Int(s.generations as i64),
                Value::Int(s.next_seq as i64),
                Value::Int(s.open_snapshots as i64),
                Value::Int(s.held_generations as i64),
                Value::Bool(s.sealed),
                Value::Int(s.traffic.reads as i64),
                Value::Int(s.traffic.writes as i64),
                Value::Int(s.traffic.bytes_read as i64),
                Value::Int(s.traffic.bytes_written as i64),
                Value::Int(s.traffic.scans as i64),
                Value::Int(s.traffic.scan_blocks as i64),
            ])
        })
        .collect();
    Dataset::new(columns, rows)
}

/// `SHOW EVENTS [LIMIT n]`: the most recent event-log entries, newest
/// first.
fn show_events(limit: usize) -> Dataset {
    let columns = vec!["seq".into(), "ts_ms".into(), "kind".into(), "detail".into()];
    let rows = just_obs::events::global()
        .recent(limit)
        .into_iter()
        .map(|e| {
            Row::new(vec![
                Value::Int(e.seq as i64),
                Value::Int(e.ts_ms as i64),
                Value::Str(e.kind),
                Value::Str(e.detail),
            ])
        })
        .collect();
    Dataset::new(columns, rows)
}

/// Maps AST column definitions onto a storage schema.
fn build_schema(columns: &[ColumnDef]) -> Result<Schema> {
    let mut fields = Vec::with_capacity(columns.len());
    for c in columns {
        let ty = FieldType::parse(&c.type_name)
            .ok_or_else(|| QlError::Analyze(format!("unknown type '{}'", c.type_name)))?;
        let mut field = Field::new(c.name.clone(), ty);
        for opt in &c.options {
            if opt.eq_ignore_ascii_case("primary key") {
                field.primary_key = true;
            } else if let Some(v) = opt.strip_prefix("compress=") {
                field.compress = Codec::parse(v)
                    .ok_or_else(|| QlError::Analyze(format!("unknown codec '{v}'")))?;
            } else if let Some(v) = opt.strip_prefix("srid=") {
                field.srid = v
                    .parse()
                    .map_err(|_| QlError::Analyze(format!("bad srid '{v}'")))?;
            } else {
                return Err(QlError::Analyze(format!("unknown column option '{opt}'")));
            }
        }
        fields.push(field);
    }
    Schema::new(fields).map_err(|e| QlError::Analyze(e.to_string()))
}

/// Reads the `USERDATA` hints: `geomesa.indices.enabled` picks the index
/// (`z2`, `z3`, `xz2`, `xz3`, `z2t`, `xz2t`), `period` the time period.
fn index_hints(userdata: &Option<Json>) -> Result<(Option<IndexKind>, Option<TimePeriod>)> {
    let Some(j) = userdata else {
        return Ok((None, None));
    };
    let index = match j.get("geomesa.indices.enabled").or_else(|| j.get("index")) {
        Some(name) => Some(
            IndexKind::parse(name)
                .ok_or_else(|| QlError::Analyze(format!("unknown index '{name}'")))?,
        ),
        None => None,
    };
    let period = match j.get("period") {
        Some(name) => Some(
            TimePeriod::parse(name)
                .ok_or_else(|| QlError::Analyze(format!("unknown period '{name}'")))?,
        ),
        None => None,
    };
    Ok((index, period))
}

/// INSERT-time coercion (Int literals into Date/Float fields, WKT strings
/// into geometry fields).
fn coerce_insert(v: Value, ty: FieldType) -> Result<Value> {
    Ok(match (ty, v) {
        (FieldType::Date, Value::Int(i)) => Value::Date(i),
        (FieldType::Float, Value::Int(i)) => Value::Float(i as f64),
        (
            FieldType::Point | FieldType::LineString | FieldType::Polygon | FieldType::Geometry,
            Value::Str(s),
        ) => Value::Geom(just_geo::parse_wkt(&s).map_err(|e| QlError::Eval(e.to_string()))?),
        (_, other) => other,
    })
}
