//! Seeded property test for the batch join/order operators: hash join,
//! key-normalized sort, and TOP-K must produce byte-identical results
//! to the interpreted nested-loop / comparator paths on randomly
//! generated datasets with NULLs, duplicate keys, and mixed-type key
//! expressions. Row *order* is compared too — the hash join contracts
//! to emit pairs in nested-loop order (left-major, right-minor) and
//! both sort paths are stable, so no normalizing ORDER BY is needed.
//!
//! Everything runs through the public SQL surface with
//! [`just_ql::set_compiled`] toggling the executor path, covering the
//! optimizer rewrites (`Join -> HashJoin`, `Sort+Limit -> TopK`), the
//! hashability gate's fallback, and the non-equi nested-loop fallback.

use just_core::{Engine, EngineConfig, SessionManager};
use just_obs::Rng;
use just_ql::{set_compiled, Client};
use std::sync::Arc;

const CASES: usize = 72;

fn client(name: &str) -> (Client, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "just-ql-joinsort-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(Engine::open(&dir, EngineConfig::default()).unwrap());
    let sessions = SessionManager::new(engine);
    (Client::new(sessions.session("joinsort")), dir)
}

/// Runs `sql` on both executor paths and asserts parity — identical
/// header and rows (in order) on success, errors on both sides
/// otherwise.
fn check(c: &mut Client, sql: &str) {
    set_compiled(false);
    let interpreted = c.execute(sql).map(|r| r.into_dataset());
    set_compiled(true);
    let compiled = c.execute(sql).map(|r| r.into_dataset());
    match (interpreted, compiled) {
        (Ok(a), Ok(b)) => {
            let a = a.expect("query returns data");
            let b = b.expect("query returns data");
            assert_eq!(a.columns, b.columns, "column mismatch for {sql}");
            assert_eq!(a.rows, b.rows, "row mismatch for {sql}");
        }
        (Err(_), Err(_)) => {}
        (Ok(_), Err(e)) => panic!("interpreted ok, compiled failed for {sql}: {e:?}"),
        (Err(e), Ok(_)) => panic!("compiled ok, interpreted failed for {sql}: {e:?}"),
    }
}

/// A random `k`-ish integer literal drawn from a small range so join
/// keys collide often, or NULL.
fn int_or_null(rng: &mut Rng) -> String {
    if rng.gen_bool(0.18) {
        "null".to_string()
    } else {
        format!("{}", rng.gen_range(0..7i64))
    }
}

fn str_or_null(rng: &mut Rng) -> String {
    // Includes numeric-looking strings: joining these against an int
    // column must take the nested-loop fallback (interpreted `=`
    // coerces '3' = 3 to true; encoded bytes would not).
    const VOCAB: [&str; 6] = ["'3'", "'12'", "'abc'", "'ABC'", "''", "'v'"];
    if rng.gen_bool(0.2) {
        "null".to_string()
    } else {
        VOCAB[rng.gen_range(0..VOCAB.len() as u32) as usize].to_string()
    }
}

fn float_or_null(rng: &mut Rng) -> String {
    if rng.gen_bool(0.2) {
        "null".to_string()
    } else {
        format!("{}.25", rng.gen_range(0..6i64) - 3)
    }
}

/// Random ORDER BY key list: 1-3 keys over plain columns and
/// expressions (including a mixed-type `coalesce(g, k)` that exercises
/// the cross-type rank ordering), each with a random direction.
fn gen_sort_keys(rng: &mut Rng) -> String {
    const KEYS: [&str; 6] = ["k", "g", "x", "k % 3", "x * 2", "coalesce(g, k)"];
    let n = rng.gen_range(1..4u32);
    let mut parts = Vec::new();
    for _ in 0..n {
        let key = KEYS[rng.gen_range(0..KEYS.len() as u32) as usize];
        let dir = if rng.gen_bool(0.5) { "ASC" } else { "DESC" };
        parts.push(format!("{key} {dir}"));
    }
    parts.join(", ")
}

#[test]
fn join_sort_topk_agree_with_interpreted_paths() {
    let (mut c, dir) = client("prop");
    c.execute("CREATE TABLE lhs (a integer:primary key, k integer, g string, x float)")
        .unwrap();
    c.execute("CREATE TABLE rhs (b integer:primary key, k integer, tag string, y float)")
        .unwrap();

    let mut rng = Rng::seed_from_u64(0x4A55_5354_1009);
    for a in 0..40i64 {
        let (k, g, x) = (
            int_or_null(&mut rng),
            str_or_null(&mut rng),
            float_or_null(&mut rng),
        );
        c.execute(&format!("INSERT INTO lhs VALUES ({a}, {k}, {g}, {x})"))
            .unwrap();
    }
    for b in 0..30i64 {
        let (k, t, y) = (
            int_or_null(&mut rng),
            str_or_null(&mut rng),
            float_or_null(&mut rng),
        );
        c.execute(&format!("INSERT INTO rhs VALUES ({b}, {k}, {t}, {y})"))
            .unwrap();
    }

    let obs = just_obs::global();
    let built_before = obs.counter("just_exec_join_build_rows").get();
    let topk_before = obs.counter("just_exec_topk_queries").get();
    let fallback_before = obs.counter("just_exec_join_fallbacks").get();

    let mut rng = Rng::seed_from_u64(0x4A55_5354_2009);
    for case in 0..CASES {
        match case % 8 {
            // Plain equi join on a dup-heavy NULL-bearing key.
            0 => check(
                &mut c,
                "SELECT l.a, r.b, l.g, r.y FROM lhs l JOIN rhs r ON l.k = r.k",
            ),
            // Equi keys plus a non-equi residual.
            1 => check(
                &mut c,
                "SELECT l.a, r.b FROM lhs l JOIN rhs r ON l.k = r.k AND l.x < r.y",
            ),
            // Multi-key equi join (numeric + string key columns).
            2 => check(
                &mut c,
                "SELECT l.a, r.b FROM lhs l JOIN rhs r ON l.k = r.k AND l.g = r.tag",
            ),
            // Non-equi condition: stays a nested-loop join on both paths.
            3 => {
                let op = ["<", "<=", ">", "!="][rng.gen_range(0..4u32) as usize];
                check(
                    &mut c,
                    &format!("SELECT l.a, r.b FROM lhs l JOIN rhs r ON l.k {op} r.k"),
                )
            }
            // String-vs-int key classes: the hashability gate must fall
            // back so interpreted coercion ('3' = 3) is preserved.
            4 => check(&mut c, "SELECT l.a, r.b FROM lhs l JOIN rhs r ON l.g = r.k"),
            // Key-normalized full sort, random keys and directions.
            5 => check(
                &mut c,
                &format!(
                    "SELECT a, k, g, x FROM lhs ORDER BY {}",
                    gen_sort_keys(&mut rng)
                ),
            ),
            // TOP-K: Sort+Limit fused to a bounded heap. k spans empty,
            // tiny, and larger-than-input.
            6 => {
                let k = [0, 1, 3, 10, 100][rng.gen_range(0..5u32) as usize];
                check(
                    &mut c,
                    &format!(
                        "SELECT a, k, x FROM lhs ORDER BY {} LIMIT {k}",
                        gen_sort_keys(&mut rng)
                    ),
                )
            }
            // Join feeding TOP-K.
            _ => {
                let k = rng.gen_range(1..12u32);
                check(
                    &mut c,
                    &format!(
                        "SELECT l.a, r.b, r.y FROM lhs l JOIN rhs r ON l.k = r.k \
                         ORDER BY r.y DESC, l.a LIMIT {k}"
                    ),
                )
            }
        }
    }

    // The exercise must actually have engaged the fast paths — and the
    // fallbacks: vacuous parity would hide a regression in either.
    let built = obs.counter("just_exec_join_build_rows").get() - built_before;
    let topk = obs.counter("just_exec_topk_queries").get() - topk_before;
    let fell_back = obs.counter("just_exec_join_fallbacks").get() - fallback_before;
    assert!(built > 0, "no hash join ever built a table");
    assert!(topk > 0, "no TOP-K query took the heap path");
    assert!(fell_back > 0, "non-equi / unhashable cases never fell back");

    set_compiled(true);
    std::fs::remove_dir_all(&dir).ok();
}
