//! End-to-end JustQL tests: every statement class from the paper, run
//! against a real engine instance.

use just_core::{Engine, EngineConfig, SessionManager};
use just_ql::Client;
use just_storage::Value;
use std::sync::Arc;

const HOUR_MS: i64 = 3_600_000;

fn client(name: &str) -> (Client, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "just-ql-e2e-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(Engine::open(&dir, EngineConfig::default()).unwrap());
    let sessions = SessionManager::new(engine);
    (Client::new(sessions.session("e2e")), dir)
}

fn setup_orders(c: &mut Client) {
    c.execute(
        "CREATE TABLE orders (fid integer:primary key, name string, \
         time date, geom point:srid=4326)",
    )
    .unwrap();
    // A 10x10 grid of orders over Beijing across 48 half-hours.
    let mut values = Vec::new();
    for i in 0..100i64 {
        let lng = 116.0 + (i % 10) as f64 * 0.01;
        let lat = 39.0 + (i / 10) as f64 * 0.01;
        let t = i * HOUR_MS / 2;
        values.push(format!(
            "({i}, 'order-{i}', {t}, st_makePoint({lng}, {lat}))"
        ));
    }
    c.execute(&format!("INSERT INTO orders VALUES {}", values.join(", ")))
        .unwrap();
}

#[test]
fn ddl_lifecycle() {
    let (mut c, dir) = client("ddl");
    c.execute("CREATE TABLE t1 (fid integer:primary key, geom point)")
        .unwrap();
    c.execute("CREATE TABLE tr AS trajectory").unwrap();
    let tables = c.execute("SHOW TABLES").unwrap();
    let names: Vec<String> = tables
        .dataset()
        .unwrap()
        .rows
        .iter()
        .map(|r| r.values[0].as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["t1", "tr"]);
    let desc = c.execute("DESC TABLE tr").unwrap();
    let d = desc.dataset().unwrap();
    assert_eq!(d.columns, vec!["field", "type", "options"]);
    assert!(d
        .rows
        .iter()
        .any(|r| r.values[0].as_str() == Some("gps_list")
            && r.values[2].as_str().unwrap().contains("compress=gzip")));
    c.execute("DROP TABLE t1").unwrap();
    assert!(c.execute("DESC TABLE t1").is_err());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn spatial_range_query_via_sql() {
    let (mut c, dir) = client("spatial");
    setup_orders(&mut c);
    let r = c
        .execute(
            "SELECT fid, name FROM orders WHERE geom WITHIN \
             st_makeMBR(115.995, 38.995, 116.025, 39.025)",
        )
        .unwrap();
    let d = r.into_dataset().unwrap();
    // 3x3 grid cells qualify.
    assert_eq!(d.len(), 9);
    assert_eq!(d.columns, vec!["fid", "name"]);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn st_range_query_via_sql() {
    let (mut c, dir) = client("strange");
    setup_orders(&mut c);
    let all = c
        .execute(
            "SELECT fid FROM orders WHERE geom WITHIN \
             st_makeMBR(115.9, 38.9, 116.2, 39.2)",
        )
        .unwrap()
        .into_dataset()
        .unwrap();
    let windowed = c
        .execute(&format!(
            "SELECT fid FROM orders WHERE geom WITHIN \
             st_makeMBR(115.9, 38.9, 116.2, 39.2) AND time BETWEEN 0 AND {}",
            10 * HOUR_MS
        ))
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(all.len(), 100);
    assert!(windowed.len() < all.len());
    assert_eq!(windowed.len(), 21, "t in [0, 10h] at 30min spacing");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn knn_query_via_sql() {
    let (mut c, dir) = client("knn");
    setup_orders(&mut c);
    let r = c
        .execute(
            "SELECT fid, distance FROM orders \
             WHERE geom IN st_KNN(st_makePoint(116.0, 39.0), 5)",
        )
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.len(), 5);
    // Nearest is order 0 at exactly the query point.
    assert_eq!(r.rows[0].values[0], Value::Int(0));
    assert_eq!(r.rows[0].values[1], Value::Float(0.0));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn views_and_aggregates() {
    let (mut c, dir) = client("views");
    setup_orders(&mut c);
    c.execute(
        "CREATE VIEW beijing AS SELECT * FROM orders WHERE geom WITHIN \
         st_makeMBR(115.9, 38.9, 116.05, 39.2)",
    )
    .unwrap();
    let shown = c.execute("SHOW VIEWS").unwrap().into_dataset().unwrap();
    assert_eq!(shown.len(), 1);
    // Aggregate over the view ("one query, multiple usages").
    let agg = c
        .execute("SELECT count(*) AS n, min(fid) AS lo, max(fid) AS hi FROM beijing")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(agg.rows[0].values[0], Value::Int(60));
    assert_eq!(agg.rows[0].values[1], Value::Int(0));
    // Store the view into a new table and query it back.
    c.execute("STORE VIEW beijing TO TABLE beijing_orders")
        .unwrap();
    let back = c
        .execute("SELECT count(*) AS n FROM beijing_orders")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(back.rows[0].values[0], Value::Int(60));
    c.execute("DROP VIEW beijing").unwrap();
    assert!(c.execute("SELECT * FROM beijing").is_err());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn group_by_order_limit() {
    let (mut c, dir) = client("groupby");
    setup_orders(&mut c);
    // Group by longitude column (10 groups of 10).
    let r = c
        .execute(
            "SELECT st_x(geom) AS lng, count(*) AS n FROM orders \
             GROUP BY st_x(geom) ORDER BY n DESC, lng LIMIT 3",
        )
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.len(), 3);
    for row in &r.rows {
        assert_eq!(row.values[1], Value::Int(10));
    }
    // Ties broken ascending by lng.
    let lngs: Vec<f64> = r
        .rows
        .iter()
        .map(|r| r.values[0].as_float().unwrap())
        .collect();
    assert!(lngs.windows(2).all(|w| w[0] <= w[1]));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn join_via_sql() {
    let (mut c, dir) = client("join");
    c.execute("CREATE TABLE a (k integer:primary key, x string)")
        .unwrap();
    c.execute("CREATE TABLE b (k integer:primary key, y string)")
        .unwrap();
    c.execute("INSERT INTO a VALUES (1, 'a1'), (2, 'a2'), (3, 'a3')")
        .unwrap();
    c.execute("INSERT INTO b VALUES (2, 'b2'), (3, 'b3'), (4, 'b4')")
        .unwrap();
    let r = c
        .execute("SELECT l.x, r.y FROM a l JOIN b r ON l.k = r.k ORDER BY x")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.rows[0].values[0].as_str(), Some("a2"));
    assert_eq!(r.rows[0].values[1].as_str(), Some("b2"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn subquery_with_expression_order_by_hidden_column() {
    let (mut c, dir) = client("subq");
    setup_orders(&mut c);
    // The paper's Section VI statement shape.
    let r = c
        .execute(
            "SELECT name, geom FROM (SELECT * FROM orders) t \
             WHERE fid = 3 * 3 AND geom WITHIN st_makeMBR(115, 38, 117, 41) \
             ORDER BY time",
        )
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.columns, vec!["name", "geom"]);
    assert_eq!(r.rows[0].values[0].as_str(), Some("order-9"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn explain_shows_figure8_optimization() {
    let (mut c, dir) = client("explain");
    setup_orders(&mut c);
    let (analyzed, optimized) = c
        .explain(
            "SELECT name, geom FROM (SELECT * FROM orders) t \
             WHERE fid = 52 * 9 AND geom WITHIN st_makeMBR(1, 2, 3, 4) \
             ORDER BY time",
        )
        .unwrap();
    assert!(analyzed.contains("Filter"), "{analyzed}");
    assert!(analyzed.contains("52"), "{analyzed}");
    assert!(!optimized.contains("Filter"), "{optimized}");
    assert!(!optimized.contains("52"), "{optimized}");
    assert!(optimized.contains("spatial="), "{optimized}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn load_csv_with_config_and_filter() {
    let (mut c, dir) = client("load");
    c.execute("CREATE TABLE pts (fid integer:primary key, time date, geom point)")
        .unwrap();
    let csv = dir.join("input.csv");
    std::fs::write(
        &csv,
        "id,ts,lng,lat,city\n\
         1,1000,116.40,39.90,beijing\n\
         2,2000,121.47,31.23,shanghai\n\
         3,3000,116.41,39.91,beijing\n",
    )
    .unwrap();
    let msg = c
        .execute(&format!(
            "LOAD csv:'{}' TO pts CONFIG {{
                'fid': 'to_int(id)',
                'time': 'long_to_date_ms(ts)',
                'geom': 'lng_lat_to_point(lng, lat)'
            }} FILTER 'city = ''beijing'''",
            csv.display()
        ))
        .unwrap();
    assert_eq!(msg.message(), Some("2 rows loaded"));
    let r = c
        .execute("SELECT fid FROM pts ORDER BY fid")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.rows[1].values[0], Value::Int(3));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn coordinate_transform_one_to_one() {
    let (mut c, dir) = client("transform");
    setup_orders(&mut c);
    let r = c
        .execute("SELECT st_x(st_WGS84ToGCJ02(geom)) - st_x(geom) AS dx FROM orders LIMIT 5")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.len(), 5);
    for row in &r.rows {
        let dx = row.values[0].as_float().unwrap().abs();
        assert!(dx > 1e-5 && dx < 0.02, "offset {dx} out of GCJ range");
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn dbscan_n_to_m() {
    let (mut c, dir) = client("dbscan");
    setup_orders(&mut c);
    // All 100 points form one dense cluster at eps=0.02.
    let r = c
        .execute("SELECT st_DBSCAN(geom, 4, 0.02) FROM orders")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.len(), 100);
    assert_eq!(r.columns, vec!["geom", "cluster"]);
    assert!(r.rows.iter().all(|row| row.values[1] == Value::Int(0)));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn result_set_cursor_spills_large_results() {
    let (mut c, dir) = client("cursor");
    setup_orders(&mut c);
    // Force spilling with a tiny threshold by going through the engine
    // config default (8 MiB won't spill 100 rows) — use many duplicated
    // rows via a cross join to grow the result.
    let mut rs = c
        .execute_query("SELECT l.fid FROM orders l JOIN orders r ON 1 = 1")
        .unwrap();
    assert_eq!(rs.total_rows(), 10_000);
    let mut n = 0;
    while rs.next().unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, 10_000);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn historical_update_via_sql() {
    let (mut c, dir) = client("update");
    c.execute("CREATE TABLE t (fid integer:primary key, time date, geom point)")
        .unwrap();
    c.execute("INSERT INTO t VALUES (1, 1000, st_makePoint(116.4, 39.9))")
        .unwrap();
    // Same primary key, new location: an in-place historical update.
    c.execute("INSERT INTO t VALUES (1, 99000, st_makePoint(121.5, 31.2))")
        .unwrap();
    let bj = c
        .execute("SELECT fid FROM t WHERE geom WITHIN st_makeMBR(116, 39, 117, 40)")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert!(bj.is_empty());
    let sh = c
        .execute("SELECT fid FROM t WHERE geom WITHIN st_makeMBR(121, 31, 122, 32)")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(sh.len(), 1);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn limit_pushdown_stops_block_reads_early() {
    // The streaming read path contract, end to end through SQL: a
    // `LIMIT k` over a large flushed table must satisfy the query from a
    // fraction of the block lookups the full scan needs, because the
    // executor cancels the scan stream after the k-th matching row.
    let dir = std::env::temp_dir().join(format!(
        "just-ql-e2e-limitio-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(Engine::open(&dir, EngineConfig::default()).unwrap());
    let sessions = SessionManager::new(engine.clone());
    let mut c = Client::new(sessions.session("e2e"));

    c.execute("CREATE TABLE pts (fid integer:primary key, name string, geom point)")
        .unwrap();
    for chunk in 0..10i64 {
        let mut values = Vec::new();
        for j in 0..300i64 {
            let i = chunk * 300 + j;
            let lng = 116.0 + (i % 50) as f64 * 0.001;
            let lat = 39.0 + (i / 50) as f64 * 0.001;
            values.push(format!(
                "({i}, 'record-with-some-padding-{i}', st_makePoint({lng}, {lat}))"
            ));
        }
        c.execute(&format!("INSERT INTO pts VALUES {}", values.join(", ")))
            .unwrap();
    }
    engine.flush_all().unwrap();

    let before = engine.io_snapshot();
    let full = c.execute("SELECT fid FROM pts").unwrap();
    assert_eq!(full.dataset().unwrap().len(), 3000);
    let full_io = engine.io_snapshot().since(&before);

    let before = engine.io_snapshot();
    let limited = c.execute("SELECT fid FROM pts LIMIT 10").unwrap();
    assert_eq!(limited.dataset().unwrap().len(), 10);
    let lim_io = engine.io_snapshot().since(&before);

    // Compare *block lookups* (disk reads + cache hits) so the warm
    // cache can't flatter the limited run.
    let full_lookups = full_io.blocks_read + full_io.cache_hits;
    let lim_lookups = lim_io.blocks_read + lim_io.cache_hits;
    assert!(
        lim_lookups * 5 < full_lookups,
        "LIMIT 10 should need <20% of the full scan's block lookups: \
         {lim_lookups} vs {full_lookups}"
    );
    assert!(
        lim_io.scan_early_terminations >= 1,
        "cancelled scan must be counted: {lim_io:?}"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn explain_lists_compiled_programs() {
    let (mut c, dir) = client("explain-bytecode");
    setup_orders(&mut c);
    let text = |r: just_ql::QueryResult| {
        r.into_dataset()
            .unwrap()
            .rows
            .into_iter()
            .map(|row| row.values[0].as_str().unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };

    // The residual predicate compiles against the stored schema: the
    // listing shows resolved columns and the int-specialized compare.
    let plan = text(
        c.execute("EXPLAIN SELECT name FROM orders WHERE fid % 2 = 1 AND fid > 10")
            .unwrap(),
    );
    assert!(plan.contains("program residual:"), "{plan}");
    assert!(plan.contains("(fid)"), "{plan}");
    assert!(plan.contains("cmp.int"), "{plan}");
    assert!(plan.contains("mask.and"), "{plan}");
    assert!(plan.contains("ret r"), "{plan}");

    // Aggregates list one program per key / argument.
    let plan = text(
        c.execute("EXPLAIN SELECT name, sum(fid + 1) AS s FROM orders GROUP BY name")
            .unwrap(),
    );
    assert!(plan.contains("program key name:"), "{plan}");
    assert!(plan.contains("program sum s:"), "{plan}");

    // EXPLAIN ANALYZE marks which path each operator actually took.
    let plan = text(
        c.execute("EXPLAIN ANALYZE SELECT fid + 1 AS x FROM orders WHERE fid > 10")
            .unwrap(),
    );
    assert!(plan.contains("compiled=1"), "{plan}");

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn explain_analyze_shows_join_and_topk_operators() {
    let (mut c, dir) = client("explain-join");
    c.execute("CREATE TABLE ja (k integer:primary key, x integer)")
        .unwrap();
    c.execute("CREATE TABLE jb (k integer:primary key, y integer)")
        .unwrap();
    c.execute("INSERT INTO ja VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    c.execute("INSERT INTO jb VALUES (2, 7), (3, 8), (4, 9)")
        .unwrap();
    let text = |r: just_ql::QueryResult| {
        r.into_dataset()
            .unwrap()
            .rows
            .into_iter()
            .map(|row| row.values[0].as_str().unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };

    // Equi join + ORDER BY + LIMIT: the trace shows the hash join with
    // its build/probe row counts and the fused TOP-K with prune stats.
    let plan = text(
        c.execute(
            "EXPLAIN ANALYZE SELECT l.x, r.y FROM ja l JOIN jb r ON l.k = r.k \
             ORDER BY x DESC LIMIT 2",
        )
        .unwrap(),
    );
    assert!(plan.contains("hash_join"), "{plan}");
    assert!(plan.contains("build_rows="), "{plan}");
    assert!(plan.contains("probe_rows="), "{plan}");
    assert!(plan.contains("topk"), "{plan}");
    assert!(plan.contains("rows_pruned="), "{plan}");
    assert!(!plan.contains("nested_loop"), "{plan}");

    // Non-equi conditions keep the nested-loop join operator.
    let plan = text(
        c.execute("EXPLAIN ANALYZE SELECT l.x, r.y FROM ja l JOIN jb r ON l.k < r.k")
            .unwrap(),
    );
    assert!(plan.contains("Join ["), "{plan}");
    assert!(!plan.contains("hash_join"), "{plan}");

    std::fs::remove_dir_all(dir).ok();
}
