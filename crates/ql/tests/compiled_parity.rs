//! Seeded property test: the compiled, vectorized expression path must
//! agree with the interpreted `eval()` path on randomly generated
//! queries — identical datasets on success, and an error on one side
//! implies an error on the other (NULL propagation, type-mismatch
//! errors, division by zero included). Error *messages* are not
//! compared: the vectorized VM evaluates op-major while the interpreter
//! evaluates row-major, so when several rows would error, which error
//! surfaces first may differ.
//!
//! Everything is driven through the public SQL surface with
//! [`just_ql::set_compiled`] toggling the executor's path, so the test
//! also covers compile-vs-fallback dispatch, the scan residual, and the
//! vectorized hash aggregator.

use just_core::{Engine, EngineConfig, SessionManager};
use just_obs::Rng;
use just_ql::{set_compiled, Client};
use std::sync::Arc;

const CASES: usize = 96;

fn client(name: &str) -> (Client, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "just-ql-parity-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(Engine::open(&dir, EngineConfig::default()).unwrap());
    let sessions = SessionManager::new(engine);
    (Client::new(sessions.session("parity")), dir)
}

/// Random scalar expression over the test table's columns. Depth-bounded;
/// deliberately type-sloppy (strings flow into arithmetic, NULLs
/// everywhere) so both error parity and NULL parity get exercised.
fn gen_expr(rng: &mut Rng, depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.25) {
        return match rng.gen_range(0..8u32) {
            0 => "i".to_string(),
            1 => "j".to_string(),
            2 => "f".to_string(),
            3 => "s".to_string(),
            4 => format!("{}", rng.gen_range(0..9i64)),
            5 => format!("{}.5", rng.gen_range(0..5i64)),
            6 => "'abc'".to_string(),
            _ => "null".to_string(),
        };
    }
    match rng.gen_range(0..10u32) {
        0..=4 => {
            let op = ["+", "-", "*", "/", "%", "=", "!=", "<", "<=", ">", ">="]
                [rng.gen_range(0..11u32) as usize];
            format!(
                "({} {op} {})",
                gen_expr(rng, depth - 1),
                gen_expr(rng, depth - 1)
            )
        }
        5 => {
            let op = ["AND", "OR"][rng.gen_range(0..2u32) as usize];
            format!(
                "({} {op} {})",
                gen_expr(rng, depth - 1),
                gen_expr(rng, depth - 1)
            )
        }
        6 => format!(
            "({} BETWEEN {} AND {})",
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1)
        ),
        7 => {
            let f = [
                "abs",
                "length",
                "upper",
                "lower",
                "to_int",
                "to_float",
                "to_string",
            ][rng.gen_range(0..7u32) as usize];
            format!("{f}({})", gen_expr(rng, depth - 1))
        }
        8 => format!(
            "coalesce({}, {})",
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1)
        ),
        _ => format!("(NOT {})", gen_expr(rng, depth - 1)),
    }
}

/// Runs `sql` on both executor paths and asserts parity.
fn check(c: &mut Client, sql: &str) {
    set_compiled(false);
    let interpreted = c.execute(sql).map(|r| r.into_dataset());
    set_compiled(true);
    let compiled = c.execute(sql).map(|r| r.into_dataset());
    match (interpreted, compiled) {
        (Ok(a), Ok(b)) => {
            let a = a.expect("query returns data");
            let b = b.expect("query returns data");
            assert_eq!(a.columns, b.columns, "column mismatch for {sql}");
            assert_eq!(a.rows, b.rows, "row mismatch for {sql}");
        }
        (Err(_), Err(_)) => {}
        (Ok(_), Err(e)) => panic!("interpreted ok, compiled failed for {sql}: {e:?}"),
        (Err(e), Ok(_)) => panic!("compiled ok, interpreted failed for {sql}: {e:?}"),
    }
}

#[test]
fn compiled_and_interpreted_paths_agree() {
    let (mut c, dir) = client("prop");
    c.execute(
        "CREATE TABLE par (i integer:primary key, j integer, f float, \
         s string, time date, geom point:srid=4326)",
    )
    .unwrap();
    // Deterministic data with NULLs sprinkled into every nullable column
    // and a few strings that do/don't parse as numbers.
    let mut rng = Rng::seed_from_u64(0x4A55_5354_0001);
    for i in 0..48i64 {
        let j = if i % 7 == 3 {
            "null".to_string()
        } else {
            format!("{}", (i * 13) % 21 - 10)
        };
        let f = if i % 5 == 2 {
            "null".to_string()
        } else {
            format!("{}.25", (i % 9) - 4)
        };
        let s = match i % 6 {
            0 => "null".to_string(),
            1 => "'12'".to_string(),
            2 => "'abc'".to_string(),
            3 => "'ABC'".to_string(),
            4 => "''".to_string(),
            _ => format!("'v{i}'"),
        };
        let (lng, lat) = (116.0 + rng.gen_f64() * 0.5, 39.5 + rng.gen_f64() * 0.5);
        c.execute(&format!(
            "INSERT INTO par VALUES ({i}, {j}, {f}, {s}, {}, st_makePoint({lng:.4}, {lat:.4}))",
            1_000 + i * 37
        ))
        .unwrap();
    }

    let compiled_before = just_obs::global()
        .counter("just_exec_programs_compiled")
        .get();
    let mut rng = Rng::seed_from_u64(0x4A55_5354_C0DE);
    for case in 0..CASES {
        let pred = gen_expr(&mut rng, 3);
        let proj = gen_expr(&mut rng, 3);
        match case % 4 {
            // Filter + computed projection (scan residual + project).
            0 | 1 => check(
                &mut c,
                &format!("SELECT i, {proj} AS x FROM par WHERE {pred}"),
            ),
            // Grouped aggregation over a filtered scan.
            2 => check(
                &mut c,
                &format!(
                    "SELECT s, count(*) AS c, sum({proj}) AS sm, min({proj}) AS mn \
                     FROM par WHERE {pred} GROUP BY s"
                ),
            ),
            // Global aggregates (zero-row inputs must still emit a row).
            _ => check(
                &mut c,
                &format!(
                    "SELECT count({proj}) AS c, avg({proj}) AS av, max({proj}) AS mx \
                     FROM par WHERE {pred}"
                ),
            ),
        }
    }

    // The exercise must actually have taken the compiled path — a
    // regression that rejects everything would make parity vacuous.
    let compiled = just_obs::global()
        .counter("just_exec_programs_compiled")
        .get()
        - compiled_before;
    assert!(
        compiled >= CASES as u64,
        "only {compiled} programs compiled across {CASES} cases"
    );

    set_compiled(true);
    std::fs::remove_dir_all(&dir).ok();
}
