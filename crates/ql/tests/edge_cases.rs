//! SQL edge cases: error paths, odd-but-legal statements, and semantics
//! corners that the happy-path e2e tests don't touch.

use just_core::{Engine, EngineConfig, SessionManager};
use just_ql::Client;
use just_storage::Value;
use std::sync::Arc;

fn client(name: &str) -> (Client, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "just-ql-edge-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(Engine::open(&dir, EngineConfig::default()).unwrap());
    let sessions = SessionManager::new(engine);
    (Client::new(sessions.session("edge")), dir)
}

#[test]
fn select_without_from() {
    let (mut c, dir) = client("nofrom");
    let r = c
        .execute("SELECT 1 + 2 AS a, upper('just') AS b")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.rows[0].values[0], Value::Int(3));
    assert_eq!(r.rows[0].values[1].as_str(), Some("JUST"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn limit_zero_and_empty_results() {
    let (mut c, dir) = client("limit0");
    c.execute("CREATE TABLE t (fid integer:primary key, geom point)")
        .unwrap();
    c.execute("INSERT INTO t VALUES (1, st_makePoint(1, 2))")
        .unwrap();
    let r = c
        .execute("SELECT fid FROM t LIMIT 0")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert!(r.is_empty());
    // Aggregate over an empty relation still yields one row.
    let agg = c
        .execute("SELECT count(*) AS n FROM t WHERE fid = 999")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(agg.rows[0].values[0], Value::Int(0));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn between_is_inclusive_and_symmetric() {
    let (mut c, dir) = client("between");
    c.execute("CREATE TABLE t (fid integer:primary key, time date, geom point)")
        .unwrap();
    c.execute(
        "INSERT INTO t VALUES (1, 100, st_makePoint(1,1)), \
         (2, 200, st_makePoint(1,1)), (3, 300, st_makePoint(1,1))",
    )
    .unwrap();
    let r = c
        .execute("SELECT fid FROM t WHERE time BETWEEN 100 AND 200 ORDER BY fid")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.len(), 2, "BETWEEN includes both endpoints");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn not_and_comparison_operators() {
    let (mut c, dir) = client("not");
    c.execute("CREATE TABLE t (fid integer:primary key, name string)")
        .unwrap();
    c.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    let r = c
        .execute("SELECT fid FROM t WHERE NOT name = 'b' AND fid <> 3 ORDER BY fid")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows[0].values[0], Value::Int(1));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn analyze_errors_are_reported_not_panicked() {
    let (mut c, dir) = client("errors");
    c.execute("CREATE TABLE t (fid integer:primary key, geom point)")
        .unwrap();
    // Unknown column.
    assert!(c.execute("SELECT missing FROM t").is_err());
    // Unknown table.
    assert!(c.execute("SELECT 1 FROM ghost").is_err());
    // Unknown function.
    assert!(c.execute("SELECT st_frobnicate(1) FROM t").is_err());
    // Arity mismatch on INSERT.
    assert!(c.execute("INSERT INTO t VALUES (1)").is_err());
    // Aggregate mixed with non-grouped column.
    assert!(c.execute("SELECT fid, count(*) FROM t").is_err());
    // Creating a duplicate table.
    assert!(c
        .execute("CREATE TABLE t (fid integer:primary key, geom point)")
        .is_err());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn store_view_into_existing_table_appends() {
    let (mut c, dir) = client("storeview");
    c.execute("CREATE TABLE src (fid integer:primary key, geom point)")
        .unwrap();
    c.execute("INSERT INTO src VALUES (1, st_makePoint(1,1)), (2, st_makePoint(2,2))")
        .unwrap();
    c.execute("CREATE VIEW v AS SELECT * FROM src").unwrap();
    c.execute("STORE VIEW v TO TABLE dst").unwrap();
    // Second store into the now-existing table: same ids overwrite
    // (update semantics), so the count stays stable.
    c.execute("STORE VIEW v TO TABLE dst").unwrap();
    let n = c
        .execute("SELECT count(*) AS n FROM dst")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(n.rows[0].values[0], Value::Int(2));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn order_by_desc_with_nulls() {
    let (mut c, dir) = client("nulls");
    c.execute("CREATE TABLE t (fid integer:primary key, name string)")
        .unwrap();
    c.execute("INSERT INTO t VALUES (1, 'x'), (2, null), (3, 'y')")
        .unwrap();
    let r = c
        .execute("SELECT fid, name FROM t ORDER BY name DESC")
        .unwrap()
        .into_dataset()
        .unwrap();
    // NULL sorts lowest; DESC puts it last.
    assert_eq!(r.rows[2].values[0], Value::Int(2));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn stay_point_table_function_via_sql() {
    let (mut c, dir) = client("staypoints");
    c.execute("CREATE TABLE tr AS trajectory").unwrap();
    // Build a trajectory with a 30-minute stop via the API, then query the
    // stay points through SQL.
    let mut samples = Vec::new();
    for i in 0..40i64 {
        samples.push(just_compress::gps::GpsSample {
            lng: 116.30 + i as f64 * 2e-4,
            lat: 39.90,
            time_ms: i * 1000,
        });
    }
    for i in 0..30i64 {
        samples.push(just_compress::gps::GpsSample {
            lng: 116.308,
            lat: 39.9001,
            time_ms: 60_000 + i * 60_000,
        });
    }
    let mbr = just_geo::Rect::new(116.30, 39.90, 116.309, 39.9002);
    let row = just_storage::Row::new(vec![
        Value::Str("t1".into()),
        Value::Geom(just_geo::Geometry::Rect(mbr)),
        Value::Date(0),
        Value::Date(60_000 + 29 * 60_000),
        Value::Geom(just_geo::Geometry::Point(just_geo::Point::new(
            116.30, 39.90,
        ))),
        Value::Geom(just_geo::Geometry::Point(just_geo::Point::new(
            116.308, 39.9001,
        ))),
        Value::GpsList(samples),
    ]);
    c.session().insert("tr", &[row]).unwrap();
    let r = c
        .execute("SELECT st_trajStayPoint(gps_list) FROM tr")
        .unwrap()
        .into_dataset()
        .unwrap();
    assert_eq!(r.columns, vec!["stay_point", "t_arrive", "t_leave"]);
    assert_eq!(r.len(), 1, "one stay detected");
    std::fs::remove_dir_all(dir).ok();
}
