//! Observability e2e tests: the `SHOW`/`KILL` surface, the live query
//! registry, the slow-query log, and the zero-cost guarantee for plain
//! queries.

use just_core::{Engine, EngineConfig, SessionManager};
use just_ql::Client;
use just_storage::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine_with(name: &str, cfg: EngineConfig) -> (Arc<Engine>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "just-ql-obs-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(Engine::open(&dir, cfg).unwrap());
    (engine, dir)
}

fn client_for(engine: &Arc<Engine>, user: &str) -> Client {
    Client::new(SessionManager::new(engine.clone()).session(user))
}

fn setup_points(c: &mut Client, n: i64) {
    c.execute(
        "CREATE TABLE pts (fid integer:primary key, time date, \
         geom point:srid=4326)",
    )
    .unwrap();
    let mut values = Vec::new();
    for i in 0..n {
        let lng = 116.0 + (i % 100) as f64 * 0.001;
        let lat = 39.0 + (i / 100) as f64 * 0.001;
        values.push(format!("({i}, {}, st_makePoint({lng}, {lat}))", i * 1000));
    }
    c.execute(&format!("INSERT INTO pts VALUES {}", values.join(", ")))
        .unwrap();
}

#[test]
fn show_statements_return_structured_datasets() {
    let (engine, dir) = engine_with("show", EngineConfig::default());
    let mut c = client_for(&engine, "obs");
    setup_points(&mut c, 50);
    c.execute("SELECT count(*) FROM pts").unwrap();

    // SHOW METRICS: counters/gauges/histogram percentiles as rows.
    let m = c.execute("SHOW METRICS").unwrap();
    let m = m.dataset().unwrap();
    assert_eq!(m.columns, vec!["metric", "kind", "value"]);
    let names: Vec<&str> = m
        .rows
        .iter()
        .map(|r| r.values[0].as_str().unwrap())
        .collect();
    assert!(
        names.iter().any(|n| n.ends_with("_p99")),
        "histograms expand to percentile rows: {names:?}"
    );

    // SHOW QUERIES: empty when nothing runs (our own SHOW is not a
    // SELECT, so it never registers).
    let q = c.execute("SHOW QUERIES").unwrap();
    let q = q.dataset().unwrap();
    assert_eq!(q.columns[0], "id");
    assert!(q.rows.is_empty(), "no live SELECTs expected");

    // SHOW REGIONS: one row per region of this user's tables, logical
    // names, with write traffic from the INSERT above.
    let r = c.execute("SHOW REGIONS").unwrap();
    let r = r.dataset().unwrap();
    assert!(!r.rows.is_empty(), "pts must have at least one region");
    assert!(r
        .rows
        .iter()
        .all(|row| row.values[0].as_str() == Some("pts")));
    assert!(r
        .rows
        .iter()
        .any(|row| row.values[1].as_str() == Some("data")));
    let writes_col = r.columns.iter().position(|c| c == "writes").unwrap();
    let writes: i64 = r
        .rows
        .iter()
        .map(|row| match row.values[writes_col] {
            Value::Int(v) => v,
            _ => 0,
        })
        .sum();
    assert!(writes >= 50, "insert traffic must show up, got {writes}");

    // Another user sees none of our regions.
    let mut other = client_for(&engine, "stranger");
    let r2 = other.execute("SHOW REGIONS").unwrap();
    assert!(r2.dataset().unwrap().rows.is_empty());

    // SHOW EVENTS honours LIMIT and returns newest-first sequences.
    let e = c.execute("SHOW EVENTS LIMIT 5").unwrap();
    let e = e.dataset().unwrap();
    assert_eq!(e.columns, vec!["seq", "ts_ms", "kind", "detail"]);
    assert!(e.rows.len() <= 5);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn show_queries_lists_a_live_select_with_io_delta() {
    let (engine, dir) = engine_with("live", EngineConfig::default());
    let mut c = client_for(&engine, "obs");
    setup_points(&mut c, 1500);

    let worker_engine = engine.clone();
    let worker = std::thread::spawn(move || {
        let mut wc = client_for(&worker_engine, "obs");
        // Volatile predicate: runs per row inside the scan, never folded.
        wc.execute("SELECT fid FROM pts WHERE sleep_ms(2) >= 0")
    });

    // Poll the registry until the worker's query shows up.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut seen = None;
    while Instant::now() < deadline {
        let q = c.execute("SHOW QUERIES").unwrap();
        let q = q.dataset().unwrap();
        if let Some(row) = q.rows.first() {
            seen = Some((
                row.values[0].clone(),
                row.values[1].clone(),
                row.values[8].clone(),
            ));
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let (id, user, sql) = seen.expect("live query never appeared in SHOW QUERIES");
    assert!(matches!(id, Value::Int(n) if n > 0));
    assert_eq!(user.as_str(), Some("obs"));
    assert!(sql.as_str().unwrap().contains("sleep_ms"));

    // Kill it so the test does not wait out the full sleep.
    if let Value::Int(n) = id {
        assert!(engine.kill_query(n as u64));
    }
    let _ = worker.join().unwrap();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn kill_query_cancels_a_scan_mid_stream() {
    let (engine, dir) = engine_with("kill", EngineConfig::default());
    let mut c = client_for(&engine, "obs");
    // More rows than one 1024-row batch so the per-batch kill check runs
    // at a real batch boundary while the volatile predicate is sleeping.
    setup_points(&mut c, 2100);

    let before = engine.io_snapshot();
    let worker_engine = engine.clone();
    let worker = std::thread::spawn(move || {
        let mut wc = client_for(&worker_engine, "obs");
        wc.execute("SELECT fid FROM pts WHERE sleep_ms(1) >= 0")
    });

    // Wait for the query to register, then kill it via SQL.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut id = None;
    while Instant::now() < deadline {
        if let Some(q) = engine.queries().list().first() {
            id = Some(q.id());
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let id = id.expect("query never registered");
    let msg = c.execute(&format!("KILL QUERY {id}")).unwrap();
    assert!(msg.message().unwrap().contains(&id.to_string()));

    // The scan must come back as a typed CANCELLED error...
    let err = worker.join().unwrap().expect_err("query must be killed");
    assert_eq!(err.code(), "CANCELLED");

    // ...having stopped the stream early (the drop is counted).
    let after = engine.io_snapshot().since(&before);
    assert!(
        after.scan_early_terminations >= 1,
        "killed scan must terminate its stream early: {after:?}"
    );

    // The registry forgets the query once its guard drops.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && !engine.queries().list().is_empty() {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(engine.queries().list().is_empty());

    // Killing a finished query is a client-visible error.
    assert!(c.execute(&format!("KILL QUERY {id}")).is_err());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn plain_queries_allocate_no_trace() {
    let (engine, dir) = engine_with("zerocost", EngineConfig::default());
    let mut c = client_for(&engine, "obs");
    setup_points(&mut c, 100);

    let before = just_obs::traces_allocated();
    for _ in 0..5 {
        c.execute("SELECT fid FROM pts WHERE fid < 50").unwrap();
        c.execute("SHOW QUERIES").unwrap();
    }
    assert_eq!(
        just_obs::traces_allocated(),
        before,
        "plain queries must never allocate a Trace arena"
    );

    // EXPLAIN ANALYZE is the opt-in path that does allocate one.
    c.execute("EXPLAIN ANALYZE SELECT fid FROM pts").unwrap();
    assert!(just_obs::traces_allocated() > before);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn slow_queries_emit_a_breakdown_event() {
    let cfg = EngineConfig {
        slow_query_ms: 10,
        ..EngineConfig::default()
    };
    let (engine, dir) = engine_with("slowlog", cfg);
    let mut c = client_for(&engine, "obs");
    setup_points(&mut c, 20);

    c.execute("SELECT fid FROM pts WHERE sleep_ms(2) >= 0")
        .unwrap();

    let events = engine.events().recent(50);
    let slow = events
        .iter()
        .find(|e| e.kind == "query.slow")
        .expect("slow query must be logged");
    assert!(slow.detail.contains("user=obs"), "{}", slow.detail);
    assert!(slow.detail.contains("ok=true"), "{}", slow.detail);
    assert!(slow.detail.contains("ops=["), "{}", slow.detail);
    assert!(slow.detail.contains("sleep_ms"), "{}", slow.detail);

    // Fast queries below the threshold stay out of the log.
    let before = engine
        .events()
        .recent(100)
        .iter()
        .filter(|e| e.kind == "query.slow")
        .count();
    c.execute("SELECT count(*) FROM pts").unwrap();
    let after = engine
        .events()
        .recent(100)
        .iter()
        .filter(|e| e.kind == "query.slow")
        .count();
    assert_eq!(before, after, "fast query must not hit the slow log");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn query_tracking_can_be_disabled() {
    let cfg = EngineConfig {
        query_tracking: false,
        ..EngineConfig::default()
    };
    let (engine, dir) = engine_with("notrack", cfg);
    let mut c = client_for(&engine, "obs");
    setup_points(&mut c, 1500);

    let worker_engine = engine.clone();
    let worker = std::thread::spawn(move || {
        let mut wc = client_for(&worker_engine, "obs");
        wc.execute("SELECT fid FROM pts WHERE sleep_ms(1) >= 0 LIMIT 5")
    });
    // With tracking off the registry stays empty even while running.
    std::thread::sleep(Duration::from_millis(50));
    assert!(engine.queries().list().is_empty());
    worker.join().unwrap().unwrap();
    std::fs::remove_dir_all(dir).ok();
}
