//! The LocationSpark-style baseline: an in-memory point quadtree with
//! incremental insert support (LocationSpark is the one Spark system in
//! Table I with "Data Update: Yes").

use crate::engine::{
    resident_estimate, EngineError, Family, MemoryBudget, SpatialEngine, StRecord,
};
use just_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const LEAF_CAPACITY: usize = 32;
const MAX_DEPTH: u32 = 16;

#[derive(Debug)]
struct QNode {
    bounds: Rect,
    depth: u32,
    entries: Vec<usize>,
    children: Option<Box<[QNode; 4]>>,
}

impl QNode {
    fn new(bounds: Rect, depth: u32) -> Self {
        QNode {
            bounds,
            depth,
            entries: Vec::new(),
            children: None,
        }
    }

    fn insert(&mut self, idx: usize, p: Point, records: &[StRecord]) {
        if self.children.is_none()
            && (self.entries.len() < LEAF_CAPACITY || self.depth >= MAX_DEPTH)
        {
            self.entries.push(idx);
            return;
        }
        if self.children.is_none() {
            let q = self.bounds.quadrants();
            self.children = Some(Box::new([
                QNode::new(q[0], self.depth + 1),
                QNode::new(q[1], self.depth + 1),
                QNode::new(q[2], self.depth + 1),
                QNode::new(q[3], self.depth + 1),
            ]));
            let old = std::mem::take(&mut self.entries);
            for e in old {
                let ep = records[e].point;
                self.route(ep).insert(e, ep, records);
            }
        }
        self.route(p).insert(idx, p, records);
    }

    fn route(&mut self, p: Point) -> &mut QNode {
        let children = self.children.as_mut().unwrap();
        let idx = children
            .iter()
            .position(|c| c.bounds.contains_point(&p))
            .unwrap_or(0);
        &mut children[idx]
    }

    fn query(&self, window: &Rect, records: &[StRecord], out: &mut Vec<u64>) {
        if !self.bounds.intersects(window) {
            return;
        }
        for &i in &self.entries {
            if records[i].mbr.intersects(window) {
                out.push(records[i].id);
            }
        }
        if let Some(children) = &self.children {
            for c in children.iter() {
                c.query(window, records, out);
            }
        }
    }
}

/// In-memory quadtree engine (the LocationSpark stand-in).
pub struct QuadTreeEngine {
    budget: MemoryBudget,
    records: Vec<StRecord>,
    root: QNode,
}

impl QuadTreeEngine {
    /// Creates the engine.
    pub fn new(budget: MemoryBudget) -> Self {
        QuadTreeEngine {
            budget,
            records: Vec::new(),
            root: QNode::new(just_geo::WORLD, 0),
        }
    }
}

impl SpatialEngine for QuadTreeEngine {
    fn name(&self) -> &'static str {
        "quadtree-mem (LocationSpark-like)"
    }

    fn family(&self) -> Family {
        Family::InMemory
    }

    fn build(&mut self, records: &[StRecord]) -> Result<(), EngineError> {
        self.budget.check(resident_estimate(records, 72))?;
        self.records = records.to_vec();
        self.root = QNode::new(just_geo::WORLD, 0);
        for i in 0..self.records.len() {
            let p = self.records[i].point;
            self.root.insert(i, p, &self.records);
        }
        Ok(())
    }

    fn spatial_range(&self, window: &Rect) -> Result<Vec<u64>, EngineError> {
        let mut out = Vec::new();
        self.root.query(window, &self.records, &mut out);
        Ok(out)
    }

    fn st_range(&self, window: &Rect, t0: i64, t1: i64) -> Result<Vec<u64>, EngineError> {
        // LocationSpark filters time after the spatial pass (no temporal
        // index), which is what the paper's numbers reflect.
        let spatial = self.spatial_range(window)?;
        Ok(spatial
            .into_iter()
            .filter(|id| {
                self.records
                    .iter()
                    .find(|r| r.id == *id)
                    .map(|r| r.overlaps_time(t0, t1))
                    .unwrap_or(false)
            })
            .collect())
    }

    fn knn(&self, q: Point, k: usize) -> Result<Vec<u64>, EngineError> {
        // Best-first over quadtree nodes.
        enum Entry<'a> {
            Node(&'a QNode),
            Record(usize),
        }
        struct Item<'a> {
            dist: f64,
            entry: Entry<'a>,
        }
        impl PartialEq for Item<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl Eq for Item<'_> {}
        impl Ord for Item<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .unwrap_or(Ordering::Equal)
            }
        }
        impl PartialOrd for Item<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Item {
            dist: 0.0,
            entry: Entry::Node(&self.root),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(item) = heap.pop() {
            match item.entry {
                Entry::Record(i) => {
                    out.push(self.records[i].id);
                    if out.len() == k {
                        break;
                    }
                }
                Entry::Node(node) => {
                    for &i in &node.entries {
                        heap.push(Item {
                            dist: just_geo::euclidean(&self.records[i].point, &q),
                            entry: Entry::Record(i),
                        });
                    }
                    if let Some(children) = &node.children {
                        for c in children.iter() {
                            heap.push(Item {
                                dist: c.bounds.min_distance(&q),
                                entry: Entry::Node(c),
                            });
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn supports_update(&self) -> bool {
        true
    }

    fn insert(&mut self, record: StRecord) -> Result<(), EngineError> {
        self.budget
            .check(self.memory_bytes() + record.payload_bytes as usize + 72)?;
        let p = record.point;
        self.records.push(record);
        let idx = self.records.len() - 1;
        self.root.insert(idx, p, &self.records);
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        resident_estimate(&self.records, 72)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: usize) -> Vec<StRecord> {
        (0..n)
            .map(|i| {
                StRecord::point(
                    i as u64,
                    Point::new(
                        116.0 + (i % 23) as f64 * 0.004,
                        39.0 + (i % 29) as f64 * 0.004,
                    ),
                    i as i64 * 60_000,
                    64,
                )
            })
            .collect()
    }

    #[test]
    fn range_and_knn_match_brute_force() {
        let records = recs(400);
        let mut e = QuadTreeEngine::new(MemoryBudget::unlimited());
        e.build(&records).unwrap();
        let w = Rect::new(116.01, 39.01, 116.04, 39.06);
        let mut got = e.spatial_range(&w).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = records
            .iter()
            .filter(|r| r.mbr.intersects(&w))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);

        let q = Point::new(116.05, 39.05);
        let got = e.knn(q, 5).unwrap();
        let mut brute: Vec<(f64, u64)> = records
            .iter()
            .map(|r| (just_geo::euclidean(&r.point, &q), r.id))
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (g, (wd, _)) in got.iter().zip(brute.iter().take(5)) {
            let gd = just_geo::euclidean(&records[*g as usize].point, &q);
            assert!((gd - wd).abs() < 1e-12);
        }
    }

    #[test]
    fn st_range_post_filters_time() {
        let records = recs(100);
        let mut e = QuadTreeEngine::new(MemoryBudget::unlimited());
        e.build(&records).unwrap();
        let w = just_geo::WORLD;
        let all = e.st_range(&w, 0, i64::MAX).unwrap();
        let early = e.st_range(&w, 0, 10 * 60_000).unwrap();
        assert_eq!(all.len(), 100);
        assert_eq!(early.len(), 11);
    }

    #[test]
    fn incremental_insert_is_supported() {
        let mut e = QuadTreeEngine::new(MemoryBudget::unlimited());
        e.build(&recs(10)).unwrap();
        assert!(e.supports_update());
        e.insert(StRecord::point(999, Point::new(116.5, 39.5), 0, 64))
            .unwrap();
        let got = e
            .spatial_range(&Rect::new(116.49, 39.49, 116.51, 39.51))
            .unwrap();
        assert_eq!(got, vec![999]);
    }

    #[test]
    fn deep_duplicate_points_respect_max_depth() {
        // Many identical points cannot split forever.
        let records: Vec<StRecord> = (0..200)
            .map(|i| StRecord::point(i, Point::new(116.0, 39.0), 0, 16))
            .collect();
        let mut e = QuadTreeEngine::new(MemoryBudget::unlimited());
        e.build(&records).unwrap();
        assert_eq!(
            e.spatial_range(&Rect::new(115.9, 38.9, 116.1, 39.1))
                .unwrap()
                .len(),
            200
        );
    }
}
