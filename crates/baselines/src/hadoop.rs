//! The SpatialHadoop/ST-Hadoop-style baseline: records live in
//! grid-partitioned files on disk; every query pays a simulated MapReduce
//! job-startup cost and reads whole partitions back from disk.
//!
//! This reproduces the two properties the paper measures: high
//! scalability (nothing is memory-resident) and high per-query latency
//! ("it is expensive for ST-Hadoop to start a MapReduce job").

use crate::engine::{EngineError, Family, SpatialEngine, StRecord};
use just_geo::{Point, Rect};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

const GRID: usize = 16;

/// Disk-partitioned scan engine (the SpatialHadoop/ST-Hadoop stand-in).
pub struct HadoopSimEngine {
    dir: PathBuf,
    /// Simulated job startup latency, paid once per query.
    job_overhead: Duration,
    /// Whether temporal partitions exist (ST-Hadoop vs SpatialHadoop).
    temporal: bool,
    /// Partition table: cell -> file path + record count.
    partitions: HashMap<(u32, u32), PathBuf>,
    extent: Rect,
}

impl HadoopSimEngine {
    /// Creates the engine with its working directory, the per-job startup
    /// cost to simulate, and whether it supports temporal filtering
    /// (ST-Hadoop) or not (SpatialHadoop).
    pub fn new(dir: PathBuf, job_overhead: Duration, temporal: bool) -> Self {
        HadoopSimEngine {
            dir,
            job_overhead,
            temporal,
            partitions: HashMap::new(),
            extent: just_geo::WORLD,
        }
    }

    fn cell_of(&self, p: &Point) -> (u32, u32) {
        let n = GRID as f64;
        let cx = ((p.x - self.extent.min_x) / self.extent.width().max(1e-12) * n)
            .clamp(0.0, n - 1.0) as u32;
        let cy = ((p.y - self.extent.min_y) / self.extent.height().max(1e-12) * n)
            .clamp(0.0, n - 1.0) as u32;
        (cx, cy)
    }

    fn encode(records: &[&StRecord]) -> Vec<u8> {
        let mut out = Vec::with_capacity(records.len() * 56);
        out.extend_from_slice(&(records.len() as u64).to_le_bytes());
        for r in records {
            out.extend_from_slice(&r.id.to_le_bytes());
            for v in [r.mbr.min_x, r.mbr.min_y, r.mbr.max_x, r.mbr.max_y] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&r.t_min.to_le_bytes());
            out.extend_from_slice(&r.t_max.to_le_bytes());
            out.extend_from_slice(&r.payload_bytes.to_le_bytes());
            // Simulate the payload itself living in the file: pad so disk
            // IO scales with real record sizes.
            out.resize(out.len() + r.payload_bytes as usize, 0);
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Vec<StRecord>, EngineError> {
        let bad = || EngineError::Io("partition file corrupt".into());
        let take = |pos: &mut usize, n: usize| -> Result<Vec<u8>, EngineError> {
            let end = *pos + n;
            let s = bytes.get(*pos..end).ok_or_else(bad)?.to_vec();
            *pos = end;
            Ok(s)
        };
        let mut pos = 0usize;
        let count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let mut vals = [0f64; 4];
            for v in &mut vals {
                *v = f64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            }
            let t_min = i64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let t_max = i64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let payload = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            pos += payload as usize; // skip the padded payload
            if pos > bytes.len() {
                return Err(bad());
            }
            let mbr = Rect::new(vals[0], vals[1], vals[2], vals[3]);
            out.push(StRecord {
                id,
                point: mbr.center(),
                mbr,
                t_min,
                t_max,
                payload_bytes: payload,
            });
        }
        Ok(out)
    }

    /// Runs a "job": pays the startup cost, reads every partition whose
    /// cell could overlap the window, filters.
    fn job(&self, window: &Rect, time: Option<(i64, i64)>) -> Result<Vec<u64>, EngineError> {
        if !self.job_overhead.is_zero() {
            std::thread::sleep(self.job_overhead);
        }
        let n = GRID as f64;
        let w = self.extent.width().max(1e-12);
        let h = self.extent.height().max(1e-12);
        let x0 = (((window.min_x - self.extent.min_x) / w * n)
            .floor()
            .max(0.0)) as u32;
        let y0 = (((window.min_y - self.extent.min_y) / h * n)
            .floor()
            .max(0.0)) as u32;
        let x1 = (((window.max_x - self.extent.min_x) / w * n)
            .floor()
            .clamp(0.0, n - 1.0)) as u32;
        let y1 = (((window.max_y - self.extent.min_y) / h * n)
            .floor()
            .clamp(0.0, n - 1.0)) as u32;
        let mut out = Vec::new();
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                let Some(path) = self.partitions.get(&(cx, cy)) else {
                    continue;
                };
                let bytes = std::fs::read(path).map_err(|e| EngineError::Io(e.to_string()))?;
                for r in Self::decode(&bytes)? {
                    if !r.mbr.intersects(window) {
                        continue;
                    }
                    if let Some((t0, t1)) = time {
                        if !r.overlaps_time(t0, t1) {
                            continue;
                        }
                    }
                    out.push(r.id);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

impl SpatialEngine for HadoopSimEngine {
    fn name(&self) -> &'static str {
        if self.temporal {
            "hadoop-disk (ST-Hadoop-like)"
        } else {
            "hadoop-disk (SpatialHadoop-like)"
        }
    }

    fn family(&self) -> Family {
        Family::DiskMapReduce
    }

    fn build(&mut self, records: &[StRecord]) -> Result<(), EngineError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| EngineError::Io(e.to_string()))?;
        // Fit the partition grid to the data.
        let mut extent = Rect::empty();
        for r in records {
            extent = extent.union(&r.mbr);
        }
        self.extent = if extent.is_empty() {
            just_geo::WORLD
        } else {
            extent
        };
        // Partition by representative point (SpatialHadoop's grid file).
        let mut buckets: HashMap<(u32, u32), Vec<&StRecord>> = HashMap::new();
        for r in records {
            buckets.entry(self.cell_of(&r.point)).or_default().push(r);
        }
        self.partitions.clear();
        for (cell, bucket) in buckets {
            let path = self
                .dir
                .join(format!("part-{:02}-{:02}.bin", cell.0, cell.1));
            std::fs::write(&path, Self::encode(&bucket))
                .map_err(|e| EngineError::Io(e.to_string()))?;
            self.partitions.insert(cell, path);
        }
        Ok(())
    }

    fn spatial_range(&self, window: &Rect) -> Result<Vec<u64>, EngineError> {
        self.job(window, None)
    }

    fn st_range(&self, window: &Rect, t0: i64, t1: i64) -> Result<Vec<u64>, EngineError> {
        if !self.temporal {
            return Err(EngineError::Unsupported(
                "st_range (SpatialHadoop is spatial-only)",
            ));
        }
        self.job(window, Some((t0, t1)))
    }

    fn knn(&self, q: Point, k: usize) -> Result<Vec<u64>, EngineError> {
        // A k-NN MapReduce job: expanding window jobs, each paying the
        // startup cost — exactly why Hadoop k-NN is slow in Fig 13.
        let mut radius = 0.01;
        for _ in 0..12 {
            let w = Rect::new(q.x - radius, q.y - radius, q.x + radius, q.y + radius);
            let ids = self.job(&w, None)?;
            if ids.len() >= k {
                // Re-rank by true distance.
                let mut with_d: Vec<(f64, u64)> = Vec::with_capacity(ids.len());
                for cx in 0..GRID as u32 {
                    for cy in 0..GRID as u32 {
                        let Some(path) = self.partitions.get(&(cx, cy)) else {
                            continue;
                        };
                        let bytes =
                            std::fs::read(path).map_err(|e| EngineError::Io(e.to_string()))?;
                        for r in Self::decode(&bytes)? {
                            if ids.binary_search(&r.id).is_ok() {
                                with_d.push((just_geo::euclidean(&r.point, &q), r.id));
                            }
                        }
                    }
                }
                with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                // The window guarantees correctness only for hits within
                // `radius` of q; re-expand if the k-th is outside.
                if with_d.len() >= k && with_d[k - 1].0 <= radius {
                    return Ok(with_d.into_iter().take(k).map(|(_, id)| id).collect());
                }
            }
            radius *= 2.0;
        }
        // Fall back: one full-scan job ranking everything by distance
        // (what a real Hadoop k-NN job does when expansion fails).
        if !self.job_overhead.is_zero() {
            std::thread::sleep(self.job_overhead);
        }
        let mut with_d: Vec<(f64, u64)> = Vec::new();
        for path in self.partitions.values() {
            let bytes = std::fs::read(path).map_err(|e| EngineError::Io(e.to_string()))?;
            for r in Self::decode(&bytes)? {
                with_d.push((just_geo::euclidean(&r.point, &q), r.id));
            }
        }
        with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        Ok(with_d.into_iter().take(k).map(|(_, id)| id).collect())
    }

    fn memory_bytes(&self) -> usize {
        // Only the partition table is resident.
        self.partitions.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(name: &str, temporal: bool) -> HadoopSimEngine {
        let dir = std::env::temp_dir().join(format!(
            "just-hadoop-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        HadoopSimEngine::new(dir, Duration::ZERO, temporal)
    }

    fn recs(n: usize) -> Vec<StRecord> {
        (0..n)
            .map(|i| {
                StRecord::point(
                    i as u64,
                    Point::new(
                        116.0 + (i % 19) as f64 * 0.005,
                        39.0 + (i % 17) as f64 * 0.005,
                    ),
                    i as i64 * 60_000,
                    128,
                )
            })
            .collect()
    }

    #[test]
    fn range_matches_brute_force() {
        let records = recs(300);
        let mut e = engine("range", false);
        e.build(&records).unwrap();
        let w = Rect::new(116.01, 39.01, 116.05, 39.04);
        let got = e.spatial_range(&w).unwrap();
        let mut want: Vec<u64> = records
            .iter()
            .filter(|r| r.mbr.intersects(&w))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        std::fs::remove_dir_all(&e.dir).ok();
    }

    #[test]
    fn st_range_only_on_temporal_variant() {
        let records = recs(100);
        let mut spatial_only = engine("sth1", false);
        spatial_only.build(&records).unwrap();
        assert!(matches!(
            spatial_only.st_range(&just_geo::WORLD, 0, 1),
            Err(EngineError::Unsupported(_))
        ));
        let mut st = engine("sth2", true);
        st.build(&records).unwrap();
        let early = st.st_range(&just_geo::WORLD, 0, 10 * 60_000).unwrap();
        assert_eq!(early.len(), 11);
        std::fs::remove_dir_all(&spatial_only.dir).ok();
        std::fs::remove_dir_all(&st.dir).ok();
    }

    #[test]
    fn knn_finds_true_neighbours() {
        let records = recs(200);
        let mut e = engine("knn", false);
        e.build(&records).unwrap();
        let q = Point::new(116.02, 39.02);
        let got = e.knn(q, 5).unwrap();
        assert_eq!(got.len(), 5);
        let mut brute: Vec<(f64, u64)> = records
            .iter()
            .map(|r| (just_geo::euclidean(&r.point, &q), r.id))
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (g, (wd, _)) in got.iter().zip(brute.iter().take(5)) {
            let gd = just_geo::euclidean(&records[*g as usize].point, &q);
            assert!((gd - wd).abs() < 1e-12);
        }
        std::fs::remove_dir_all(&e.dir).ok();
    }

    #[test]
    fn job_overhead_is_paid_per_query() {
        let records = recs(50);
        let dir = std::env::temp_dir().join(format!("just-hadoop-overhead-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut e = HadoopSimEngine::new(dir.clone(), Duration::from_millis(30), false);
        e.build(&records).unwrap();
        let t0 = std::time::Instant::now();
        e.spatial_range(&Rect::new(116.0, 39.0, 116.01, 39.01))
            .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_footprint_is_tiny() {
        let records = recs(1000);
        let mut e = engine("mem", false);
        e.build(&records).unwrap();
        // Partition table only: far below the payload total (128 KB).
        assert!(e.memory_bytes() < 32 << 10);
        std::fs::remove_dir_all(&e.dir).ok();
    }
}
