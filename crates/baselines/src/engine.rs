//! The common interface all baseline engines implement, plus the shared
//! record type and memory-budget machinery.

use just_geo::{Point, Rect};

/// One spatio-temporal record as the baselines see it: an id, a point (or
/// MBR for extended data), a time span and the payload weight in bytes
/// (which drives memory-budget accounting — a trajectory row weighs
/// kilobytes, an order row a few dozen bytes).
#[derive(Debug, Clone)]
pub struct StRecord {
    /// Record id (index into the caller's dataset).
    pub id: u64,
    /// Representative point (for point data and k-NN).
    pub point: Point,
    /// Bounding rectangle (equals the point for point data).
    pub mbr: Rect,
    /// Start time (ms).
    pub t_min: i64,
    /// End time (ms).
    pub t_max: i64,
    /// Payload size in bytes (for memory accounting).
    pub payload_bytes: u32,
}

impl StRecord {
    /// A point record.
    pub fn point(id: u64, p: Point, t: i64, payload_bytes: u32) -> Self {
        StRecord {
            id,
            point: p,
            mbr: p.mbr(),
            t_min: t,
            t_max: t,
            payload_bytes,
        }
    }

    /// An extent record (trajectory MBR).
    pub fn extent(id: u64, mbr: Rect, t_min: i64, t_max: i64, payload_bytes: u32) -> Self {
        StRecord {
            id,
            point: mbr.center(),
            mbr,
            t_min,
            t_max,
            payload_bytes,
        }
    }

    /// Whether the record overlaps the time window.
    pub fn overlaps_time(&self, t0: i64, t1: i64) -> bool {
        self.t_max >= t0 && self.t_min <= t1
    }
}

/// What can go wrong building or querying a baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The dataset exceeds the configured memory budget — the in-memory
    /// ("Spark-based") engines fail this way on big inputs, as the paper
    /// observed.
    OutOfMemory {
        /// Bytes the build would need.
        required: usize,
        /// Configured budget.
        budget: usize,
    },
    /// The engine does not support the operation (Table VI).
    Unsupported(&'static str),
    /// Disk failure (Hadoop-style engines).
    Io(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::OutOfMemory { required, budget } => {
                write!(f, "out of memory: need {required} bytes, budget {budget}")
            }
            EngineError::Unsupported(op) => write!(f, "unsupported operation: {op}"),
            EngineError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// An optional cap on in-memory footprint.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryBudget {
    /// Maximum bytes; `None` = unlimited.
    pub bytes: Option<usize>,
}

impl MemoryBudget {
    /// Unlimited budget.
    pub fn unlimited() -> Self {
        MemoryBudget { bytes: None }
    }

    /// Budget of `mb` mebibytes.
    pub fn mib(mb: usize) -> Self {
        MemoryBudget {
            bytes: Some(mb << 20),
        }
    }

    /// Checks a build-time requirement.
    pub fn check(&self, required: usize) -> Result<(), EngineError> {
        match self.bytes {
            Some(budget) if required > budget => Err(EngineError::OutOfMemory { required, budget }),
            _ => Ok(()),
        }
    }
}

/// Architectural family, for reporting (Table I's "Category" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// In-memory cluster-computing style (Spark-based systems).
    InMemory,
    /// Disk-based MapReduce style (Hadoop-based systems).
    DiskMapReduce,
    /// Key-value store based (JUST, MD-HBase, BBoxDB).
    NoSql,
}

/// The query surface the paper evaluates (Table VI): spatial range,
/// spatio-temporal range, and k-NN.
pub trait SpatialEngine: Send + Sync {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Architectural family.
    fn family(&self) -> Family;

    /// Bulk-loads (and indexes) the dataset, replacing previous contents.
    fn build(&mut self, records: &[StRecord]) -> Result<(), EngineError>;

    /// Record ids whose geometry intersects the window.
    fn spatial_range(&self, window: &Rect) -> Result<Vec<u64>, EngineError>;

    /// Record ids intersecting the window during `[t0, t1]`; engines
    /// without temporal support return `Unsupported` (Table VI's "ST ×").
    fn st_range(&self, window: &Rect, t0: i64, t1: i64) -> Result<Vec<u64>, EngineError>;

    /// The `k` nearest records to `q` (Euclidean on representative
    /// points), nearest first.
    fn knn(&self, q: Point, k: usize) -> Result<Vec<u64>, EngineError>;

    /// Whether incremental inserts are supported (Table I "Data Update").
    fn supports_update(&self) -> bool {
        false
    }

    /// Incremental insert, where supported.
    fn insert(&mut self, _record: StRecord) -> Result<(), EngineError> {
        Err(EngineError::Unsupported("insert"))
    }

    /// Approximate resident memory in bytes.
    fn memory_bytes(&self) -> usize;
}

/// Estimated in-memory footprint of holding `records` resident (payload
/// plus per-record index overhead), shared by the in-memory engines.
pub fn resident_estimate(records: &[StRecord], overhead_per_record: usize) -> usize {
    records
        .iter()
        .map(|r| r.payload_bytes as usize + overhead_per_record)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_check() {
        let b = MemoryBudget::mib(1);
        assert!(b.check(512 << 10).is_ok());
        assert!(matches!(
            b.check(2 << 20),
            Err(EngineError::OutOfMemory { .. })
        ));
        assert!(MemoryBudget::unlimited().check(usize::MAX).is_ok());
    }

    #[test]
    fn record_time_overlap() {
        let r = StRecord::extent(1, Rect::new(0.0, 0.0, 1.0, 1.0), 100, 200, 64);
        assert!(r.overlaps_time(150, 300));
        assert!(r.overlaps_time(0, 100));
        assert!(!r.overlaps_time(201, 300));
        assert!(!r.overlaps_time(0, 99));
    }

    #[test]
    fn resident_estimate_scales_with_payload() {
        let small: Vec<StRecord> = (0..10)
            .map(|i| StRecord::point(i, Point::new(0.0, 0.0), 0, 32))
            .collect();
        let big: Vec<StRecord> = (0..10)
            .map(|i| StRecord::point(i, Point::new(0.0, 0.0), 0, 100_000))
            .collect();
        assert!(resident_estimate(&big, 64) > 100 * resident_estimate(&small, 64));
    }
}
