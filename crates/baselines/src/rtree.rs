//! The Simba-style baseline: an STR (Sort-Tile-Recursive) bulk-loaded
//! in-memory R-tree holding the whole dataset resident.

use crate::engine::{
    resident_estimate, EngineError, Family, MemoryBudget, SpatialEngine, StRecord,
};
use just_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const NODE_CAPACITY: usize = 16;

#[derive(Debug)]
enum Node {
    Leaf {
        mbr: Rect,
        entries: Vec<usize>, // indices into records
    },
    Inner {
        mbr: Rect,
        children: Vec<Node>,
    },
}

impl Node {
    fn mbr(&self) -> &Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => mbr,
        }
    }
}

/// In-memory STR R-tree engine (the Simba stand-in).
pub struct RTreeEngine {
    budget: MemoryBudget,
    records: Vec<StRecord>,
    root: Option<Node>,
}

impl RTreeEngine {
    /// Creates the engine with a memory budget.
    pub fn new(budget: MemoryBudget) -> Self {
        RTreeEngine {
            budget,
            records: Vec::new(),
            root: None,
        }
    }

    fn str_pack(&self, mut items: Vec<(usize, Rect)>) -> Node {
        if items.len() <= NODE_CAPACITY {
            let mut mbr = Rect::empty();
            for (_, r) in &items {
                mbr = mbr.union(r);
            }
            return Node::Leaf {
                mbr,
                entries: items.into_iter().map(|(i, _)| i).collect(),
            };
        }
        // STR: sort by x-centre, slice into vertical strips, sort each by
        // y-centre, pack leaves; then build upward by recursion on leaf
        // MBRs.
        let leaf_count = items.len().div_ceil(NODE_CAPACITY);
        let strips = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = items.len().div_ceil(strips);
        items.sort_by(|a, b| {
            a.1.center()
                .x
                .partial_cmp(&b.1.center().x)
                .unwrap_or(Ordering::Equal)
        });
        let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
        for strip in items.chunks_mut(per_strip.max(1)) {
            strip.sort_by(|a, b| {
                a.1.center()
                    .y
                    .partial_cmp(&b.1.center().y)
                    .unwrap_or(Ordering::Equal)
            });
            for group in strip.chunks(NODE_CAPACITY) {
                let mut mbr = Rect::empty();
                for (_, r) in group {
                    mbr = mbr.union(r);
                }
                leaves.push(Node::Leaf {
                    mbr,
                    entries: group.iter().map(|(i, _)| *i).collect(),
                });
            }
        }
        Self::build_upward(leaves)
    }

    fn build_upward(mut level: Vec<Node>) -> Node {
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            // Nodes arrive spatially clustered from STR; group in order.
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                let children: Vec<Node> = iter.by_ref().take(NODE_CAPACITY).collect();
                let mut mbr = Rect::empty();
                for c in &children {
                    mbr = mbr.union(c.mbr());
                }
                next.push(Node::Inner { mbr, children });
            }
            level = next;
        }
        level.pop().unwrap_or(Node::Leaf {
            mbr: Rect::empty(),
            entries: Vec::new(),
        })
    }

    fn search<'a>(&'a self, node: &'a Node, window: &Rect, out: &mut Vec<u64>) {
        match node {
            Node::Leaf { mbr, entries } => {
                if !mbr.intersects(window) {
                    return;
                }
                for &i in entries {
                    if self.records[i].mbr.intersects(window) {
                        out.push(self.records[i].id);
                    }
                }
            }
            Node::Inner { mbr, children } => {
                if !mbr.intersects(window) {
                    return;
                }
                for c in children {
                    self.search(c, window, out);
                }
            }
        }
    }
}

impl SpatialEngine for RTreeEngine {
    fn name(&self) -> &'static str {
        "rtree-mem (Simba-like)"
    }

    fn family(&self) -> Family {
        Family::InMemory
    }

    fn build(&mut self, records: &[StRecord]) -> Result<(), EngineError> {
        // In-memory engines must hold payloads + index nodes resident.
        self.budget.check(resident_estimate(records, 96))?;
        self.records = records.to_vec();
        let items: Vec<(usize, Rect)> = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.mbr))
            .collect();
        self.root = Some(self.str_pack(items));
        Ok(())
    }

    fn spatial_range(&self, window: &Rect) -> Result<Vec<u64>, EngineError> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            self.search(root, window, &mut out);
        }
        Ok(out)
    }

    fn st_range(&self, window: &Rect, t0: i64, t1: i64) -> Result<Vec<u64>, EngineError> {
        // Simba is spatial-only (Table VI): temporal filtering would be a
        // full post-scan in the real system; reproduce that.
        let _ = (window, t0, t1);
        Err(EngineError::Unsupported("st_range (Simba is spatial-only)"))
    }

    fn knn(&self, q: Point, k: usize) -> Result<Vec<u64>, EngineError> {
        // Best-first search over the tree.
        struct Item<'a> {
            dist: f64,
            node: Option<&'a Node>,
            record: Option<usize>,
        }
        impl PartialEq for Item<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl Eq for Item<'_> {}
        impl Ord for Item<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .unwrap_or(Ordering::Equal)
            }
        }
        impl PartialOrd for Item<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut heap = BinaryHeap::new();
        if let Some(root) = &self.root {
            heap.push(Item {
                dist: root.mbr().min_distance(&q),
                node: Some(root),
                record: None,
            });
        }
        let mut out = Vec::with_capacity(k);
        while let Some(item) = heap.pop() {
            if let Some(rec) = item.record {
                out.push(self.records[rec].id);
                if out.len() == k {
                    break;
                }
                continue;
            }
            match item.node.unwrap() {
                Node::Leaf { entries, .. } => {
                    for &i in entries {
                        heap.push(Item {
                            dist: just_geo::euclidean(&self.records[i].point, &q),
                            node: None,
                            record: Some(i),
                        });
                    }
                }
                Node::Inner { children, .. } => {
                    for c in children {
                        heap.push(Item {
                            dist: c.mbr().min_distance(&q),
                            node: Some(c),
                            record: None,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    fn memory_bytes(&self) -> usize {
        resident_estimate(&self.records, 96)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<StRecord> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                out.push(StRecord::point(
                    (i * n + j) as u64,
                    Point::new(116.0 + i as f64 * 0.01, 39.0 + j as f64 * 0.01),
                    ((i + j) as i64) * 1000,
                    64,
                ));
            }
        }
        out
    }

    #[test]
    fn range_query_matches_brute_force() {
        let recs = grid(20);
        let mut e = RTreeEngine::new(MemoryBudget::unlimited());
        e.build(&recs).unwrap();
        let w = Rect::new(116.02, 39.02, 116.08, 39.05);
        let mut got = e.spatial_range(&w).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = recs
            .iter()
            .filter(|r| r.mbr.intersects(&w))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn knn_matches_brute_force() {
        let recs = grid(15);
        let mut e = RTreeEngine::new(MemoryBudget::unlimited());
        e.build(&recs).unwrap();
        let q = Point::new(116.071, 39.033);
        let got = e.knn(q, 10).unwrap();
        let mut brute: Vec<(f64, u64)> = recs
            .iter()
            .map(|r| (just_geo::euclidean(&r.point, &q), r.id))
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let want_dists: Vec<f64> = brute.iter().take(10).map(|(d, _)| *d).collect();
        for (g, wd) in got.iter().zip(&want_dists) {
            let gd = just_geo::euclidean(&recs[*g as usize].point, &q);
            assert!((gd - wd).abs() < 1e-12);
        }
    }

    #[test]
    fn oom_on_big_payloads() {
        let recs: Vec<StRecord> = (0..100)
            .map(|i| StRecord::point(i, Point::new(0.0, 0.0), 0, 1 << 20))
            .collect();
        let mut e = RTreeEngine::new(MemoryBudget::mib(10));
        assert!(matches!(
            e.build(&recs),
            Err(EngineError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn st_range_unsupported_and_no_updates() {
        let mut e = RTreeEngine::new(MemoryBudget::unlimited());
        e.build(&grid(3)).unwrap();
        assert!(matches!(
            e.st_range(&Rect::new(0.0, 0.0, 1.0, 1.0), 0, 1),
            Err(EngineError::Unsupported(_))
        ));
        assert!(!e.supports_update());
    }

    #[test]
    fn empty_build() {
        let mut e = RTreeEngine::new(MemoryBudget::unlimited());
        e.build(&[]).unwrap();
        assert!(e.spatial_range(&just_geo::WORLD).unwrap().is_empty());
        assert!(e.knn(Point::new(0.0, 0.0), 3).unwrap().is_empty());
    }
}
