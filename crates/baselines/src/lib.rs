//! Baseline spatial engines for the JUST evaluation (Section VIII).
//!
//! The paper compares JUST against six systems; since none exist in Rust,
//! each *family* is reproduced by an engine that shares its architecture:
//!
//! | Paper system(s) | Engine here | Architecture reproduced |
//! |---|---|---|
//! | Simba | [`RTreeEngine`] | STR-bulk-loaded in-memory R-tree; whole dataset resident; no updates |
//! | GeoSpark / SpatialSpark | [`GridEngine`] | uniform in-memory grid partitioning |
//! | LocationSpark | [`QuadTreeEngine`] | in-memory quadtree with insert support |
//! | MD-HBase | [`KdTreeEngine`] | k-d tree over points |
//! | SpatialHadoop / ST-Hadoop | [`HadoopSimEngine`] | disk-partitioned files, whole-partition scans, per-job startup cost |
//!
//! All engines implement [`SpatialEngine`], carry a configurable
//! [`MemoryBudget`], and fail with [`EngineError::OutOfMemory`] when a
//! dataset exceeds it — reproducing the paper's observed OOMs ("Simba
//! runs out of memory when the data size of Traj is over 20%").

#![deny(missing_docs)]

mod engine;
mod grid;
mod hadoop;
mod kdtree;
mod quadtree;
mod rtree;

pub use engine::{EngineError, Family, MemoryBudget, SpatialEngine, StRecord};
pub use grid::GridEngine;
pub use hadoop::HadoopSimEngine;
pub use kdtree::KdTreeEngine;
pub use quadtree::QuadTreeEngine;
pub use rtree::RTreeEngine;
