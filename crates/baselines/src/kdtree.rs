//! The MD-HBase-style baseline: a k-d tree over points (MD-HBase's
//! KD-tree index variant), built in memory.

use crate::engine::{
    resident_estimate, EngineError, Family, MemoryBudget, SpatialEngine, StRecord,
};
use just_geo::{Point, Rect};

#[derive(Debug)]
struct KdNode {
    /// Index into records.
    idx: usize,
    /// Split axis: 0 = x, 1 = y.
    axis: u8,
    left: Option<Box<KdNode>>,
    right: Option<Box<KdNode>>,
}

/// K-d tree engine (the MD-HBase stand-in).
pub struct KdTreeEngine {
    budget: MemoryBudget,
    records: Vec<StRecord>,
    root: Option<Box<KdNode>>,
}

impl KdTreeEngine {
    /// Creates the engine.
    pub fn new(budget: MemoryBudget) -> Self {
        KdTreeEngine {
            budget,
            records: Vec::new(),
            root: None,
        }
    }

    fn build_node(records: &[StRecord], mut items: Vec<usize>, depth: u32) -> Option<Box<KdNode>> {
        if items.is_empty() {
            return None;
        }
        let axis = (depth % 2) as u8;
        items.sort_by(|&a, &b| {
            let (pa, pb) = (records[a].point, records[b].point);
            let (ka, kb) = if axis == 0 {
                (pa.x, pb.x)
            } else {
                (pa.y, pb.y)
            };
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mid = items.len() / 2;
        let right_items = items.split_off(mid + 1);
        let idx = items.pop().expect("mid exists");
        Some(Box::new(KdNode {
            idx,
            axis,
            left: Self::build_node(records, items, depth + 1),
            right: Self::build_node(records, right_items, depth + 1),
        }))
    }

    fn range_search(&self, node: &Option<Box<KdNode>>, window: &Rect, out: &mut Vec<u64>) {
        let Some(n) = node else { return };
        let p = self.records[n.idx].point;
        if window.contains_point(&p) {
            out.push(self.records[n.idx].id);
        }
        let (key, lo, hi) = if n.axis == 0 {
            (p.x, window.min_x, window.max_x)
        } else {
            (p.y, window.min_y, window.max_y)
        };
        if lo <= key {
            self.range_search(&n.left, window, out);
        }
        if hi >= key {
            self.range_search(&n.right, window, out);
        }
    }

    fn knn_search(
        &self,
        node: &Option<Box<KdNode>>,
        q: &Point,
        k: usize,
        best: &mut Vec<(f64, u64)>,
    ) {
        let Some(n) = node else { return };
        let p = self.records[n.idx].point;
        let d = just_geo::euclidean(&p, q);
        best.push((d, self.records[n.idx].id));
        best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        best.truncate(k);
        let (key, qk) = if n.axis == 0 { (p.x, q.x) } else { (p.y, q.y) };
        let (near, far) = if qk <= key {
            (&n.left, &n.right)
        } else {
            (&n.right, &n.left)
        };
        self.knn_search(near, q, k, best);
        // Explore the far side only if the splitting plane is closer than
        // the current k-th best.
        let plane_dist = (qk - key).abs();
        if best.len() < k || plane_dist <= best.last().map(|(d, _)| *d).unwrap_or(f64::INFINITY) {
            self.knn_search(far, q, k, best);
        }
    }
}

impl SpatialEngine for KdTreeEngine {
    fn name(&self) -> &'static str {
        "kdtree-mem (MD-HBase-like)"
    }

    fn family(&self) -> Family {
        Family::NoSql
    }

    fn build(&mut self, records: &[StRecord]) -> Result<(), EngineError> {
        self.budget.check(resident_estimate(records, 64))?;
        self.records = records.to_vec();
        let items: Vec<usize> = (0..self.records.len()).collect();
        self.root = Self::build_node(&self.records, items, 0).map(|b| b as Box<KdNode>);
        Ok(())
    }

    fn spatial_range(&self, window: &Rect) -> Result<Vec<u64>, EngineError> {
        let mut out = Vec::new();
        self.range_search(&self.root, window, &mut out);
        Ok(out)
    }

    fn st_range(&self, _window: &Rect, _t0: i64, _t1: i64) -> Result<Vec<u64>, EngineError> {
        Err(EngineError::Unsupported(
            "st_range (MD-HBase is spatial-only)",
        ))
    }

    fn knn(&self, q: Point, k: usize) -> Result<Vec<u64>, EngineError> {
        let mut best = Vec::new();
        self.knn_search(&self.root, &q, k, &mut best);
        Ok(best.into_iter().map(|(_, id)| id).collect())
    }

    fn supports_update(&self) -> bool {
        true // MD-HBase is a store: inserts are cheap.
    }

    fn insert(&mut self, record: StRecord) -> Result<(), EngineError> {
        // Unbalanced insert, as MD-HBase's online splits would do.
        self.budget
            .check(self.memory_bytes() + record.payload_bytes as usize + 64)?;
        self.records.push(record);
        let idx = self.records.len() - 1;
        let p = self.records[idx].point;
        let mut node = &mut self.root;
        let mut depth = 0u32;
        loop {
            match node {
                None => {
                    *node = Some(Box::new(KdNode {
                        idx,
                        axis: (depth % 2) as u8,
                        left: None,
                        right: None,
                    }));
                    return Ok(());
                }
                Some(n) => {
                    let np = self.records[n.idx].point;
                    let (key, qk) = if n.axis == 0 {
                        (np.x, p.x)
                    } else {
                        (np.y, p.y)
                    };
                    node = if qk <= key { &mut n.left } else { &mut n.right };
                    depth += 1;
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        resident_estimate(&self.records, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: usize) -> Vec<StRecord> {
        (0..n)
            .map(|i| {
                // Deterministic scatter.
                let x = 116.0 + ((i * 7919) % 1000) as f64 * 1e-4;
                let y = 39.0 + ((i * 104729) % 1000) as f64 * 1e-4;
                StRecord::point(i as u64, Point::new(x, y), i as i64, 64)
            })
            .collect()
    }

    #[test]
    fn range_matches_brute_force() {
        let records = recs(500);
        let mut e = KdTreeEngine::new(MemoryBudget::unlimited());
        e.build(&records).unwrap();
        let w = Rect::new(116.02, 39.02, 116.06, 39.07);
        let mut got = e.spatial_range(&w).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = records
            .iter()
            .filter(|r| w.contains_point(&r.point))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn knn_matches_brute_force() {
        let records = recs(300);
        let mut e = KdTreeEngine::new(MemoryBudget::unlimited());
        e.build(&records).unwrap();
        let q = Point::new(116.05, 39.05);
        for k in [1, 5, 20] {
            let got = e.knn(q, k).unwrap();
            assert_eq!(got.len(), k);
            let mut brute: Vec<(f64, u64)> = records
                .iter()
                .map(|r| (just_geo::euclidean(&r.point, &q), r.id))
                .collect();
            brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (g, (wd, _)) in got.iter().zip(brute.iter().take(k)) {
                let gd = just_geo::euclidean(&records[*g as usize].point, &q);
                assert!((gd - wd).abs() < 1e-12, "k={k}");
            }
        }
    }

    #[test]
    fn insert_after_build() {
        let mut e = KdTreeEngine::new(MemoryBudget::unlimited());
        e.build(&recs(50)).unwrap();
        e.insert(StRecord::point(777, Point::new(120.0, 45.0), 0, 64))
            .unwrap();
        let got = e
            .spatial_range(&Rect::new(119.9, 44.9, 120.1, 45.1))
            .unwrap();
        assert_eq!(got, vec![777]);
    }
}
