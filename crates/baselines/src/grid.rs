//! The GeoSpark/SpatialSpark-style baseline: uniform grid partitioning
//! held in memory. "GeoSpark lacks of a global index" — each query tests
//! every overlapping cell's contents.

use crate::engine::{
    resident_estimate, EngineError, Family, MemoryBudget, SpatialEngine, StRecord,
};
use just_geo::{Point, Rect};
use std::collections::HashMap;

/// Uniform in-memory grid engine.
pub struct GridEngine {
    budget: MemoryBudget,
    cells_per_side: usize,
    extent: Rect,
    cells: HashMap<(u32, u32), Vec<usize>>,
    records: Vec<StRecord>,
}

impl GridEngine {
    /// Creates the engine; `cells_per_side` controls partition granularity
    /// (GeoSpark's fixed grid).
    pub fn new(budget: MemoryBudget, cells_per_side: usize) -> Self {
        GridEngine {
            budget,
            cells_per_side: cells_per_side.max(1),
            extent: just_geo::WORLD,
            cells: HashMap::new(),
            records: Vec::new(),
        }
    }

    fn cell_of(&self, x: f64, y: f64) -> (u32, u32) {
        let n = self.cells_per_side as f64;
        let cx = ((x - self.extent.min_x) / self.extent.width().max(1e-12) * n).clamp(0.0, n - 1.0)
            as u32;
        let cy = ((y - self.extent.min_y) / self.extent.height().max(1e-12) * n).clamp(0.0, n - 1.0)
            as u32;
        (cx, cy)
    }

    fn cells_overlapping(&self, r: &Rect) -> Vec<(u32, u32)> {
        let (x0, y0) = self.cell_of(r.min_x, r.min_y);
        let (x1, y1) = self.cell_of(r.max_x, r.max_y);
        let mut out = Vec::new();
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                out.push((cx, cy));
            }
        }
        out
    }
}

impl SpatialEngine for GridEngine {
    fn name(&self) -> &'static str {
        "grid-mem (GeoSpark-like)"
    }

    fn family(&self) -> Family {
        Family::InMemory
    }

    fn build(&mut self, records: &[StRecord]) -> Result<(), EngineError> {
        self.budget.check(resident_estimate(records, 48))?;
        self.records = records.to_vec();
        // Fit the grid to the data extent for load balance.
        let mut extent = Rect::empty();
        for r in &self.records {
            extent = extent.union(&r.mbr);
        }
        self.extent = if extent.is_empty() {
            just_geo::WORLD
        } else {
            extent
        };
        self.cells.clear();
        for (i, r) in self.records.iter().enumerate() {
            // Extents register in every overlapping cell.
            let (x0, y0) = self.cell_of(r.mbr.min_x, r.mbr.min_y);
            let (x1, y1) = self.cell_of(r.mbr.max_x, r.mbr.max_y);
            for cx in x0..=x1 {
                for cy in y0..=y1 {
                    self.cells.entry((cx, cy)).or_default().push(i);
                }
            }
        }
        Ok(())
    }

    fn spatial_range(&self, window: &Rect) -> Result<Vec<u64>, EngineError> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for cell in self.cells_overlapping(window) {
            if let Some(bucket) = self.cells.get(&cell) {
                for &i in bucket {
                    if seen.insert(i) && self.records[i].mbr.intersects(window) {
                        out.push(self.records[i].id);
                    }
                }
            }
        }
        Ok(out)
    }

    fn st_range(&self, _window: &Rect, _t0: i64, _t1: i64) -> Result<Vec<u64>, EngineError> {
        Err(EngineError::Unsupported(
            "st_range (GeoSpark is spatial-only)",
        ))
    }

    fn knn(&self, q: Point, k: usize) -> Result<Vec<u64>, EngineError> {
        // Expanding ring search over cells.
        if self.records.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        let (qx, qy) = self.cell_of(q.x, q.y);
        let n = self.cells_per_side as i64;
        let mut best: Vec<(f64, u64)> = Vec::new();
        let cell_w = self.extent.width() / self.cells_per_side as f64;
        let cell_h = self.extent.height() / self.cells_per_side as f64;
        let cell_diag = (cell_w * cell_w + cell_h * cell_h).sqrt();
        for ring in 0..=n {
            let mut any_cell = false;
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    if dx.abs() != ring && dy.abs() != ring {
                        continue; // interior already visited
                    }
                    let cx = qx as i64 + dx;
                    let cy = qy as i64 + dy;
                    if cx < 0 || cy < 0 || cx >= n || cy >= n {
                        continue;
                    }
                    any_cell = true;
                    if let Some(bucket) = self.cells.get(&(cx as u32, cy as u32)) {
                        for &i in bucket {
                            let d = just_geo::euclidean(&self.records[i].point, &q);
                            best.push((d, self.records[i].id));
                        }
                    }
                }
            }
            // Enough candidates and the next ring cannot beat the k-th
            // best: stop.
            if best.len() >= k {
                best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                best.dedup_by_key(|(_, id)| *id);
                if best.len() >= k {
                    let kth = best[k - 1].0;
                    let ring_min_dist = (ring as f64) * cell_w.min(cell_h) - cell_diag;
                    if ring_min_dist > kth {
                        break;
                    }
                }
            }
            if !any_cell && ring > 0 {
                break;
            }
        }
        best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        best.dedup_by_key(|(_, id)| *id);
        Ok(best.into_iter().take(k).map(|(_, id)| id).collect())
    }

    fn memory_bytes(&self) -> usize {
        resident_estimate(&self.records, 48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Vec<StRecord> {
        (0..n)
            .map(|i| {
                StRecord::point(
                    i as u64,
                    Point::new(
                        116.0 + (i % 31) as f64 * 0.003,
                        39.0 + (i % 37) as f64 * 0.003,
                    ),
                    i as i64 * 1000,
                    64,
                )
            })
            .collect()
    }

    #[test]
    fn range_matches_brute_force() {
        let recs = cluster(500);
        let mut e = GridEngine::new(MemoryBudget::unlimited(), 32);
        e.build(&recs).unwrap();
        let w = Rect::new(116.01, 39.01, 116.05, 39.06);
        let mut got = e.spatial_range(&w).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = recs
            .iter()
            .filter(|r| r.mbr.intersects(&w))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_brute_force() {
        let recs = cluster(300);
        let mut e = GridEngine::new(MemoryBudget::unlimited(), 16);
        e.build(&recs).unwrap();
        let q = Point::new(116.04, 39.05);
        let got = e.knn(q, 7).unwrap();
        assert_eq!(got.len(), 7);
        let mut brute: Vec<(f64, u64)> = recs
            .iter()
            .map(|r| (just_geo::euclidean(&r.point, &q), r.id))
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (g, (wd, _)) in got.iter().zip(brute.iter().take(7)) {
            let gd = just_geo::euclidean(&recs[*g as usize].point, &q);
            assert!((gd - wd).abs() < 1e-12);
        }
    }

    #[test]
    fn extents_found_from_any_overlapping_cell() {
        let mut recs = cluster(50);
        recs.push(StRecord::extent(
            999,
            Rect::new(116.0, 39.0, 116.09, 39.1),
            0,
            10,
            256,
        ));
        let mut e = GridEngine::new(MemoryBudget::unlimited(), 16);
        e.build(&recs).unwrap();
        let w = Rect::new(116.08, 39.09, 116.085, 39.095);
        let got = e.spatial_range(&w).unwrap();
        assert!(got.contains(&999));
    }

    #[test]
    fn oom_respected() {
        let recs: Vec<StRecord> = (0..10)
            .map(|i| StRecord::point(i, Point::new(0.0, 0.0), 0, 1 << 20))
            .collect();
        let mut e = GridEngine::new(MemoryBudget::mib(1), 8);
        assert!(matches!(
            e.build(&recs),
            Err(EngineError::OutOfMemory { .. })
        ));
    }
}
