//! Randomized equivalence tests: every baseline engine answers range and
//! k-NN queries identically to brute force (so benchmark comparisons
//! measure speed, not correctness differences). Deterministically seeded
//! (the offline stand-in for proptest).

use just_baselines::*;
use just_geo::{Point, Rect};
use just_obs::Rng;
use std::time::Duration;

const CASES: u64 = 24;

fn rand_records(rng: &mut Rng) -> Vec<StRecord> {
    let n = rng.gen_range(1usize..150);
    (0..n)
        .map(|i| {
            let x = rng.gen_range(100.0f64..130.0);
            let y = rng.gen_range(20.0f64..50.0);
            let t = rng.gen_range(0i64..1_000_000);
            StRecord::point(i as u64, Point::new(x, y), t, 64)
        })
        .collect()
}

fn engine_set(tag: &str) -> (Vec<Box<dyn SpatialEngine>>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "just-bl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let engines: Vec<Box<dyn SpatialEngine>> = vec![
        Box::new(RTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(GridEngine::new(MemoryBudget::unlimited(), 16)),
        Box::new(QuadTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(KdTreeEngine::new(MemoryBudget::unlimited())),
        Box::new(HadoopSimEngine::new(dir.clone(), Duration::ZERO, true)),
    ];
    (engines, dir)
}

#[test]
fn all_engines_agree_on_range_queries() {
    let mut rng = Rng::seed_from_u64(0x626c_0001);
    for case in 0..CASES {
        let records = rand_records(&mut rng);
        let qx = rng.gen_range(100.0f64..129.0);
        let qy = rng.gen_range(20.0f64..49.0);
        let qs = rng.gen_range(0.5f64..8.0);
        let window = Rect::new(qx, qy, qx + qs, qy + qs);
        let mut want: Vec<u64> = records
            .iter()
            .filter(|r| r.mbr.intersects(&window))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();

        let (mut engines, dir) = engine_set("eq");
        for e in &mut engines {
            e.build(&records).unwrap();
            let mut got = e.spatial_range(&window).unwrap();
            got.sort_unstable();
            assert_eq!(got, want, "case {case}: {} range mismatch", e.name());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn all_engines_agree_on_knn_distances() {
    let mut rng = Rng::seed_from_u64(0x626c_0002);
    for case in 0..CASES {
        let records = rand_records(&mut rng);
        let q = Point::new(rng.gen_range(100.0f64..130.0), rng.gen_range(20.0f64..50.0));
        let k = rng.gen_range(1usize..20);
        let mut brute: Vec<f64> = records
            .iter()
            .map(|r| just_geo::euclidean(&r.point, &q))
            .collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want: Vec<f64> = brute.into_iter().take(k).collect();

        let (mut engines, dir) = engine_set("knn");
        for e in &mut engines {
            e.build(&records).unwrap();
            let got = e.knn(q, k).unwrap();
            assert_eq!(got.len(), want.len(), "case {case}: {} knn count", e.name());
            for (id, wd) in got.iter().zip(&want) {
                let rec = records.iter().find(|r| r.id == *id).unwrap();
                let gd = just_geo::euclidean(&rec.point, &q);
                assert!(
                    (gd - wd).abs() < 1e-9,
                    "case {case}: {}: {gd} vs {wd}",
                    e.name()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
