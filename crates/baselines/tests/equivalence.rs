//! Property test: every baseline engine answers range and k-NN queries
//! identically to brute force (so benchmark comparisons measure speed,
//! not correctness differences).

use just_baselines::*;
use just_geo::{Point, Rect};
use proptest::prelude::*;
use std::time::Duration;

fn arb_records() -> impl Strategy<Value = Vec<StRecord>> {
    proptest::collection::vec(
        (100.0f64..130.0, 20.0f64..50.0, 0i64..1_000_000),
        1..150,
    )
    .prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y, t))| StRecord::point(i as u64, Point::new(x, y), t, 64))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree_on_range_queries(
        records in arb_records(),
        qx in 100.0f64..129.0,
        qy in 20.0f64..49.0,
        qs in 0.5f64..8.0,
    ) {
        let window = Rect::new(qx, qy, qx + qs, qy + qs);
        let mut want: Vec<u64> = records
            .iter()
            .filter(|r| r.mbr.intersects(&window))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();

        let dir = std::env::temp_dir().join(format!(
            "just-bl-eq-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();

        let mut engines: Vec<Box<dyn SpatialEngine>> = vec![
            Box::new(RTreeEngine::new(MemoryBudget::unlimited())),
            Box::new(GridEngine::new(MemoryBudget::unlimited(), 16)),
            Box::new(QuadTreeEngine::new(MemoryBudget::unlimited())),
            Box::new(KdTreeEngine::new(MemoryBudget::unlimited())),
            Box::new(HadoopSimEngine::new(dir.clone(), Duration::ZERO, true)),
        ];
        for e in &mut engines {
            e.build(&records).unwrap();
            let mut got = e.spatial_range(&window).unwrap();
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "{} range mismatch", e.name());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_engines_agree_on_knn_distances(
        records in arb_records(),
        qx in 100.0f64..130.0,
        qy in 20.0f64..50.0,
        k in 1usize..20,
    ) {
        let q = Point::new(qx, qy);
        let mut brute: Vec<f64> = records
            .iter()
            .map(|r| just_geo::euclidean(&r.point, &q))
            .collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want: Vec<f64> = brute.into_iter().take(k).collect();

        let dir = std::env::temp_dir().join(format!(
            "just-bl-knn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();

        let mut engines: Vec<Box<dyn SpatialEngine>> = vec![
            Box::new(RTreeEngine::new(MemoryBudget::unlimited())),
            Box::new(GridEngine::new(MemoryBudget::unlimited(), 16)),
            Box::new(QuadTreeEngine::new(MemoryBudget::unlimited())),
            Box::new(KdTreeEngine::new(MemoryBudget::unlimited())),
            Box::new(HadoopSimEngine::new(dir.clone(), Duration::ZERO, true)),
        ];
        for e in &mut engines {
            e.build(&records).unwrap();
            let got = e.knn(q, k).unwrap();
            prop_assert_eq!(got.len(), want.len(), "{} knn count", e.name());
            for (id, wd) in got.iter().zip(&want) {
                let rec = records.iter().find(|r| r.id == *id).unwrap();
                let gd = just_geo::euclidean(&rec.point, &q);
                prop_assert!((gd - wd).abs() < 1e-9, "{}: {gd} vs {wd}", e.name());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
