//! A lock-lean ring-buffer event log for structured engine events.
//!
//! Metrics answer "how much"; the event log answers "what happened":
//! memtable flushes, compactions, slow queries, killed queries, server
//! request failures. It is fixed-capacity and overwrite-oldest, so it is
//! safe to leave on forever — an idle engine costs nothing, a busy one
//! keeps the most recent window.
//!
//! # Concurrency design
//!
//! Writers never contend on a shared lock. [`EventLog::emit`] claims a
//! globally unique sequence number with one relaxed `fetch_add`, then
//! locks *only* the slot `seq % capacity` to store the event. Two
//! writers collide on a slot lock only when they are a full capacity
//! apart — i.e. the ring wrapped between their claims — so under any
//! realistic load the emit path is one atomic plus one uncontended
//! mutex. Readers ([`EventLog::recent`]) walk back from the latest
//! claimed sequence and keep a slot only if the stored event's sequence
//! matches the one expected at that position, which filters out slots a
//! lapped writer has already overwritten (or not yet written): the
//! result is always a consistent newest-first view, never a torn one.

use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// One structured engine event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Globally unique, monotonically increasing sequence number.
    pub seq: u64,
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Dotted event kind, `area.what` (e.g. `region.flush`,
    /// `query.slow`, `query.killed`, `server.request_error`).
    pub kind: String,
    /// Human-readable detail line (key=value pairs by convention).
    pub detail: String,
}

/// A fixed-capacity, overwrite-oldest log of [`Event`]s.
#[derive(Debug)]
pub struct EventLog {
    next_seq: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
}

/// Capacity of the process-global log: enough to hold minutes of flush/
/// compaction/slow-query traffic while staying a few hundred KB even
/// with verbose detail strings.
const GLOBAL_CAPACITY: usize = 1024;

impl EventLog {
    /// An empty log holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventLog {
            next_seq: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Appends one event, overwriting the oldest if full. Returns the
    /// event's sequence number.
    pub fn emit(&self, kind: &str, detail: impl Into<String>) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock() = Some(Event {
            seq,
            ts_ms: now_ms(),
            kind: kind.to_string(),
            detail: detail.into(),
        });
        seq
    }

    /// The most recent events, newest first, at most `limit`.
    pub fn recent(&self, limit: usize) -> Vec<Event> {
        let cap = self.slots.len() as u64;
        let next = self.next_seq.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(limit.min(next as usize));
        let oldest = next.saturating_sub(cap);
        let mut seq = next;
        while seq > oldest && out.len() < limit {
            seq -= 1;
            let slot = (seq % cap) as usize;
            let guard = self.slots[slot].lock();
            // A mismatched sequence means a concurrent writer lapped
            // this slot (or hasn't filled it yet); skip, don't tear.
            if let Some(e) = guard.as_ref() {
                if e.seq == seq {
                    out.push(e.clone());
                }
            }
        }
        out
    }

    /// Sequence number the next [`EventLog::emit`] will claim (equals
    /// the total number of events ever emitted).
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// The process-global event log. All engine layers emit here; `SHOW
/// EVENTS` and the slow-query log read from it.
pub fn global() -> &'static EventLog {
    static GLOBAL: OnceLock<EventLog> = OnceLock::new();
    GLOBAL.get_or_init(|| EventLog::with_capacity(GLOBAL_CAPACITY))
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn emit_and_recent_newest_first() {
        let log = EventLog::with_capacity(8);
        for i in 0..5 {
            log.emit("test.tick", format!("i={i}"));
        }
        let got = log.recent(3);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].seq, 4);
        assert_eq!(got[0].detail, "i=4");
        assert_eq!(got[2].seq, 2);
        assert!(got.windows(2).all(|w| w[0].seq > w[1].seq));
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let log = EventLog::with_capacity(4);
        for i in 0..10 {
            log.emit("test.tick", format!("i={i}"));
        }
        let got = log.recent(100);
        assert_eq!(got.len(), 4, "capacity bounds retention");
        let seqs: Vec<u64> = got.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![9, 8, 7, 6]);
        assert_eq!(log.next_seq(), 10);
    }

    #[test]
    fn recent_on_empty_is_empty() {
        let log = EventLog::with_capacity(4);
        assert!(log.recent(10).is_empty());
        assert_eq!(log.next_seq(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let log = EventLog::with_capacity(0);
        log.emit("test.tick", "x");
        assert_eq!(log.capacity(), 1);
        assert_eq!(log.recent(10).len(), 1);
    }

    /// The satellite concurrency test: N writers hammer the ring; the
    /// reader must see, in every slot, an event whose sequence is
    /// congruent to the slot index mod capacity (i.e. slots never hold
    /// torn or misplaced events), and the claimed-sequence total must be
    /// exactly the number of emits.
    #[test]
    fn concurrent_writers_keep_slots_gap_free() {
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 500;
        const CAP: usize = 64;
        let log = Arc::new(EventLog::with_capacity(CAP));
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    log.emit("test.concurrent", format!("w={w} i={i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = log.next_seq();
        assert_eq!(total, WRITERS as u64 * PER_WRITER);
        // Gap-free per slot: every slot holds an untorn event whose
        // sequence is congruent to the slot index mod capacity. (A
        // writer descheduled across a full lap may leave an *old* seq in
        // its slot, but never a misplaced or torn one.)
        for (slot, cell) in log.slots.iter().enumerate() {
            let guard = cell.lock();
            let e = guard.as_ref().expect("every slot written");
            assert_eq!(e.seq % CAP as u64, slot as u64, "slot {slot}");
            assert!(e.seq < total);
            assert!(e.detail.starts_with("w="), "torn detail: {:?}", e.detail);
        }
        // The reader view is strictly descending with no duplicates.
        let got = log.recent(CAP);
        assert!(!got.is_empty());
        assert!(got[0].seq < total);
        assert!(got.windows(2).all(|w| w[0].seq > w[1].seq));
    }
}
