//! `just-obs` — the observability substrate for the JUST engine.
//!
//! Every performance claim in the JUST paper (ICDE 2020, Section VI) is an
//! IO/latency argument, so the engine needs to *see itself*: where a query
//! spends time, which operator produced the IO, how selective an index read
//! was. This crate provides that layer for the whole workspace:
//!
//! * [`trace`] — a lightweight span tracer. A [`trace::Trace`] is an arena of
//!   spans forming a tree; each span carries monotonic wall time, an output
//!   row count, and arbitrary named `u64` attributes (used by the executor to
//!   attach kvstore IO deltas). `Trace::render()` pretty-prints the tree, and
//!   `EXPLAIN ANALYZE` in JustQL is rendered from it.
//! * [`metrics`] — a process-wide registry of named counters, gauges, and
//!   log-scale latency histograms (p50/p90/p95/p99) with Prometheus-style
//!   text exposition via [`metrics::Registry::render_text`]. The kvstore,
//!   storage, and core crates record scan latency, memtable flushes,
//!   compactions, block-cache hit ratios, and index selectivity here.
//! * [`events`] — a lock-lean, fixed-capacity, overwrite-oldest ring-buffer
//!   **event log** for structured engine events (flushes, compactions, slow
//!   queries, killed queries, request errors). Emitting is one relaxed
//!   atomic plus one uncontended per-slot mutex; `SHOW EVENTS` and the
//!   slow-query log read from [`events::global`].
//! * [`sync`] — `Mutex`/`RwLock` shims over `std::sync` with a
//!   guard-returning (non-`Result`) API, recovering from poisoning. These
//!   keep lock call sites terse across the workspace without an external
//!   locking crate.
//! * [`rng`] — a seeded SplitMix64 PRNG used by the bench workload
//!   generators and the deterministic property tests.
//!
//! # Zero-dependency design
//!
//! The workspace builds fully offline, so this crate is hand-rolled on top
//! of `std` only — no tracing/metrics/rand crates. Everything is implemented
//! with atomics, `std::sync` primitives, and `std::time::Instant`.
//!
//! # Overhead budget
//!
//! Instrumentation must stay below **2% overhead on the fig11 query
//! workload** (spatial range queries at bench scale). The design choices
//! that keep it there:
//!
//! * Counters and histogram buckets are single relaxed atomic increments;
//!   there is no locking on the hot record path.
//! * Histograms bucket by the bit width of the recorded value (base-2
//!   log scale), so recording is a `leading_zeros` plus one atomic add.
//! * Spans are only allocated when a query runs under `EXPLAIN ANALYZE`;
//!   the normal executor path carries no trace at all.

#![deny(missing_docs)]

pub mod events;
pub mod metrics;
pub mod rng;
pub mod sync;
pub mod trace;

pub use events::{Event, EventLog};
pub use metrics::{global, Counter, Gauge, Histogram, HistogramSummary, MetricValue, Registry};
pub use rng::Rng;
pub use trace::{traces_allocated, SpanId, Trace};
