//! `just-obs` — the observability substrate for the JUST engine.
//!
//! Every performance claim in the JUST paper (ICDE 2020, Section VI) is an
//! IO/latency argument, so the engine needs to *see itself*: where a query
//! spends time, which operator produced the IO, how selective an index read
//! was. This crate provides that layer for the whole workspace:
//!
//! * [`trace`] — a lightweight span tracer. A [`trace::Trace`] is an arena of
//!   spans forming a tree; each span carries monotonic wall time, an output
//!   row count, and arbitrary named `u64` attributes (used by the executor to
//!   attach kvstore IO deltas). `Trace::render()` pretty-prints the tree, and
//!   `EXPLAIN ANALYZE` in JustQL is rendered from it.
//! * [`metrics`] — a process-wide registry of named counters and log-scale
//!   latency histograms (p50/p95/p99) with Prometheus-style text exposition
//!   via [`metrics::Registry::render_text`]. The kvstore, storage, and core
//!   crates record scan latency, memtable flushes, compactions, block-cache
//!   hit ratios, and index selectivity here.
//! * [`sync`] — `Mutex`/`RwLock` shims over `std::sync` with a
//!   guard-returning (non-`Result`) API, recovering from poisoning. These
//!   keep lock call sites terse across the workspace without an external
//!   locking crate.
//! * [`rng`] — a seeded SplitMix64 PRNG used by the bench workload
//!   generators and the deterministic property tests.
//!
//! # Zero-dependency design
//!
//! The workspace builds fully offline, so this crate is hand-rolled on top
//! of `std` only — no tracing/metrics/rand crates. Everything is implemented
//! with atomics, `std::sync` primitives, and `std::time::Instant`.
//!
//! # Overhead budget
//!
//! Instrumentation must stay below **2% overhead on the fig11 query
//! workload** (spatial range queries at bench scale). The design choices
//! that keep it there:
//!
//! * Counters and histogram buckets are single relaxed atomic increments;
//!   there is no locking on the hot record path.
//! * Histograms bucket by the bit width of the recorded value (base-2
//!   log scale), so recording is a `leading_zeros` plus one atomic add.
//! * Spans are only allocated when a query runs under `EXPLAIN ANALYZE`;
//!   the normal executor path carries no trace at all.

#![deny(missing_docs)]

pub mod metrics;
pub mod rng;
pub mod sync;
pub mod trace;

pub use metrics::{global, Counter, Histogram, HistogramSummary, Registry};
pub use rng::Rng;
pub use trace::{SpanId, Trace};
