//! Thin locking shims over `std::sync` with a guard-returning API.
//!
//! `std`'s locks return `Result` to surface poisoning; in this workspace a
//! panic while holding a lock is already fatal to the test or process, so
//! every call site would just `unwrap()`. These wrappers recover the guard
//! from a poisoned lock instead, giving the terse `lock()`/`read()`/
//! `write()` call style used throughout the engine.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`], with the same
/// poison-recovering style: waits return the guard directly.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks on `guard` until notified or `timeout` elapses. Returns the
    /// reacquired guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r.timed_out())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_notify_and_timeout() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let (g, _) = cv.wait_timeout(done, Duration::from_millis(50));
            done = g;
        }
        drop(done);
        t.join().unwrap();
        // Pure timeout path.
        let (g, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(1));
        assert!(timed_out);
        drop(g);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
