//! Process-wide metrics: named counters and log-scale histograms with a
//! Prometheus-style text exposition.
//!
//! Handles ([`Counter`], [`Histogram`]) are cheap `Arc` clones; recording
//! is lock-free (relaxed atomics). The registry itself is only locked when
//! registering a new name or rendering, never on the record path.
//!
//! Naming convention used across the workspace (see the README
//! "Observability" section for the full table): `just_<area>_<what>[_unit]`,
//! e.g. `just_kvstore_scan_latency_us`, `just_index_rows_matched`.

use crate::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both up and down (active
/// connections, live queries, memtable bytes). Same lock-free recording
/// discipline as [`Counter`]; the only difference is semantics — a gauge
/// is a level, not an accumulation — and the `# TYPE` line it gets in
/// the text exposition.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lowers the level by one (saturating at zero).
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero: a racy extra
    /// decrement must not wrap a "live things" gauge to 2^64.
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log-scale buckets: one per possible bit width of a `u64`
/// sample, plus bucket 0 for the value zero.
const BUCKETS: usize = 65;

/// A log-scale (base-2) histogram handle.
///
/// A sample `v` lands in bucket `bit_width(v)` — i.e. bucket `i` covers
/// `[2^(i-1), 2^i)` — so recording is a `leading_zeros` plus one relaxed
/// atomic add. Percentiles are estimated by walking the cumulative bucket
/// counts and interpolating inside the winning bucket, which keeps the
/// estimate within a factor of 2 of the true order statistic: plenty for
/// latency reporting across six decades.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (the workspace's latency unit).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `q` in `[0, 1]`, or 0 with no samples.
    ///
    /// Interpolates linearly inside the winning log-scale bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (total.saturating_sub(1)) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c > rank {
                // Bucket i covers [lo, hi): interpolate by rank position.
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = match i {
                    0 => 1,
                    64 => u64::MAX,
                    _ => 1u64 << i,
                };
                let frac = (rank - seen) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            seen += c;
        }
        u64::MAX
    }

    /// A point-in-time p50/p90/p95/p99 summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A snapshot of a histogram's headline statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Renders as a compact JSON object (`{"count":..,"sum":..,...}`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}",
            self.count, self.sum, self.p50, self.p90, self.p95, self.p99
        )
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time reading of one registered metric, tagged with its
/// kind (the structured counterpart of [`Registry::render_text`], used
/// by `SHOW METRICS` to build a result set).
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A counter's accumulated total.
    Counter(u64),
    /// A gauge's current level.
    Gauge(u64),
    /// A histogram's headline statistics.
    Histogram(HistogramSummary),
}

/// A named collection of counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already a histogram.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use. Panics if `name` is already a counter or histogram.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use. Panics if `name` is already a counter or gauge.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::detached()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Looks up an existing counter without creating one.
    pub fn get_counter(&self, name: &str) -> Option<Counter> {
        match self.metrics.lock().get(name) {
            Some(Metric::Counter(c)) => Some(c.clone()),
            _ => None,
        }
    }

    /// Looks up an existing gauge without creating one.
    pub fn get_gauge(&self, name: &str) -> Option<Gauge> {
        match self.metrics.lock().get(name) {
            Some(Metric::Gauge(g)) => Some(g.clone()),
            _ => None,
        }
    }

    /// Looks up an existing histogram without creating one.
    pub fn get_histogram(&self, name: &str) -> Option<Histogram> {
        match self.metrics.lock().get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// A point-in-time reading of every registered metric, sorted by
    /// name. This is the structured accessor behind `SHOW METRICS`;
    /// [`Registry::render_text`] is the scrape-format rendering of the
    /// same data.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.metrics
            .lock()
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Summaries of every registered histogram, sorted by name (used by
    /// the bench harness to serialize latency distributions).
    pub fn histogram_summaries(&self) -> Vec<(String, HistogramSummary)> {
        self.metrics
            .lock()
            .iter()
            .filter_map(|(name, m)| match m {
                Metric::Histogram(h) => Some((name.clone(), h.summary())),
                Metric::Counter(_) | Metric::Gauge(_) => None,
            })
            .collect()
    }

    /// Renders every metric in Prometheus text exposition style: counters
    /// and gauges as `name value`, histograms as quantile-labelled
    /// summaries plus `_sum`/`_count` and synthetic `_p50`/`_p90`/`_p99`
    /// lines (flat series are directly plottable by tools that don't
    /// parse quantile labels). Names are emitted in sorted order so
    /// output is stable for tests and diffing.
    pub fn render_text(&self) -> String {
        let metrics = self.metrics.lock().clone();
        let mut out = String::new();
        for (name, metric) in &metrics {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.summary();
                    out.push_str(&format!(
                        "# TYPE {name} summary\n\
                         {name}{{quantile=\"0.5\"}} {}\n\
                         {name}{{quantile=\"0.95\"}} {}\n\
                         {name}{{quantile=\"0.99\"}} {}\n\
                         {name}_sum {}\n\
                         {name}_count {}\n\
                         {name}_p50 {}\n\
                         {name}_p90 {}\n\
                         {name}_p99 {}\n",
                        s.p50, s.p95, s.p99, s.sum, s.count, s.p50, s.p90, s.p99
                    ));
                }
            }
        }
        out
    }
}

/// The process-global registry. All engine instrumentation records here;
/// `Engine::metrics_text()` and the bench harness read from it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = Registry::new();
        let c = r.counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("hits").get(), 5);
    }

    #[test]
    fn histogram_bucketing_covers_value_edges() {
        let h = Histogram::detached();
        // 0 lands in bucket 0, 1 in bucket 1, 2..3 in bucket 2, etc.
        let values = [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX];
        for v in values {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        // The atomic sum wraps on overflow, as does this fold.
        let expected = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        assert_eq!(h.sum(), expected);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Log-bucket estimates: within 2x of the true order statistic.
        assert!((250..=1000).contains(&p50), "p50 {p50}");
        assert!((512..=2000).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn quantile_on_empty_is_zero() {
        let h = Histogram::detached();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.summary().p50, 0);
    }

    #[test]
    fn quantile_single_bucket_is_tight() {
        let h = Histogram::detached();
        for _ in 0..100 {
            h.record(5); // all in bucket [4, 8)
        }
        let p50 = h.quantile(0.5);
        assert!((4..8).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn render_text_is_prometheus_like_and_sorted() {
        let r = Registry::new();
        r.counter("zeta").add(3);
        let h = r.histogram("alpha_latency_us");
        h.record(100);
        h.record(200);
        let text = r.render_text();
        let alpha = text.find("alpha_latency_us").unwrap();
        let zeta = text.find("zeta").unwrap();
        assert!(alpha < zeta, "sorted order");
        assert!(text.contains("# TYPE zeta counter\nzeta 3\n"));
        assert!(text.contains("alpha_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("alpha_latency_us_count 2"));
        assert!(text.contains("alpha_latency_us_sum 300"));
    }

    #[test]
    fn summary_json_shape() {
        let h = Histogram::detached();
        h.record(10);
        let js = h.summary().to_json();
        assert!(js.starts_with("{\"count\":1,"));
        assert!(js.contains("\"p99\":"));
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("obs_test_global").add(2);
        assert_eq!(global().counter("obs_test_global").get(), 2);
    }

    #[test]
    fn gauge_moves_both_ways_and_saturates() {
        let r = Registry::new();
        let g = r.gauge("live");
        g.add(3);
        g.dec();
        assert_eq!(r.gauge("live").get(), 2);
        g.sub(10); // below zero: clamps, never wraps
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
        assert!(r.render_text().contains("# TYPE live gauge\nlive 7\n"));
        assert!(r.get_gauge("live").is_some());
        assert!(r.get_counter("live").is_none());
    }

    #[test]
    fn render_text_has_synthetic_percentile_lines() {
        let r = Registry::new();
        let h = r.histogram("lat_us");
        for v in 1..=100u64 {
            h.record(v);
        }
        let text = r.render_text();
        assert!(text.contains("lat_us_p50 "));
        assert!(text.contains("lat_us_p90 "));
        assert!(text.contains("lat_us_p99 "));
        // The synthetic lines agree with the quantile-labelled ones.
        let s = h.summary();
        assert!(text.contains(&format!("lat_us_p50 {}\n", s.p50)));
        assert!(text.contains(&format!("lat_us_p99 {}\n", s.p99)));
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }

    #[test]
    fn snapshot_reads_every_kind() {
        let r = Registry::new();
        r.counter("c").add(1);
        r.gauge("g").set(2);
        r.histogram("h").record(3);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(matches!(snap[0], (ref n, MetricValue::Counter(1)) if n == "c"));
        assert!(matches!(snap[1], (ref n, MetricValue::Gauge(2)) if n == "g"));
        assert!(matches!(
            snap[2],
            (ref n, MetricValue::Histogram(HistogramSummary { count: 1, .. })) if n == "h"
        ));
    }
}
