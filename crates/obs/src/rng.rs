//! A small deterministic PRNG (SplitMix64) for workload generation and
//! property tests.
//!
//! The API mirrors the subset of `rand` the workspace used — a seeded
//! constructor, `gen_range` over primitive ranges, `gen_bool` — so call
//! sites only change their import line. SplitMix64 passes BigCrush for
//! this bit width and is more than adequate for synthetic datasets and
//! randomized tests; it is explicitly *not* cryptographic.

use std::ops::Range;

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range`. Implemented for the primitive range
    /// types the workloads use; panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection-free multiply-shift would bias tiny amounts; for our
        // bounds (well below 2^48) a 128-bit multiply is unbiased enough
        // and branch-free.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Types `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.bounded_u64(span) as i64)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut Rng) -> u32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as u32
    }
}

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample(self, rng: &mut Rng) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.bounded_u64(span) as i64) as i32
    }
}

impl SampleRange for Range<u8> {
    type Output = u8;
    fn sample(self, rng: &mut Rng) -> u8 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.7)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.7).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = Rng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
