//! A lightweight span tracer: an arena of timed spans forming a tree.
//!
//! A [`Trace`] owns all spans; [`SpanId`]s are plain indexes into it, so
//! threading a trace through a recursive executor needs only `&mut Trace`
//! and copies of the parent id — no `Rc`, no thread-locals. Each span
//! carries a name, monotonic wall time ([`std::time::Instant`]), an
//! optional output row count, and arbitrary named `u64` attributes (the
//! query layer attaches kvstore IO deltas — blocks read, cache hits,
//! bytes — without this crate depending on the kvstore types).
//!
//! [`Trace::render`] pretty-prints the tree; `EXPLAIN ANALYZE` output is
//! produced from it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Count of [`Trace`]s ever allocated in this process.
static TRACES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Number of [`Trace`]s ever allocated in this process.
///
/// Traces are only supposed to exist under `EXPLAIN ANALYZE` (or when a
/// slow-query handler decides to keep one); the zero-cost tests diff
/// this counter across a plain query to prove the hot path allocates no
/// trace.
pub fn traces_allocated() -> u64 {
    TRACES_ALLOCATED.load(Ordering::Relaxed)
}

/// Handle to one span inside a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(usize);

#[derive(Debug)]
struct SpanData {
    name: String,
    parent: Option<SpanId>,
    started: Instant,
    elapsed: Option<Duration>,
    rows: Option<u64>,
    attrs: Vec<(String, u64)>,
}

/// A tree of timed spans recorded during one traced operation.
#[derive(Debug)]
pub struct Trace {
    spans: Vec<SpanData>,
}

impl Trace {
    /// Starts a new trace whose root span is `name`. The root is span id
    /// returned by [`Trace::root`].
    pub fn new(name: impl Into<String>) -> Self {
        TRACES_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        let mut t = Trace { spans: Vec::new() };
        t.push(name.into(), None);
        t
    }

    /// The root span's id.
    pub fn root(&self) -> SpanId {
        SpanId(0)
    }

    /// Starts a child span under `parent` and returns its id. The span's
    /// clock starts now and stops at [`Trace::end`].
    pub fn start(&mut self, name: impl Into<String>, parent: SpanId) -> SpanId {
        self.push(name.into(), Some(parent))
    }

    fn push(&mut self, name: String, parent: Option<SpanId>) -> SpanId {
        let id = SpanId(self.spans.len());
        self.spans.push(SpanData {
            name,
            parent,
            started: Instant::now(),
            elapsed: None,
            rows: None,
            attrs: Vec::new(),
        });
        id
    }

    /// Stops `span`'s clock. Ending a span twice keeps the first elapsed
    /// time; a span never ended reports time-to-render.
    pub fn end(&mut self, span: SpanId) {
        let s = &mut self.spans[span.0];
        if s.elapsed.is_none() {
            s.elapsed = Some(s.started.elapsed());
        }
    }

    /// Records the span's output row count.
    pub fn set_rows(&mut self, span: SpanId, rows: u64) {
        self.spans[span.0].rows = Some(rows);
    }

    /// Attaches (or accumulates into) a named `u64` attribute.
    pub fn add_attr(&mut self, span: SpanId, name: &str, value: u64) {
        let s = &mut self.spans[span.0];
        if let Some(a) = s.attrs.iter_mut().find(|(n, _)| n == name) {
            a.1 += value;
        } else {
            s.attrs.push((name.to_string(), value));
        }
    }

    /// The span's name.
    pub fn name(&self, span: SpanId) -> &str {
        &self.spans[span.0].name
    }

    /// The span's parent, if any.
    pub fn parent(&self, span: SpanId) -> Option<SpanId> {
        self.spans[span.0].parent
    }

    /// Elapsed wall time (final if ended, running if not).
    pub fn elapsed(&self, span: SpanId) -> Duration {
        let s = &self.spans[span.0];
        s.elapsed.unwrap_or_else(|| s.started.elapsed())
    }

    /// Recorded output rows, if set.
    pub fn rows(&self, span: SpanId) -> Option<u64> {
        self.spans[span.0].rows
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, span: SpanId, name: &str) -> Option<u64> {
        self.spans[span.0]
            .attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Ids of `span`'s direct children, in start order.
    pub fn children(&self, span: SpanId) -> Vec<SpanId> {
        (0..self.spans.len())
            .map(SpanId)
            .filter(|&id| self.spans[id.0].parent == Some(span))
            .collect()
    }

    /// Total number of spans (root included).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace has only its root span.
    pub fn is_empty(&self) -> bool {
        self.spans.len() <= 1
    }

    /// Renders the span tree, indented two spaces per level:
    ///
    /// ```text
    /// query (time=1.42ms)
    ///   Scan orders (time=1.31ms, rows=880, blocks_read=12)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(self.root(), 0, &mut out);
        out
    }

    fn render_into(&self, span: SpanId, depth: usize, out: &mut String) {
        let s = &self.spans[span.0];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&s.name);
        out.push_str(" (time=");
        out.push_str(&fmt_duration(self.elapsed(span)));
        if let Some(rows) = s.rows {
            out.push_str(&format!(", rows={rows}"));
        }
        for (name, value) in &s.attrs {
            out.push_str(&format!(", {name}={value}"));
        }
        out.push_str(")\n");
        for child in self.children(span) {
            self.render_into(child, depth + 1, out);
        }
    }
}

/// Formats a duration with sensible units (`837ns`, `14.2us`, `3.91ms`,
/// `2.15s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_nesting() {
        let mut t = Trace::new("query");
        let root = t.root();
        let a = t.start("Filter", root);
        let b = t.start("Scan", a);
        t.end(b);
        t.end(a);

        assert_eq!(t.len(), 3);
        assert_eq!(t.parent(a), Some(root));
        assert_eq!(t.parent(b), Some(a));
        assert_eq!(t.children(root), vec![a]);
        assert_eq!(t.children(a), vec![b]);
        assert!(t.children(b).is_empty());
        assert_eq!(t.name(b), "Scan");
    }

    #[test]
    fn siblings_keep_start_order() {
        let mut t = Trace::new("root");
        let l = t.start("left", t.root());
        let r = t.start("right", t.root());
        t.end(l);
        t.end(r);
        assert_eq!(t.children(t.root()), vec![l, r]);
    }

    #[test]
    fn rows_and_attrs_accumulate() {
        let mut t = Trace::new("q");
        let s = t.start("Scan", t.root());
        t.set_rows(s, 42);
        t.add_attr(s, "blocks_read", 3);
        t.add_attr(s, "blocks_read", 4);
        t.add_attr(s, "cache_hits", 1);
        t.end(s);
        assert_eq!(t.rows(s), Some(42));
        assert_eq!(t.attr(s, "blocks_read"), Some(7));
        assert_eq!(t.attr(s, "cache_hits"), Some(1));
        assert_eq!(t.attr(s, "nope"), None);
    }

    #[test]
    fn end_is_idempotent_and_elapsed_monotonic() {
        let mut t = Trace::new("q");
        let s = t.start("work", t.root());
        std::thread::sleep(Duration::from_millis(1));
        t.end(s);
        let first = t.elapsed(s);
        t.end(s);
        assert_eq!(t.elapsed(s), first);
        assert!(first >= Duration::from_millis(1));
    }

    #[test]
    fn render_shows_tree_shape() {
        let mut t = Trace::new("query");
        let f = t.start("Filter", t.root());
        let s = t.start("Scan orders", f);
        t.set_rows(s, 10);
        t.add_attr(s, "blocks_read", 5);
        t.end(s);
        t.end(f);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("query (time="));
        assert!(lines[1].starts_with("  Filter (time="));
        assert!(lines[2].starts_with("    Scan orders (time="));
        assert!(lines[2].contains("rows=10"));
        assert!(lines[2].contains("blocks_read=5"));
    }

    #[test]
    fn fmt_duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(14)), "14.00us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
