//! # JUST — JD Urban Spatio-Temporal Data Engine (Rust reproduction)
//!
//! A from-scratch Rust implementation of the system described in
//! *JUST: JD Urban Spatio-Temporal Data Engine* (ICDE 2020), including
//! every substrate the paper builds on: an HBase-like ordered key-value
//! store, a GeoMesa-like curve-indexed storage layer (with the paper's
//! novel **Z2T** and **XZ2T** indexes and field compression), a Spark-
//! SQL-like DataFrame executor behind the **JustQL** language, trajectory
//! analysis operations, and the baseline engines used in the evaluation.
//!
//! This crate is a facade re-exporting the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geo`] | `just-geo` | geometry model, WKT, coordinate transforms |
//! | [`compress`] | `just-compress` | LZSS/Huffman codecs, GPS delta codec |
//! | [`curves`] | `just-curves` | Z2/Z3/XZ2/XZ3 + Z2T/XZ2T |
//! | [`kvstore`] | `just-kvstore` | the HBase stand-in |
//! | [`storage`] | `just-storage` | schemas, row codec, index strategies |
//! | [`engine`] | `just-core` | catalog, queries, k-NN, sessions |
//! | [`analysis`] | `just-analysis` | trajectory ops, map matching, DBSCAN |
//! | [`sql`] | `just-ql` | the JustQL parser/optimizer/executor |
//! | [`server`] | `just-server` | wire protocol, `justd` daemon, remote client |
//! | [`baselines`] | `just-baselines` | comparison engines |
//! | [`obs`] | `just-obs` | tracing, metrics registry, EXPLAIN ANALYZE substrate |
//!
//! ## Quickstart
//!
//! ```
//! use just::sql::Client;
//! use just::engine::{Engine, EngineConfig, SessionManager};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("just-facade-{}", std::process::id()));
//! std::fs::remove_dir_all(&dir).ok();
//! let engine = Arc::new(Engine::open(&dir, EngineConfig::default()).unwrap());
//! let sessions = SessionManager::new(engine);
//! let mut client = Client::new(sessions.session("demo"));
//! client.execute("CREATE TABLE pts (fid integer:primary key, time date, geom point)").unwrap();
//! client.execute("INSERT INTO pts VALUES (1, 0, st_makePoint(116.4, 39.9))").unwrap();
//! let hits = client
//!     .execute("SELECT fid FROM pts WHERE geom WITHIN st_makeMBR(116, 39, 117, 40)")
//!     .unwrap();
//! assert_eq!(hits.dataset().unwrap().len(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

/// Geometry model (`just-geo`).
pub use just_geo as geo;

/// Compression codecs (`just-compress`).
pub use just_compress as compress;

/// Space-filling-curve indexes (`just-curves`).
pub use just_curves as curves;

/// The ordered key-value store (`just-kvstore`).
pub use just_kvstore as kvstore;

/// The spatio-temporal storage layer (`just-storage`).
pub use just_storage as storage;

/// The JUST engine (`just-core`).
pub use just_core as engine;

/// Analysis operations (`just-analysis`).
pub use just_analysis as analysis;

/// The JustQL SQL layer (`just-ql`).
pub use just_ql as sql;

/// The network serving layer (`just-server`).
pub use just_server as server;

/// Baseline engines for the evaluation (`just-baselines`).
pub use just_baselines as baselines;

/// Observability: span tracing and the metrics registry (`just-obs`).
pub use just_obs as obs;
